//! Coverage for the `hfqo_sync` lock checker itself: deliberate
//! lock-order inversions, re-entrancy, same-site nesting, and condvar
//! misuse must all panic in debug builds with messages naming the
//! offending sites — and the wrappers must stay invisible otherwise.
//!
//! The panic tests are `cfg(debug_assertions)`: in release the checker
//! is compiled out entirely (the compile-time size assertions in
//! `hfqo_sync` — evaluated by the tier-1 `cargo build --release` —
//! pin the pass-through), so there is nothing to fire.
//!
//! The lock-order graph is global to the test binary, so every test
//! here uses its own site labels; orders established by one test must
//! not constrain another.

use hfqo_sync::{Condvar, Mutex, RwLock};

/// The acceptance-criteria test: an A→B order established once, then a
/// B→A acquisition — a latent deadlock that would only bite under the
/// losing interleaving — panics deterministically at the inverted
/// acquisition, in a single thread, on the first run.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-order cycle")]
fn deliberate_lock_order_inversion_is_caught() {
    let a = Mutex::new("lockcheck.inversion.a", ());
    let b = Mutex::new("lockcheck.inversion.b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock(); // establishes a → b
    }
    let _gb = b.lock();
    let _ga = a.lock(); // b → a: cycle, panics here
}

/// The cycle message must name both ends of the inversion and the held
/// chain — that is what makes the panic actionable.
#[cfg(debug_assertions)]
#[test]
fn cycle_panic_names_both_sites_and_the_held_chain() {
    let a = Mutex::new("lockcheck.named.a", ());
    let b = Mutex::new("lockcheck.named.b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }))
    .expect_err("the inverted acquisition must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .expect("panic carries a message");
    assert!(msg.contains("lock-order cycle"), "got: {msg}");
    assert!(msg.contains("lockcheck.named.a"), "got: {msg}");
    assert!(msg.contains("lockcheck.named.b"), "got: {msg}");
    assert!(msg.contains("held chain"), "got: {msg}");
}

/// Re-entrant acquisition panics at the root cause instead of
/// deadlocking (std's documented behavior for `Mutex` self-lock).
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "re-entrant lock acquisition")]
fn reentrant_lock_panics_at_root_cause() {
    let m = Mutex::new("lockcheck.reentrant", 0);
    let _g1 = m.lock();
    let _g2 = m.lock();
}

/// Holding one lock of a site while acquiring another lock of the same
/// site (e.g. two cache shards) is flagged: with many instances per
/// site there is always an interleaving where two threads take them in
/// opposite order.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-order hazard")]
fn same_site_nesting_panics() {
    let s1 = Mutex::new("lockcheck.same-site", 1);
    let s2 = Mutex::new("lockcheck.same-site", 2);
    let _g1 = s1.lock();
    let _g2 = s2.lock();
}

/// Waiting on a condvar while holding any lock other than the one being
/// released parks that lock for an unbounded time — the checker refuses.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "condvar wait while holding other locks")]
fn condvar_wait_while_holding_another_lock_panics() {
    let outer = Mutex::new("lockcheck.cv.outer", ());
    let inner = Mutex::new("lockcheck.cv.inner", false);
    let cv = Condvar::new();
    let _outer = outer.lock();
    let guard = inner.lock();
    let _guard = cv.wait(guard);
}

/// RwLocks participate in the same order graph as mutexes: a read
/// acquisition closing a write-established cycle is an inversion too
/// (a queued writer makes reader/writer deadlocks real).
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-order cycle")]
fn rwlock_inversion_is_caught() {
    let m = Mutex::new("lockcheck.rw.mutex", ());
    let rw = RwLock::new("lockcheck.rw.lock", 0);
    {
        let _gm = m.lock();
        let _gw = rw.write(); // establishes mutex → rwlock
    }
    let _gr = rw.read();
    let _gm = m.lock(); // rwlock → mutex: cycle
}

/// Consistent nesting never trips the checker, in either profile, and
/// the wrappers behave exactly like the std primitives. (The zero-cost
/// half of the release contract — size equality with `std::sync` — is a
/// compile-time assertion inside `hfqo_sync`, evaluated by the tier-1
/// release build.)
#[test]
fn consistent_order_and_plain_use_stay_silent() {
    let a = Mutex::new("lockcheck.quiet.a", 1);
    let b = Mutex::new("lockcheck.quiet.b", 2);
    for _ in 0..3 {
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
    }
    let rw = RwLock::new("lockcheck.quiet.rw", vec![1]);
    rw.write().push(2);
    assert_eq!(rw.read().len(), 2);

    // Condvar roundtrip under the sole-lock discipline.
    let ready = Mutex::new("lockcheck.quiet.cv", false);
    let cv = Condvar::new();
    std::thread::scope(|s| {
        s.spawn(|| {
            *ready.lock() = true;
            cv.notify_all();
        });
        let mut g = ready.lock();
        while !*g {
            g = cv.wait(g);
        }
    });
}
