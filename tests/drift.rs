//! The drift battery: "hands-free" under a changing world.
//!
//! Exercises `hfqo_workload::drift` end to end:
//!
//! * **Mutation determinism** — fixed-seed mutation operators are pure
//!   functions of `(database, seed)`: two applications produce
//!   bit-identical tables, cell by cell, with physical encodings
//!   preserved.
//! * **Post-mutation engine identity** — after a mutation battery, the
//!   row, batch, and parallel engines (at every `HFQO_EXEC_THREADS`
//!   count) and all three storage encodings still agree on results and
//!   work totals.
//! * **Stale-statistics fencing** — `rebuild_stats()` mid-traffic drops
//!   every cached selectivity-band decision: template hits after a
//!   rebuild re-derive per-slot selectivities from the new statistics,
//!   never serving a band decision computed under pre-shock stats.
//! * **Concurrent mutation + serving** — appender traffic racing
//!   servers through versioned snapshots, row identity asserted against
//!   a serial replay reference, no torn dictionary/RLE columns.
//! * **Shock→recovery** — the standard scripted scenario reaches expert
//!   p95 parity after every shock, pinned bit-for-bit by the golden
//!   drift-recovery log (`HFQO_BLESS=1` regenerates).
//!
//! No wall-clock anywhere: latencies are work-derived, waits are
//! bounded spin counters (CI runs this file under `HFQO_LOCKCHECK` and
//! across the `HFQO_WORKERS` matrix).

use hfqo::exec::execute_rows;
use hfqo::prelude::*;
use hfqo::query::{BoundColumn, Lit, RelId, Selection};
use hfqo::sql::CompareOp;
use hfqo::workload::synth::{Shape, SynthConfig, SynthDb};
use hfqo_catalog::ColumnId;
use hfqo_storage::Encoding;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Thread counts for the parallel-engine pass: `HFQO_EXEC_THREADS`
/// (comma-separated), defaulting to `1,2,4`.
fn exec_threads() -> &'static [usize] {
    static COUNTS: OnceLock<Vec<usize>> = OnceLock::new();
    COUNTS.get_or_init(|| match std::env::var("HFQO_EXEC_THREADS") {
        Ok(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("invalid HFQO_EXEC_THREADS entry {tok:?}"))
                    .max(1)
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    })
}

/// Server-thread count for the concurrent test: last entry of
/// `HFQO_WORKERS`, default 2.
fn workers() -> usize {
    std::env::var("HFQO_WORKERS")
        .ok()
        .and_then(|v| v.split(',').next_back()?.trim().parse().ok())
        .unwrap_or(2)
}

fn synth() -> &'static SynthDb {
    static DB: OnceLock<SynthDb> = OnceLock::new();
    DB.get_or_init(|| {
        SynthDb::build(SynthConfig {
            tables: 6,
            rows: 300,
            seed: 21,
        })
    })
}

/// Every cell of every table, decoded — the bit-identity oracle.
fn all_cells(db: &Database) -> Vec<(u32, Vec<Vec<Value>>)> {
    let mut out = Vec::new();
    let mut tid = 0u32;
    while let Ok(table) = db.table(hfqo_catalog::TableId(tid)) {
        let rows = (0..table.row_count())
            .map(|r| {
                (0..table.schema().arity())
                    .map(|c| table.value_at(r, ColumnId(c as u32)))
                    .collect()
            })
            .collect();
        out.push((tid, rows));
        tid += 1;
    }
    out
}

fn table_encodings(db: &Database) -> Vec<Vec<Encoding>> {
    let mut out = Vec::new();
    let mut tid = 0u32;
    while let Ok(table) = db.table(hfqo_catalog::TableId(tid)) {
        out.push(table.encodings());
        tid += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite: fixed-seed mutation operators are deterministic.
    /// Applying the same `Mutation` to two clones of the same database
    /// yields bit-identical tables — every cell, every physical
    /// encoding — so drift scenarios replay exactly.
    #[test]
    fn fixed_seed_mutations_are_bit_deterministic(
        op in 0u8..3,
        table in 0u32..6,
        seed in 0u64..1_000_000_000,
        frac_pct in 0u8..=100,
    ) {
        let tid = hfqo_catalog::TableId(table);
        let fraction = f64::from(frac_pct) / 100.0;
        let mutation = match op {
            0 => Mutation::append(tid, (seed % 97) as usize, seed),
            1 => Mutation::skew_shift(tid, ColumnId(2), fraction, seed),
            _ => Mutation::bulk_delete(tid, fraction, seed),
        };
        let mut a = synth().db.clone();
        let mut b = synth().db.clone();
        let ra = apply_mutation(&mut a, &mutation).expect("valid mutation");
        let rb = apply_mutation(&mut b, &mutation).expect("valid mutation");
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(all_cells(&a), all_cells(&b));
        prop_assert_eq!(table_encodings(&a), table_encodings(&b));
        // Mutations never change a column's physical layout.
        prop_assert_eq!(table_encodings(&a), table_encodings(&synth().db));
    }
}

/// Runs `plan` through the batch engine, the row engine, and the
/// parallel evaluator at every `HFQO_EXEC_THREADS` count; asserts all
/// agree on the row multiset and the work total, then returns them.
fn engines_agree(
    db: &Database,
    graph: &QueryGraph,
    plan: &hfqo::query::PhysicalPlan,
    what: &str,
) -> (Vec<Vec<Value>>, u64) {
    let config = ExecConfig::with_budget(60_000_000);
    let batch = hfqo::exec::execute(db, graph, plan, config).expect("batch engine");
    let row = execute_rows(db, graph, plan, config).expect("row engine");
    let mut expected = batch.rows.clone();
    expected.sort();
    let mut rows = row.rows.clone();
    rows.sort();
    assert_eq!(expected, rows, "{what}: row engine multiset");
    assert_eq!(batch.stats.work, row.stats.work, "{what}: row engine work");
    for &threads in exec_threads() {
        let par = hfqo::exec::execute(db, graph, plan, config.threads(threads)).expect("parallel");
        let mut rows = par.rows.clone();
        rows.sort();
        assert_eq!(expected, rows, "{what}: parallel t={threads} multiset");
        assert_eq!(
            batch.stats.work, par.stats.work,
            "{what}: parallel t={threads} work"
        );
    }
    (expected, batch.stats.work)
}

/// Satellite: after a mutation battery, all three engines × every
/// thread count × all three storage encodings still produce identical
/// results and work totals — mutations preserve the typed-column and
/// encoding invariants the vectorized kernels rely on.
#[test]
fn post_mutation_results_identical_across_engines_threads_encodings() {
    use hfqo_catalog::TableId;
    let mut db = synth().db.clone();
    for m in [
        Mutation::append(TableId(0), 140, 6001),
        Mutation::skew_shift(TableId(1), ColumnId(2), 0.6, 6002),
        Mutation::skew_shift(TableId(2), ColumnId(1), 0.4, 6003),
        Mutation::bulk_delete(TableId(3), 0.35, 6004),
        Mutation::append(TableId(4), 90, 6005),
    ] {
        apply_mutation(&mut db, &m).expect("battery applies");
    }
    let stats = build_database_stats(&db);
    let optimizer = TraditionalOptimizer::new(db.catalog(), &stats);

    let queries: Vec<QueryGraph> = [
        (Shape::Chain, 4, 31),
        (Shape::Star, 4, 32),
        (Shape::Cycle, 4, 33),
        (Shape::Chain, 5, 34),
    ]
    .into_iter()
    .map(|(shape, n, seed)| synth().query(shape, n, 1, seed))
    .collect();

    for (qi, graph) in queries.iter().enumerate() {
        let plan = optimizer.plan(graph).expect("plannable").plan;
        let (plain_rows, plain_work) =
            engines_agree(&db, graph, &plan, &format!("q{qi} post-mutation"));

        // The same mutated data re-encoded wholesale: results and work
        // must not depend on the physical layout.
        for enc in ["dict", "rle"] {
            let mut encoded = db.clone();
            let tids: Vec<_> = encoded.catalog().tables().map(|(tid, _)| tid).collect();
            for tid in tids {
                let table = encoded.table_mut(tid).expect("table exists");
                table.decode_columns();
                table.dictionary_encode_strings(usize::MAX);
                if enc == "rle" {
                    table.rle_encode_columns(1);
                }
            }
            encoded.build_indexes().expect("indexes rebuild");
            let (rows, work) =
                engines_agree(&encoded, graph, &plan, &format!("q{qi} {enc}-encoded"));
            assert_eq!(plain_rows, rows, "q{qi}: {enc} encoding changed results");
            assert_eq!(plain_work, work, "q{qi}: {enc} encoding changed work");
        }
    }
}

/// A chain query with one equality selection on the zipf `val` column
/// of its first relation — the selectivity swings between head and
/// tail constants are what the re-plan band exists to catch.
fn eq_query(gen: &SynthDb, value: i64) -> QueryGraph {
    let base = gen.query(Shape::Chain, 3, 0, 0);
    QueryGraph::new(
        base.relations().to_vec(),
        base.joins().to_vec(),
        vec![Selection {
            column: BoundColumn::new(RelId(0), ColumnId(2)),
            op: CompareOp::Eq,
            value: Lit::Int(value),
        }],
        base.aggregates().to_vec(),
        base.group_by().to_vec(),
    )
}

/// Satellite (regression): `rebuild_stats()` mid-traffic must drop
/// stale selectivity buckets. A template-cache hit after the rebuild
/// re-derives per-slot selectivities from the *new* statistics — it
/// must never serve a band decision computed under pre-shock stats.
///
/// The fixture finds two constants `(a, b)` whose estimated
/// selectivities are *within* the band under the pre-shock statistics
/// but *outside* it after a skew-shift mutation + rebuild. Pre-shock,
/// `b` band-matches `a`'s bucket (TemplateHit). If the cache kept the
/// pre-shock band decision, `b` would still hit after the rebuild; the
/// epoch fence + re-derivation force a Replan instead.
#[test]
fn rebuild_stats_drops_stale_selectivity_bands() {
    let gen = SynthDb::build(SynthConfig {
        tables: 4,
        rows: 400,
        seed: 77,
    });
    let target = eq_query(&gen, 1).relations()[0].table;
    let shock = Mutation::skew_shift(target, ColumnId(2), 0.7, 4242);

    // New-world statistics, computed on a clone up front so the search
    // below can compare both regimes.
    let mut post_db = gen.db.clone();
    apply_mutation(&mut post_db, &shock).expect("skew applies");
    let post_stats = build_database_stats(&post_db);

    let band = CacheConfig::default().selectivity_band;
    let sel = |stats: &hfqo::stats::StatsCatalog, v: i64| {
        selection_selectivities(stats, &eq_query(&gen, v))[0]
    };
    let ratio = |x: f64, y: f64| if x > y { x / y } else { y / x };
    // Find a constant pair that is within-band before the shock and
    // outside it after: the skew re-weights the value distribution, so
    // estimated selectivities of surviving vs wiped-out tail constants
    // diverge. Margins on both sides keep the fixture unambiguous.
    let (a, b) = (1..=200i64)
        .flat_map(|a| (1..=200i64).map(move |b| (a, b)))
        .find(|&(a, b)| {
            a != b
                && ratio(sel(&gen.stats, a), sel(&gen.stats, b)) < band * 0.9
                && ratio(sel(&post_stats, a), sel(&post_stats, b)) > band * 1.1
        })
        .expect("fixture must yield a band-splitting constant pair");

    let mut session = QuerySession::traditional(gen.db.clone(), gen.stats.clone());
    assert_eq!(
        session.serve_graph(&eq_query(&gen, a)).unwrap().cache,
        CacheOutcome::Miss
    );
    // Pre-shock: same template, in-band constant — the bucket is shared.
    assert_eq!(
        session.serve_graph(&eq_query(&gen, b)).unwrap().cache,
        CacheOutcome::TemplateHit
    );

    // The shock lands mid-traffic; the session refreshes hands-free.
    apply_mutation(session.db_mut(), &shock).expect("skew applies");
    session.refresh_after_mutation().expect("refresh");
    assert!(
        session.cache_metrics().invalidations >= 1,
        "stats rebuild must epoch-fence the plan cache"
    );

    // Post-shock: the epoch fence dropped the stale bucket entirely…
    assert_eq!(
        session.serve_graph(&eq_query(&gen, a)).unwrap().cache,
        CacheOutcome::Miss,
        "pre-shock bucket must not survive the stats rebuild"
    );
    // …and the band decision for `b` is re-derived from the *new*
    // statistics: the pair now straddles the band, so a blind
    // TemplateHit here would be serving a pre-shock decision.
    assert_eq!(
        session.serve_graph(&eq_query(&gen, b)).unwrap().cache,
        CacheOutcome::Replan,
        "band decision must be re-derived from rebuilt statistics"
    );
}

/// Satellite: concurrent mutation + serving. An appender thread applies
/// the mutation script and publishes immutable versioned snapshots
/// through [`DbSnapshots`]; server threads race it, serving whatever
/// version they observe. Every served result is asserted against a
/// serial-replay reference for that exact version — so a torn read
/// (a dictionary or RLE column observed mid-append) is impossible to
/// miss: it would change the row multiset. Bounded spin counters only;
/// no sleeps, no wall-clock.
#[test]
fn concurrent_mutation_and_serving_matches_serial_replay() {
    use hfqo_catalog::TableId;
    let gen = SynthDb::build(SynthConfig {
        tables: 4,
        rows: 200,
        seed: 5,
    });
    // RLE-encode everything so the mutation path exercises encoded
    // columns (synth data is all-Int: dictionary encoding applies to
    // strings and is covered by the engines/encodings test above).
    let mut base = gen.db.clone();
    for t in 0..4u32 {
        base.table_mut(TableId(t)).unwrap().rle_encode_columns(1);
    }
    base.build_indexes().expect("indexes rebuild");

    let script: Vec<Mutation> = vec![
        Mutation::append(TableId(0), 60, 901),
        Mutation::skew_shift(TableId(1), ColumnId(2), 0.5, 902),
        Mutation::bulk_delete(TableId(2), 0.3, 903),
        Mutation::append(TableId(3), 40, 904),
    ];
    let graph = gen.query(Shape::Chain, 4, 1, 12);

    // Serial replay reference: expected rows per version, plus the
    // plan each version's server will execute (planned fresh per
    // version, exactly like the racing servers do).
    let config = ExecConfig::with_budget(60_000_000);
    let mut reference = Vec::new();
    let mut replay = base.clone();
    for applied in 0..=script.len() {
        if applied > 0 {
            apply_mutation(&mut replay, &script[applied - 1]).expect("replay applies");
        }
        let stats = build_database_stats(&replay);
        let plan = TraditionalOptimizer::new(replay.catalog(), &stats)
            .plan(&graph)
            .expect("plannable")
            .plan;
        let mut rows = hfqo::exec::execute(&replay, &graph, &plan, config)
            .expect("reference executes")
            .rows;
        rows.sort();
        reference.push((plan, rows));
    }

    let snapshots = DbSnapshots::new(base.clone());
    let versions = script.len() as u64;
    let served_checks = AtomicU64::new(0);
    // Generous progress bound: a wedged appender or a starved server
    // fails loudly instead of hanging the suite (no deadlines — the
    // lint forbids wall-clock in this file).
    const SPIN_BOUND: u64 = 2_000_000_000;

    std::thread::scope(|scope| {
        let reference = &reference;
        let snapshots = &snapshots;
        let served_checks = &served_checks;
        let graph = &graph;
        let script = &script;

        scope.spawn(move || {
            // The appender mutates a private clone and publishes
            // immutable snapshots — servers can never observe a
            // half-appended column.
            let mut db = base;
            for m in script {
                apply_mutation(&mut db, m).expect("appender applies");
                snapshots.publish(db.clone());
            }
        });

        for _ in 0..workers() {
            scope.spawn(move || {
                let mut last_seen = u64::MAX;
                let mut spins = 0u64;
                loop {
                    let (version, db) = snapshots.load();
                    if version == last_seen {
                        spins += 1;
                        assert!(spins < SPIN_BOUND, "server starved: no new version");
                        std::hint::spin_loop();
                        continue;
                    }
                    last_seen = version;
                    let (plan, expected) = &reference[version as usize];
                    let mut rows = hfqo::exec::execute(&db, graph, plan, config)
                        .expect("server executes")
                        .rows;
                    rows.sort();
                    assert_eq!(
                        &rows, expected,
                        "version {version}: served rows diverge from serial replay"
                    );
                    served_checks.fetch_add(1, Ordering::Relaxed);
                    if version == versions {
                        return;
                    }
                }
            });
        }
    });

    assert!(
        served_checks.load(Ordering::Relaxed) >= workers() as u64,
        "every server must verify at least the final version"
    );
    // Appends through the encoded push path kept the RLE layout.
    let (final_version, final_db) = snapshots.load();
    assert_eq!(final_version, versions);
    for t in 0..4u32 {
        let encs = final_db.table(TableId(t)).unwrap().encodings();
        assert!(
            encs.contains(&Encoding::Rle),
            "table {t}: mutations must preserve RLE columns (got {encs:?})"
        );
    }
}

/// The whole scenario is a pure function of its seeds: two runs of the
/// standard script produce identical outcomes — every round, every
/// p95 bit, every generation count. This is what makes the golden log
/// below meaningful.
#[test]
fn drift_scenario_is_bit_reproducible() {
    let a = DriftScenario::imdb_job().run();
    let b = DriftScenario::imdb_job().run();
    assert_eq!(a, b, "fixed-seed drift scenario must be bit-reproducible");
}

/// Satellite (golden): the standard shock→recovery scenario, pinned.
/// The learned planner must return to expert p95 parity after every
/// shock, within the generation counts recorded in
/// `tests/golden/drift_recovery_seed41.txt` — regenerate deliberately
/// with `HFQO_BLESS=1 cargo test --test drift golden`. The log is
/// profile-independent: identical under dev and release builds,
/// because every latency derives from the deterministic work counter.
#[test]
fn golden_drift_recovery_log() {
    let scenario = DriftScenario::imdb_job();
    let shock_kinds: Vec<ShockKind> = scenario.shocks.iter().map(|s| s.kind).collect();
    assert!(
        shock_kinds.len() >= 3,
        "battery must cover >= 3 shock kinds"
    );
    assert!(shock_kinds.contains(&ShockKind::AppendGrowth));
    assert!(shock_kinds.contains(&ShockKind::SkewShift));
    assert!(shock_kinds.contains(&ShockKind::NewTemplates));
    assert!(shock_kinds.contains(&ShockKind::BulkDelete));

    let outcome = scenario.run();

    // Hands-free: every shock recovers to expert parity within the
    // bounded round budget, and the mutation shocks visibly moved the
    // statistics (the recovery wasn't measured against a stale world).
    assert!(outcome.all_parity(), "{}", outcome.golden_log());
    for (report, kind) in outcome.shocks.iter().zip(&shock_kinds) {
        assert_eq!(report.label, kind.label());
        assert!(report.serves > 0, "{}: nothing served", report.label);
        let expect_drift = *kind != ShockKind::NewTemplates;
        assert_eq!(
            report.drift.is_significant(),
            expect_drift,
            "{}: unexpected drift magnitude",
            report.label
        );
    }

    let actual = outcome.golden_log();
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/drift_recovery_seed41.txt"
    );
    if std::env::var("HFQO_BLESS").is_ok() {
        std::fs::write(golden_path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("golden file present (regenerate with HFQO_BLESS=1)");
    assert_eq!(
        expected, actual,
        "fixed-seed drift-recovery log drifted from {golden_path}; if \
         the change is intentional, regenerate with HFQO_BLESS=1"
    );
}
