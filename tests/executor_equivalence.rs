//! Batch-vs-row executor equivalence.
//!
//! The vectorized batch pipeline must be *observationally identical* to
//! the reference row engine: identical row multisets (hash-grouped
//! output order may differ) and identical `ExecStats.work` totals, on
//! every workload the experiments use — synthetic chain/star/cycle
//! queries and the IMDB/JOB-like suite — across expert plans, random
//! plans, every join algorithm, and budget-capped aborts.
//!
//! Every check also runs the **morsel-driven parallel evaluator** at
//! each thread count in `HFQO_EXEC_THREADS` (default `2,4`): parallel
//! results must match the serial batch pipeline *in exact row order*
//! (hash-grouped aggregates excepted — their emission order is
//! unspecified in both engines), with identical work totals, and abort
//! on exactly the same budgets.
//!
//! A third axis covers **storage encodings**: the same workload
//! materialised plain, dictionary-encoded, and run-length encoded must
//! yield identical results and work everywhere (see
//! [`encoding_equivalence`], gated by `HFQO_FORCE_ENCODING`).

use hfqo::exec::{execute_rows, ExecError};
use hfqo::prelude::*;
use hfqo::workload::synth::{Shape, SynthConfig, SynthDb};
use hfqo_query::{AggAlgo, PlanNode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// Thread counts for the parallel-vs-serial pass: `HFQO_EXEC_THREADS`
/// (comma-separated), defaulting to `2,4`.
fn exec_threads() -> &'static [usize] {
    static COUNTS: OnceLock<Vec<usize>> = OnceLock::new();
    COUNTS.get_or_init(|| match std::env::var("HFQO_EXEC_THREADS") {
        Ok(raw) => raw
            .split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("invalid HFQO_EXEC_THREADS entry {tok:?}"))
                    .max(1)
            })
            .collect(),
        Err(_) => vec![2, 4],
    })
}

fn synth() -> &'static SynthDb {
    static DB: OnceLock<SynthDb> = OnceLock::new();
    DB.get_or_init(|| {
        SynthDb::build(SynthConfig {
            tables: 6,
            rows: 400,
            seed: 21,
        })
    })
}

fn imdb() -> &'static WorkloadBundle {
    static DB: OnceLock<WorkloadBundle> = OnceLock::new();
    DB.get_or_init(|| {
        WorkloadBundle::imdb_job(
            ImdbConfig {
                base_rows: 300,
                seed: 9,
            },
            6,
        )
    })
}

/// Asserts the two engines agree on `plan`: same row multiset, same
/// work; or the same budget-exceeded outcome. Then re-runs the plan
/// through the parallel evaluator at every [`exec_threads`] count and
/// asserts it matches the serial batch outcome exactly.
fn assert_equivalent(
    db: &Database,
    graph: &QueryGraph,
    plan: &PhysicalPlan,
    config: ExecConfig,
    what: &str,
) {
    let batch = hfqo::exec::execute(db, graph, plan, config);
    let row = execute_rows(db, graph, plan, config);
    match (&batch, row) {
        (Ok(b), Ok(r)) => {
            let mut bs = b.rows.clone();
            let mut rs = r.rows.clone();
            bs.sort();
            rs.sort();
            assert_eq!(bs, rs, "{what}: row multisets differ");
            assert_eq!(b.stats.work, r.stats.work, "{what}: work totals differ");
            assert_eq!(b.layout, r.layout, "{what}: layouts differ");
            assert_eq!(b.schema, r.schema, "{what}: schemas differ");
        }
        (
            Err(ExecError::BudgetExceeded { budget: b, .. }),
            Err(ExecError::BudgetExceeded { budget: r, .. }),
        ) => {
            assert_eq!(*b, r, "{what}: different budgets reported");
        }
        (b, r) => panic!(
            "{what}: engines disagree on outcome: batch {:?} vs row {:?}",
            b.as_ref().map(|o| o.rows.len()),
            r.map(|o| o.rows.len())
        ),
    }
    // Hash-grouped aggregates emit groups in unspecified order in both
    // engines; everything else is order-deterministic and the parallel
    // evaluator must reproduce the serial order bit-for-bit.
    let order_stable = !matches!(
        &plan.root,
        PlanNode::Aggregate {
            algo: AggAlgo::Hash,
            ..
        }
    );
    for &threads in exec_threads() {
        let par = hfqo::exec::execute(db, graph, plan, config.threads(threads));
        match (&batch, par) {
            (Ok(b), Ok(p)) => {
                if order_stable {
                    assert_eq!(p.rows, b.rows, "{what}: parallel t={threads} row order");
                } else {
                    let mut ps = p.rows.clone();
                    let mut bs = b.rows.clone();
                    ps.sort();
                    bs.sort();
                    assert_eq!(ps, bs, "{what}: parallel t={threads} multiset");
                }
                assert_eq!(
                    p.stats.work, b.stats.work,
                    "{what}: parallel t={threads} work"
                );
                assert_eq!(p.layout, b.layout, "{what}: parallel t={threads} layout");
                assert_eq!(p.schema, b.schema, "{what}: parallel t={threads} schema");
            }
            (
                Err(ExecError::BudgetExceeded { budget: b, .. }),
                Err(ExecError::BudgetExceeded { budget: p, .. }),
            ) => {
                assert_eq!(*b, p, "{what}: parallel t={threads} budget");
            }
            (b, p) => panic!(
                "{what}: serial and parallel (t={threads}) disagree: {:?} vs {:?}",
                b.as_ref().map(|o| o.rows.len()),
                p.map(|o| o.rows.len())
            ),
        }
    }
}

#[test]
fn synth_expert_plans_are_equivalent() {
    let db = synth();
    let optimizer = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
    for shape in [Shape::Chain, Shape::Star, Shape::Cycle] {
        for n in 2..=5 {
            for qseed in 0..3 {
                let graph = db.query(shape, n, 2, qseed);
                let plan = optimizer.plan(&graph).expect("plannable").plan;
                assert_equivalent(
                    &db.db,
                    &graph,
                    &plan,
                    ExecConfig::default(),
                    &format!("synth {shape:?} n={n} seed={qseed}"),
                );
            }
        }
    }
}

#[test]
fn synth_random_plans_are_equivalent() {
    let db = synth();
    let mut rng = StdRng::seed_from_u64(3);
    for qseed in 0..6 {
        let graph = db.query(Shape::Chain, 4, 2, qseed);
        for p in 0..4 {
            let plan = random_plan(&graph, db.db.catalog(), &mut rng);
            // A random order can be a budget-busting cross join; both
            // engines must agree either way.
            assert_equivalent(
                &db.db,
                &graph,
                &plan,
                ExecConfig::default(),
                &format!("random qseed={qseed} p={p}"),
            );
        }
    }
}

#[test]
fn imdb_job_expert_plans_are_equivalent() {
    let bundle = imdb();
    let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
    for (i, graph) in bundle.queries.iter().take(20).enumerate() {
        let plan = optimizer.plan(graph).expect("plannable").plan;
        assert_equivalent(
            &bundle.db,
            graph,
            &plan,
            ExecConfig::default(),
            &format!("imdb q{i} ({:?})", graph.label),
        );
    }
}

#[test]
fn aggregate_variants_are_equivalent() {
    let db = synth();
    let optimizer = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
    for qseed in 0..4 {
        let graph = hfqo::opt::test_support::with_count(db.query(Shape::Star, 4, 1, qseed));
        let plan = optimizer.plan(&graph).expect("plannable").plan;
        // Exercise both aggregation algorithms over the same join tree.
        for algo in [AggAlgo::Hash, AggAlgo::Sort] {
            let plan = match &plan.root {
                PlanNode::Aggregate { input, .. } => PhysicalPlan::new(PlanNode::Aggregate {
                    algo,
                    input: input.clone(),
                }),
                other => PhysicalPlan::new(PlanNode::Aggregate {
                    algo,
                    input: Box::new(other.clone()),
                }),
            };
            assert_equivalent(
                &db.db,
                &graph,
                &plan,
                ExecConfig::default(),
                &format!("agg {algo:?} qseed={qseed}"),
            );
        }
    }
}

#[test]
fn budget_capped_plans_abort_identically() {
    let db = synth();
    let mut rng = StdRng::seed_from_u64(8);
    let graph = db.query(Shape::Chain, 5, 0, 2);
    for p in 0..6 {
        let plan = random_plan(&graph, db.db.catalog(), &mut rng);
        assert_equivalent(
            &db.db,
            &graph,
            &plan,
            ExecConfig::with_budget(5_000),
            &format!("tight-budget p={p}"),
        );
    }
}

mod empty_input {
    //! Zero-batch coverage for the operator zoo: a selection filters an
    //! input to zero rows, and the batch pipeline must agree with the
    //! row engine everywhere a zero-batch can reach — merge join (the
    //! original PR 2 fix), hash join build and probe sides, and both
    //! aggregation algorithms. These pin the class of bug where an
    //! operator indexes into a first batch that never arrives.

    use super::*;
    use hfqo::catalog::{Column, ColumnId, ColumnType, TableSchema};
    use hfqo::query::{AccessPath, BoundColumn, JoinEdge, Lit, RelId, Relation, Selection};
    use hfqo::sql::CompareOp;
    use hfqo::storage::Value;
    use hfqo_query::JoinAlgo;

    /// A two-table database (`a`, `b`, one int key column, 5 matching
    /// rows each) and its join graph, with a never-matching selection
    /// on each relation listed in `empty_rels`.
    fn join_fixture(empty_rels: &[usize]) -> (Database, QueryGraph) {
        let mut cat = Catalog::new();
        let a = cat
            .add_table(TableSchema::new(
                "a",
                vec![Column::new("k", ColumnType::Int)],
            ))
            .unwrap();
        let b = cat
            .add_table(TableSchema::new(
                "b",
                vec![Column::new("k", ColumnType::Int)],
            ))
            .unwrap();
        let mut db = Database::new(cat);
        for i in 0..5i64 {
            db.table_mut(a)
                .unwrap()
                .append_row(&[Value::Int(i)])
                .unwrap();
            db.table_mut(b)
                .unwrap()
                .append_row(&[Value::Int(i)])
                .unwrap();
        }
        let graph = QueryGraph::new(
            vec![
                Relation {
                    table: a,
                    alias: "a".into(),
                },
                Relation {
                    table: b,
                    alias: "b".into(),
                },
            ],
            vec![JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(0)),
            }],
            // Never-matching selections empty the chosen sides.
            empty_rels
                .iter()
                .map(|&r| Selection {
                    column: BoundColumn::new(RelId(r as u32), ColumnId(0)),
                    op: CompareOp::Lt,
                    value: Lit::Int(-100),
                })
                .collect(),
            vec![],
            vec![],
        );
        (db, graph)
    }

    fn join_plan(algo: JoinAlgo) -> PhysicalPlan {
        PhysicalPlan::new(PlanNode::Join {
            algo,
            conds: vec![0],
            left: Box::new(PlanNode::Scan {
                rel: RelId(0),
                path: AccessPath::SeqScan,
            }),
            right: Box::new(PlanNode::Scan {
                rel: RelId(1),
                path: AccessPath::SeqScan,
            }),
        })
    }

    /// Merge join with an empty input side. Promoted from a PR 1 review
    /// scratch test; this exposed (and pins) the zero-batch key-column
    /// sort panic fixed in PR 2.
    #[test]
    fn merge_join_with_empty_input_side_is_equivalent() {
        let (db, graph) = join_fixture(&[0]);
        let plan = join_plan(JoinAlgo::Merge);
        assert_equivalent(
            &db,
            &graph,
            &plan,
            ExecConfig::default(),
            "empty-side merge",
        );
        let out = hfqo::exec::execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(out.rows.len(), 0, "filtered side yields no join output");
    }

    /// Hash join whose *probe* side (the left input) is filtered to
    /// zero rows: the probe loop must drain cleanly against a populated
    /// build table.
    #[test]
    fn hash_join_with_empty_probe_side_is_equivalent() {
        let (db, graph) = join_fixture(&[0]);
        let plan = join_plan(JoinAlgo::Hash);
        assert_equivalent(
            &db,
            &graph,
            &plan,
            ExecConfig::default(),
            "empty-probe hash join",
        );
        let out = hfqo::exec::execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(out.rows.len(), 0);
    }

    /// Hash join whose *build* side (the right input) is filtered to
    /// zero rows: building over no batches must leave a valid, empty
    /// hash table for the probe phase.
    #[test]
    fn hash_join_with_empty_build_side_is_equivalent() {
        let (db, graph) = join_fixture(&[1]);
        let plan = join_plan(JoinAlgo::Hash);
        assert_equivalent(
            &db,
            &graph,
            &plan,
            ExecConfig::default(),
            "empty-build hash join",
        );
        let out = hfqo::exec::execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
        assert_eq!(out.rows.len(), 0);
    }

    /// Both sides empty at once, for every join algorithm.
    #[test]
    fn joins_with_both_sides_empty_are_equivalent() {
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let (db, graph) = join_fixture(&[0, 1]);
            let plan = join_plan(algo);
            assert_equivalent(
                &db,
                &graph,
                &plan,
                ExecConfig::default(),
                &format!("both-empty {algo:?}"),
            );
        }
    }

    /// Aggregation (hash- and sort-based) over an input filtered to
    /// zero rows: the aggregate operator sees no batches at all, and
    /// both engines must agree on the result of aggregating nothing.
    #[test]
    fn aggregation_over_empty_input_is_equivalent() {
        for algo in [AggAlgo::Hash, AggAlgo::Sort] {
            let (db, graph) = join_fixture(&[0, 1]);
            let graph = hfqo::opt::test_support::with_count(graph);
            let plan = PhysicalPlan::new(PlanNode::Aggregate {
                algo,
                input: Box::new(join_plan(JoinAlgo::Hash).root),
            });
            assert_equivalent(
                &db,
                &graph,
                &plan,
                ExecConfig::default(),
                &format!("empty-input aggregate {algo:?}"),
            );
        }
    }
}

mod morsel_geometry {
    //! Property: parallel execution is invariant to morsel geometry.
    //! Random (thread count, morsel size) pairs over expert plans must
    //! reproduce the serial batch result bit-for-bit — row order, work
    //! total, everything. This is the knob space a bug in morsel-order
    //! reassembly or charge accounting would show up in.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn parallel_execution_is_invariant_to_morsel_geometry(
            threads in 2usize..6,
            morsel in 1usize..700,
            shape_ix in 0usize..3,
            qseed in 0u64..4,
        ) {
            let db = synth();
            let shape = [Shape::Chain, Shape::Star, Shape::Cycle][shape_ix];
            let graph = db.query(shape, 3, 1, qseed);
            let optimizer = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
            let plan = optimizer.plan(&graph).expect("plannable").plan;
            let serial = hfqo::exec::execute(&db.db, &graph, &plan, ExecConfig::default())
                .expect("serial executes");
            let cfg = ExecConfig::default().threads(threads).morsel_rows(morsel);
            let par = hfqo::exec::execute(&db.db, &graph, &plan, cfg)
                .expect("parallel executes");
            let order_stable = !matches!(
                &plan.root,
                PlanNode::Aggregate { algo: AggAlgo::Hash, .. }
            );
            if order_stable {
                prop_assert_eq!(&par.rows, &serial.rows);
            } else {
                let mut ps = par.rows.clone();
                let mut ss = serial.rows.clone();
                ps.sort();
                ss.sort();
                prop_assert_eq!(ps, ss);
            }
            prop_assert_eq!(par.stats.work, serial.stats.work);
        }
    }
}

mod encoding_equivalence {
    //! Property: results and work are invariant to storage encoding.
    //! The same IMDB workload is materialised three ways — plain
    //! columns, dictionary-encoded text, and run-length encoding
    //! stacked on top — and every plan must produce the same row
    //! multiset and the *same `ExecStats.work`* on each, across the row
    //! engine, the batch engine, and the parallel evaluator at every
    //! thread count. Work charges per *visited row*, so compression
    //! must never change what a query costs.
    //!
    //! `HFQO_FORCE_ENCODING` (comma-separated `plain,dict,rle`)
    //! restricts the encodings exercised — the CI matrix uses it to run
    //! each encoding in its own job; the default covers all three and
    //! cross-checks them against each other.

    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Enc {
        Plain,
        Dict,
        Rle,
    }

    impl Enc {
        fn parse(tok: &str) -> Self {
            match tok.trim() {
                "plain" => Self::Plain,
                "dict" => Self::Dict,
                "rle" => Self::Rle,
                other => panic!("invalid HFQO_FORCE_ENCODING entry {other:?}"),
            }
        }
    }

    /// Encodings under test: `HFQO_FORCE_ENCODING` or all three.
    fn forced_encodings() -> &'static [Enc] {
        static ENCS: OnceLock<Vec<Enc>> = OnceLock::new();
        ENCS.get_or_init(|| match std::env::var("HFQO_FORCE_ENCODING") {
            Ok(raw) => raw.split(',').map(Enc::parse).collect(),
            Err(_) => vec![Enc::Plain, Enc::Dict, Enc::Rle],
        })
    }

    /// The [`super::imdb`] workload, re-encoded wholesale: every column
    /// decoded to plain storage first, then pushed into `enc`. Thresholds
    /// are maximal (`usize::MAX` distinct values, average run ≥ 1) so the
    /// encoding applies to every eligible column, not just favourable
    /// ones. Indexes are rebuilt over the re-encoded columns.
    fn encoded(enc: Enc) -> &'static WorkloadBundle {
        static PLAIN: OnceLock<WorkloadBundle> = OnceLock::new();
        static DICT: OnceLock<WorkloadBundle> = OnceLock::new();
        static RLE: OnceLock<WorkloadBundle> = OnceLock::new();
        let cell = match enc {
            Enc::Plain => &PLAIN,
            Enc::Dict => &DICT,
            Enc::Rle => &RLE,
        };
        cell.get_or_init(|| {
            let mut bundle = WorkloadBundle::imdb_job(
                ImdbConfig {
                    base_rows: 300,
                    seed: 9,
                },
                6,
            );
            let tids: Vec<_> = bundle.db.catalog().tables().map(|(tid, _)| tid).collect();
            for tid in tids {
                let table = bundle.db.table_mut(tid).expect("table exists");
                table.decode_columns();
                match enc {
                    Enc::Plain => {}
                    Enc::Dict => {
                        table.dictionary_encode_strings(usize::MAX);
                    }
                    Enc::Rle => {
                        table.dictionary_encode_strings(usize::MAX);
                        table.rle_encode_columns(1);
                    }
                }
            }
            bundle.db.build_indexes().expect("indexes rebuild");
            bundle
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn results_and_work_are_encoding_invariant(
            qi in 0usize..20,
            budget_k in 0u64..40,
        ) {
            // Each encoding first proves row/batch/parallel agreement
            // internally, then its serial batch outcome is compared
            // against the first encoding's — including budget aborts,
            // which must trip at the same work count everywhere.
            let mut baseline = None;
            for &enc in forced_encodings() {
                let bundle = encoded(enc);
                let graph = &bundle.queries[qi % bundle.queries.len()];
                let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
                let plan = optimizer.plan(graph).expect("plannable").plan;
                // budget_k == 0 means unlimited; small multiples force
                // mid-plan aborts.
                let config = match budget_k {
                    0 => ExecConfig::default(),
                    k => ExecConfig::with_budget(k * 5_000),
                };
                assert_equivalent(
                    &bundle.db,
                    graph,
                    &plan,
                    config,
                    &format!("encoding {enc:?} q{qi}"),
                );
                let outcome = match hfqo::exec::execute(&bundle.db, graph, &plan, config) {
                    Ok(out) => {
                        let mut rows = out.rows;
                        rows.sort();
                        Ok((rows, out.stats.work))
                    }
                    Err(ExecError::BudgetExceeded { work_done, budget }) => {
                        Err((work_done, budget))
                    }
                    Err(e) => panic!("encoding {enc:?} q{qi}: {e:?}"),
                };
                match &baseline {
                    None => baseline = Some((enc, outcome)),
                    Some((base_enc, base)) => prop_assert_eq!(
                        &outcome,
                        base,
                        "q{} encoding {:?} vs {:?}",
                        qi,
                        enc,
                        base_enc
                    ),
                }
            }
        }
    }
}

#[test]
fn true_cardinality_oracle_matches_row_counts() {
    // The oracle now counts through zero-column batch pipelines; its
    // counts must equal full row-engine execution of the same subsets.
    let bundle = imdb();
    for graph in bundle.queries.iter().take(8) {
        let oracle = TrueCardinality::new(&bundle.db);
        let counted = oracle.set_rows(graph, graph.all_rels());
        let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
        let plan = optimizer.plan(graph).expect("plannable").plan;
        let join_only = match &plan.root {
            PlanNode::Aggregate { input, .. } => PhysicalPlan::new((**input).clone()),
            other => PhysicalPlan::new(other.clone()),
        };
        let executed = execute_rows(&bundle.db, graph, &join_only, ExecConfig::default())
            .expect("executes")
            .rows
            .len() as f64;
        assert_eq!(counted, executed, "{:?}", graph.label);
    }
}
