//! Template-cache integration: the (template, params) fingerprint
//! split, selectivity-band re-planning, single-flight cold misses, and
//! concurrent zipf-parameterized serving (CI runs this file across the
//! `HFQO_WORKERS` / `HFQO_EXEC_THREADS` matrix).

use hfqo::prelude::*;
use hfqo::query::{BoundColumn, Lit, RelId, Selection};
use hfqo::sql::CompareOp;
use hfqo::workload::synth::{Shape, SynthConfig, SynthDb};
use hfqo_catalog::ColumnId;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn synth_config() -> SynthConfig {
    SynthConfig {
        tables: 7,
        rows: 400,
        seed: 77,
    }
}

fn generator() -> &'static SynthDb {
    static DB: OnceLock<SynthDb> = OnceLock::new();
    DB.get_or_init(|| SynthDb::build(synth_config()))
}

fn shape_from(v: u8) -> Shape {
    match v % 3 {
        0 => Shape::Chain,
        1 => Shape::Star,
        _ => Shape::Cycle,
    }
}

/// Rebuilds `graph` with a transformed selection list (same relations,
/// joins, and output shape).
fn with_selections(graph: &QueryGraph, selections: Vec<Selection>) -> QueryGraph {
    QueryGraph::new(
        graph.relations().to_vec(),
        graph.joins().to_vec(),
        selections,
        graph.aggregates().to_vec(),
        graph.group_by().to_vec(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The templated-workload fix, property form: queries differing
    /// only in their literal constants share one template fingerprint
    /// (with the literals extracted into the parameter vector in slot
    /// order), while the exact fingerprint still tells them apart.
    #[test]
    fn same_template_different_literals_share_a_template(
        shape in 0u8..3,
        n in 3usize..7,
        s1 in 0u64..500,
        s2 in 500u64..1000,
    ) {
        let gen = generator();
        let a = gen.query(shape_from(shape), n, 2, s1);
        let b = gen.query(shape_from(shape), n, 2, s2);
        let (ta, pa) = template_fingerprint(&a);
        let (tb, pb) = template_fingerprint(&b);
        prop_assert_eq!(ta, tb, "literal-only variation must not split templates");
        prop_assert_eq!(pa.len(), a.selections().len());
        prop_assert_eq!(pa.len(), pb.len());
        // Slot order: parameter i is selection i's literal.
        for (param, sel) in pa.params().iter().zip(a.selections()) {
            prop_assert_eq!(param, &sel.value);
        }
        // The exact fingerprint distinguishes them iff the literals do.
        prop_assert_eq!(
            fingerprint(&a) == fingerprint(&b),
            pa == pb,
            "exact fingerprints must track the parameter vectors"
        );
    }

    /// Structurally distinct queries must NOT share a template: the
    /// template hashes the join structure, predicate columns, operators,
    /// and slot order — not just "some query over these tables".
    /// (n ≥ 3 because all three shapes coincide at two relations.)
    #[test]
    fn structurally_distinct_queries_get_distinct_templates(
        c1 in 0usize..12,
        offset in 1usize..12,
        seed in 0u64..1000,
    ) {
        // Twelve distinct (shape, size) structures; the offset picks a
        // guaranteed-different second one (the vendored proptest has no
        // `prop_assume`, so distinctness is built into the generator).
        let c2 = (c1 + offset) % 12;
        let (shape1, n1) = ((c1 / 4) as u8, 3 + c1 % 4);
        let (shape2, n2) = ((c2 / 4) as u8, 3 + c2 % 4);
        let gen = generator();
        let a = gen.query(shape_from(shape1), n1, 2, seed);
        let b = gen.query(shape_from(shape2), n2, 2, seed);
        prop_assert_ne!(
            template_fingerprint(&a).0,
            template_fingerprint(&b).0,
            "different join structures must not share a template"
        );
    }

    /// Per-slot structure is part of the template: reordering the
    /// predicate slots or changing one comparison operator produces a
    /// different template even over identical relations and literals.
    #[test]
    fn slot_structure_splits_templates(seed in 0u64..1000) {
        let gen = generator();
        // sel_every=1 puts a selection on every relation: 3 slots.
        let base = gen.query(Shape::Chain, 3, 1, seed);
        let (t_base, _) = template_fingerprint(&base);

        let mut reordered = base.selections().to_vec();
        reordered.reverse();
        let reordered = with_selections(&base, reordered);
        prop_assert_ne!(
            t_base,
            template_fingerprint(&reordered).0,
            "slot order is structural"
        );

        let mut op_changed = base.selections().to_vec();
        op_changed[0].op = CompareOp::Ge;
        let op_changed = with_selections(&base, op_changed);
        prop_assert_ne!(
            t_base,
            template_fingerprint(&op_changed).0,
            "comparison operators are structural"
        );

        // …while rebinding every literal (the parameterization) is not.
        let rebound: Vec<Selection> = base
            .selections()
            .iter()
            .map(|s| Selection { value: Lit::Int(7), ..s.clone() })
            .collect();
        let rebound = with_selections(&base, rebound);
        prop_assert_eq!(t_base, template_fingerprint(&rebound).0);
    }
}

/// A chain query with one *equality* selection on `s0.val` (the zipf
/// column): the selectivity of `val = c` swings by orders of magnitude
/// between the most common value and the tail, which is what the
/// re-plan band exists to catch. (The synth generator only emits range
/// selections, whose estimates are too uniform to leave the band.)
fn eq_query(gen: &SynthDb, value: i64) -> QueryGraph {
    let base = gen.query(Shape::Chain, 3, 0, 0);
    with_selections(
        &base,
        vec![Selection {
            column: BoundColumn::new(RelId(0), ColumnId(2)),
            op: CompareOp::Eq,
            value: Lit::Int(value),
        }],
    )
}

/// The named selectivity-band acceptance test: a template hit whose
/// current parameters' estimated selectivity deviates outside the band
/// re-plans into a separate per-template plan bucket instead of being
/// served the mismatched plan.
#[test]
fn selectivity_band_replan_triggers_new_plan_bucket() {
    let synth = SynthDb::build(synth_config());
    // `val` is Zipf(n=200, s=1.0): value 1 is the head (~17% of rows),
    // value 180 is deep tail. Self-check that the statistics really put
    // them outside the default band before asserting cache behavior.
    let common = eq_query(&synth, 1);
    let rare = eq_query(&synth, 180);
    let other_tail = eq_query(&synth, 185);
    let (t_common, _) = template_fingerprint(&common);
    let (t_rare, _) = template_fingerprint(&rare);
    assert_eq!(t_common, t_rare, "same template, different constants");
    let s_common = selection_selectivities(&synth.stats, &common)[0];
    let s_rare = selection_selectivities(&synth.stats, &rare)[0];
    let band = CacheConfig::default().selectivity_band;
    assert!(
        s_common / s_rare > band,
        "fixture must straddle the band: common={s_common} rare={s_rare}"
    );

    let session = QuerySession::traditional(synth.db, synth.stats);
    assert_eq!(
        session.serve_graph(&common).unwrap().cache,
        CacheOutcome::Miss
    );
    // Same template, out-of-band constants: re-plan, not a blind hit.
    let rare_served = session.serve_graph(&rare).unwrap();
    assert_eq!(rare_served.cache, CacheOutcome::Replan);
    assert!(!rare_served.cache_hit);
    let m = session.cache_metrics();
    assert_eq!((m.misses, m.replans, m.len, m.plans), (1, 1, 1, 2));

    // Both regimes now hit their own buckets…
    assert_eq!(
        session.serve_graph(&common).unwrap().cache,
        CacheOutcome::ExactHit
    );
    assert_eq!(
        session.serve_graph(&rare).unwrap().cache,
        CacheOutcome::ExactHit
    );
    // …and a *new* tail constant band-matches the rare bucket: within a
    // regime the template's plan is shared across constants.
    let served = session.serve_graph(&other_tail).unwrap();
    assert_eq!(served.cache, CacheOutcome::TemplateHit);
    assert!(served.cache_hit);
    assert_eq!(session.cache_metrics().plans, 2, "no third bucket");
}

/// A planner wrapper that counts how many times `plan` actually runs —
/// the observable for the single-flight guarantee. `plan` refuses to
/// finish until every racing thread has arrived at its probe, so the
/// race window is held open *deterministically*: without single-flight,
/// all racers end up in here and the run count explodes; with it, the
/// one leader waits for the stragglers and everyone else hits.
struct CountingPlanner {
    inner: TraditionalPlanner,
    runs: std::sync::Arc<AtomicUsize>,
    arrived: std::sync::Arc<AtomicUsize>,
    workers: usize,
}

impl Planner for CountingPlanner {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn plan(
        &self,
        ctx: &PlannerContext<'_>,
        graph: &QueryGraph,
    ) -> Result<hfqo::opt::PlannedQuery, hfqo::opt::OptError> {
        // Relaxed: counters/gates only; the scope join orders the final
        // asserts, and atomic visibility alone drives the gate below.
        self.runs.fetch_add(1, Ordering::Relaxed);
        while self.arrived.load(Ordering::Relaxed) < self.workers {
            std::thread::yield_now();
        }
        self.inner.plan(ctx, graph)
    }
}

/// Satellite regression (silent double-planning): N threads racing on
/// the same cold fingerprint must run the planner exactly once — the
/// rest wait on the in-flight plan and hit. Any residual race would be
/// visible as `duplicate_plans > 0`.
#[test]
fn racing_cold_misses_plan_exactly_once() {
    let synth = SynthDb::build(synth_config());
    let graph = synth.query(Shape::Chain, 4, 2, 9);
    let runs = std::sync::Arc::new(AtomicUsize::new(0));
    let arrived = std::sync::Arc::new(AtomicUsize::new(0));
    let workers = 8;
    let planner = CountingPlanner {
        inner: TraditionalPlanner::new(),
        runs: std::sync::Arc::clone(&runs),
        arrived: std::sync::Arc::clone(&arrived),
        workers,
    };
    let session = QuerySession::new(synth.db, synth.stats, Box::new(planner));
    let barrier = std::sync::Barrier::new(workers);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let session = &session;
            let graph = &graph;
            let (barrier, arrived) = (&barrier, &arrived);
            scope.spawn(move || {
                barrier.wait();
                // Announce arrival before probing: the planning leader
                // holds its flight open until all racers are past this
                // point (see CountingPlanner::plan).
                arrived.fetch_add(1, Ordering::Relaxed);
                session.plan(graph).expect("plan");
            });
        }
    });
    assert_eq!(
        runs.load(Ordering::Relaxed),
        1,
        "exactly one planner run for {workers} racing threads"
    );
    let m = session.cache_metrics();
    assert_eq!(m.misses, 1, "one leader planned; the rest waited and hit");
    assert_eq!(
        m.duplicate_plans, 0,
        "single-flight leaves no duplicate inserts"
    );
    assert_eq!(
        m.hits + m.misses + m.replans,
        workers as u64,
        "every probe accounted exactly once"
    );
    assert_eq!(m.plans, 1, "one plan bucket for the one planner run");
}

/// Worker counts: `HFQO_WORKERS` (comma-separated), default `2,4` —
/// the acceptance matrix for the concurrent template-sharing test.
fn worker_counts() -> Vec<usize> {
    match std::env::var("HFQO_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("invalid HFQO_WORKERS entry `{s}`"))
                    .max(1)
            })
            .collect(),
        Err(_) => vec![2, 4],
    }
}

/// Executor threads for the serving sessions below: `HFQO_EXEC_THREADS`
/// (single value; CI varies it), default 1.
fn exec_threads() -> usize {
    std::env::var("HFQO_EXEC_THREADS")
        .ok()
        .and_then(|v| v.split(',').next().and_then(|s| s.trim().parse().ok()))
        .unwrap_or(1)
        .max(1)
}

/// The headline workload: one template, zipf-skewed parameters, served
/// concurrently. Every worker must observe the serial reference rows,
/// and the cache must actually share — hits plus intra-template
/// re-plans, with at most a handful of cold misses on the single
/// template.
#[test]
fn concurrent_zipf_template_serving_matches_serial_reference() {
    let synth = SynthDb::build(synth_config());
    // 12 parameterizations of one chain template (literal-only
    // variation), zipf-ordered repetition: early queries dominate.
    let params: Vec<QueryGraph> = (0..12u64)
        .map(|s| synth.query(Shape::Chain, 4, 2, 700 + s))
        .collect();
    let template = template_fingerprint(&params[0]).0;
    for q in &params {
        assert_eq!(template_fingerprint(q).0, template, "one template only");
    }
    // Zipf-ish access pattern over the parameterizations: index i is
    // served proportionally to 1/(i+1).
    let schedule: Vec<usize> = (0..params.len())
        .flat_map(|i| std::iter::repeat_n(i, params.len() / (i + 1)))
        .collect();

    let exec = ExecConfig::default().threads(exec_threads());
    let serial =
        QuerySession::traditional(synth.db.clone(), synth.stats.clone()).with_exec_config(exec);
    let reference: Vec<Vec<Vec<hfqo::storage::Value>>> = params
        .iter()
        .map(|q| {
            let mut rows = serial.serve_graph(q).expect("serial serve").outcome.rows;
            rows.sort();
            rows
        })
        .collect();

    for workers in worker_counts() {
        let session =
            QuerySession::traditional(synth.db.clone(), synth.stats.clone()).with_exec_config(exec);
        std::thread::scope(|scope| {
            for w in 0..workers {
                let session = &session;
                let params = &params;
                let schedule = &schedule;
                let reference = &reference;
                scope.spawn(move || {
                    for round in 0..2 {
                        for i in 0..schedule.len() {
                            // Stagger so workers race on different
                            // parameterizations first.
                            let idx = schedule[(i + w * 3 + round) % schedule.len()];
                            let served =
                                session.serve_graph(&params[idx]).expect("concurrent serve");
                            let mut rows = served.outcome.rows.clone();
                            rows.sort();
                            assert_eq!(
                                rows, reference[idx],
                                "worker {w} round {round} param {idx}"
                            );
                        }
                    }
                });
            }
        });
        let m = session.cache_metrics();
        let serves = (workers * 2 * schedule.len()) as u64;
        assert_eq!(m.hits + m.misses + m.replans, serves, "probe accounting");
        assert_eq!(
            m.len, 1,
            "a single template entry serves the whole workload"
        );
        assert!(
            m.sharing_rate() > 0.9,
            "templated workload must share: hits={} replans={} misses={} (rate {:.3})",
            m.hits,
            m.replans,
            m.misses,
            m.sharing_rate()
        );
        assert_eq!(m.duplicate_plans, 0, "no silent double-planning");
    }
}
