//! Property-based tests on cross-crate invariants.

use hfqo::prelude::*;
use hfqo::workload::synth::{Shape, SynthConfig, SynthDb};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared synthetic database for all properties (building per-case
/// would dominate the run time).
fn synth() -> &'static SynthDb {
    static DB: OnceLock<SynthDb> = OnceLock::new();
    DB.get_or_init(|| {
        SynthDb::build(SynthConfig {
            tables: 7,
            rows: 150,
            seed: 99,
        })
    })
}

fn shape_from(v: u8) -> Shape {
    match v % 3 {
        0 => Shape::Chain,
        1 => Shape::Star,
        _ => Shape::Cycle,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random plans over random queries always validate, and the DP
    /// optimizer never prices worse than they do.
    #[test]
    fn dp_never_loses_to_random(
        n in 2usize..6,
        shape in 0u8..3,
        qseed in 0u64..50,
        pseed in 0u64..50,
    ) {
        let db = synth();
        let graph = db.query(shape_from(shape), n, 2, qseed);
        let optimizer = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let expert_cost = optimizer.plan(&graph).expect("plannable").cost;
        let mut rng = StdRng::seed_from_u64(pseed);
        let plan = random_plan(&graph, db.db.catalog(), &mut rng);
        plan.validate(&graph).expect("random plans are valid");
        let random_cost = optimizer.cost_of(&graph, &plan);
        prop_assert!(expert_cost <= random_cost * 1.0001,
            "dp {expert_cost} vs random {random_cost}");
    }

    /// Every random plan executes to the same row count as the expert
    /// plan (within budget; small data guarantees it fits).
    #[test]
    fn all_plans_agree_on_results(
        n in 2usize..5,
        shape in 0u8..3,
        qseed in 0u64..25,
        pseed in 0u64..25,
    ) {
        let db = synth();
        let graph = db.query(shape_from(shape), n, 2, qseed);
        let optimizer = TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let expert = optimizer.plan(&graph).expect("plannable");
        let expert_count = execute(&db.db, &graph, &expert.plan, ExecConfig::default())
            .expect("expert executes")
            .rows
            .len();
        let mut rng = StdRng::seed_from_u64(pseed);
        let plan = random_plan(&graph, db.db.catalog(), &mut rng);
        match execute(&db.db, &graph, &plan, ExecConfig::default()) {
            Ok(out) => prop_assert_eq!(out.rows.len(), expert_count),
            // A random cross-join order can legitimately exhaust the work
            // budget even on tiny tables — exactly the catastrophic-plan
            // behaviour the budget exists to contain.
            Err(hfqo::exec::ExecError::BudgetExceeded { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    /// The batch pipeline and the reference row engine agree — same row
    /// multiset, same work total — on random plans over random queries,
    /// including budget-capped aborts.
    #[test]
    fn batch_and_row_engines_are_equivalent(
        n in 2usize..5,
        shape in 0u8..3,
        qseed in 0u64..25,
        pseed in 0u64..25,
    ) {
        let db = synth();
        let graph = db.query(shape_from(shape), n, 2, qseed);
        let mut rng = StdRng::seed_from_u64(pseed);
        let plan = random_plan(&graph, db.db.catalog(), &mut rng);
        let config = ExecConfig::default();
        let batch = execute(&db.db, &graph, &plan, config);
        let row = hfqo::exec::execute_rows(&db.db, &graph, &plan, config);
        match (batch, row) {
            (Ok(b), Ok(r)) => {
                let mut bs = b.rows;
                let mut rs = r.rows;
                bs.sort();
                rs.sort();
                prop_assert_eq!(bs, rs);
                prop_assert_eq!(b.stats.work, r.stats.work);
            }
            (
                Err(hfqo::exec::ExecError::BudgetExceeded { .. }),
                Err(hfqo::exec::ExecError::BudgetExceeded { .. }),
            ) => {}
            (b, r) => prop_assert!(
                false,
                "engines disagree: batch {:?} vs row {:?}",
                b.map(|o| o.rows.len()),
                r.map(|o| o.rows.len())
            ),
        }
    }

    /// The estimated cardinality of a join subset never increases when a
    /// selection is added to the query.
    #[test]
    fn selections_never_increase_estimates(
        n in 2usize..6,
        qseed in 0u64..50,
    ) {
        let db = synth();
        let with_sel = db.query(Shape::Chain, n, 1, qseed);
        let without_sel = db.query(Shape::Chain, n, 0, qseed);
        let est = EstimatedCardinality::new(&db.stats);
        let a = est.set_rows(&with_sel, with_sel.all_rels());
        let b = est.set_rows(&without_sel, without_sel.all_rels());
        prop_assert!(a <= b * 1.0001, "with sel {a} vs without {b}");
    }

    /// Any legal sequence of forest merges produces a tree covering all
    /// relations, after exactly n−1 merges.
    #[test]
    fn forest_merges_always_terminate(
        n in 2usize..10,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut forest = Forest::initial(n);
        let mut merges = 0;
        while !forest.is_terminal() {
            let len = forest.len();
            let x = rand::Rng::gen_range(&mut rng, 0..len);
            let mut y = rand::Rng::gen_range(&mut rng, 0..len);
            while y == x {
                y = rand::Rng::gen_range(&mut rng, 0..len);
            }
            prop_assert!(forest.merge(x, y));
            merges += 1;
        }
        prop_assert_eq!(merges, n - 1);
        let tree = forest.into_tree().expect("terminal");
        prop_assert_eq!(tree.rel_set(), RelSet::full(n));
        prop_assert_eq!(tree.leaf_count(), n);
    }

    /// Featurised states are always finite, correctly sized, and masks
    /// always expose at least one action on non-terminal forests.
    #[test]
    fn featurization_is_well_formed(
        n in 2usize..7,
        merges in 0usize..3,
        seed in 0u64..50,
    ) {
        let db = synth();
        let graph = db.query(Shape::Chain, n, 2, seed);
        let est = EstimatedCardinality::new(&db.stats);
        let featurizer = Featurizer::new(7);
        let mut forest = Forest::initial(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..merges.min(n.saturating_sub(2)) {
            let len = forest.len();
            let x = rand::Rng::gen_range(&mut rng, 0..len);
            let y = (x + 1) % len;
            forest.merge(x, y);
        }
        let mut features = Vec::new();
        featurizer.featurize(&graph, &forest, &est, &mut features);
        prop_assert_eq!(features.len(), featurizer.state_dim());
        prop_assert!(features.iter().all(|f| f.is_finite()));
        prop_assert!(features.iter().all(|&f| (0.0..=1.0).contains(&f)));
        if !forest.is_terminal() {
            let mut mask = Vec::new();
            featurizer.action_mask(&graph, &forest, false, &mut mask);
            prop_assert_eq!(mask.len(), featurizer.action_dim());
            prop_assert!(mask.iter().any(|&m| m));
        }
    }

    /// Reward scaling is monotone: slower plans never score a lower
    /// scaled value than faster ones.
    #[test]
    fn reward_scaler_is_monotone(
        c1 in 1.0f64..1e4,
        c2 in 1.0f64..1e4,
        l1 in 0.1f64..1e3,
        spread in 1.01f64..10.0,
        probe_a in 0.1f64..1e4,
        probe_b in 0.1f64..1e4,
    ) {
        let mut scaler = RewardScaler::new();
        scaler.observe(c1, l1);
        scaler.observe(c2, l1 * spread);
        prop_assert!(scaler.is_ready());
        let (lo, hi) = if probe_a <= probe_b { (probe_a, probe_b) } else { (probe_b, probe_a) };
        prop_assert!(scaler.scale(lo) <= scaler.scale(hi) + 1e-9);
    }

    /// The replay buffer never exceeds its capacity, and once full it
    /// evicts strictly FIFO: after `n` pushes of `0..n`, the buffer
    /// holds exactly the last `min(n, capacity)` values.
    #[test]
    fn replay_buffer_capacity_and_fifo_eviction(
        capacity in 1usize..24,
        pushes in 0usize..64,
    ) {
        use hfqo::rl::ReplayBuffer;
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(i);
            prop_assert!(buf.len() <= capacity, "len {} > capacity {capacity}", buf.len());
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        prop_assert_eq!(buf.is_empty(), pushes == 0);
        // FIFO: the survivors are exactly the most recent pushes —
        // every older value was evicted in arrival order.
        let mut survivors: Vec<usize> = buf.items().to_vec();
        survivors.sort_unstable();
        let expected: Vec<usize> = (pushes.saturating_sub(capacity)..pushes).collect();
        prop_assert_eq!(survivors, expected);
    }

    /// Sampling returns exactly `n` items, each one currently in the
    /// buffer; an empty buffer yields an empty sample for any `n`.
    #[test]
    fn replay_buffer_sample_within_bounds(
        capacity in 1usize..16,
        pushes in 0usize..40,
        n in 0usize..50,
        seed in 0u64..100,
    ) {
        use hfqo::rl::ReplayBuffer;
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = buf.sample(n, &mut rng);
        if pushes == 0 {
            prop_assert!(sample.is_empty());
        } else {
            prop_assert_eq!(sample.len(), n);
            prop_assert!(sample.iter().all(|x| buf.items().contains(x)));
        }
    }

    /// Epsilon schedule boundaries: exactly `start` at episode 0,
    /// exactly `end` at `decay_episodes` and beyond (and for the
    /// degenerate zero-length decay), with every intermediate value
    /// between the two.
    #[test]
    fn epsilon_schedule_boundary_episodes(
        start in 0.0f32..1.0,
        end in 0.0f32..1.0,
        decay in 0usize..500,
        probe in 0usize..1_000,
    ) {
        use hfqo::rl::EpsilonSchedule;
        let s = EpsilonSchedule { start, end, decay_episodes: decay };
        if decay == 0 {
            prop_assert_eq!(s.value(0), end);
        } else {
            prop_assert_eq!(s.value(0), start);
        }
        prop_assert_eq!(s.value(decay), end);
        prop_assert_eq!(s.value(decay.saturating_add(1)), end);
        prop_assert_eq!(s.value(usize::MAX), end);
        let v = s.value(probe);
        let (lo, hi) = if start <= end { (start, end) } else { (end, start) };
        prop_assert!((lo - 1e-6..=hi + 1e-6).contains(&v), "{v} outside [{lo}, {hi}]");
    }
}
