//! Cross-crate integration: SQL text → binder → optimizer → executor,
//! with the statistics and cost machinery in the loop.

use hfqo::prelude::*;
use hfqo::workload::tpch::{build_tpch, TpchConfig};
use hfqo_query::{AccessPath, JoinAlgo, PlanNode, RelId};

fn imdb() -> WorkloadBundle {
    WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 400,
            seed: 77,
        },
        5,
    )
}

#[test]
fn sql_to_rows_pipeline() {
    let bundle = imdb();
    let sql = "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k \
               WHERE t.id = mk.movie_id AND mk.keyword_id = k.id \
               AND t.production_year > 50";
    let stmt = parse_select(sql).expect("parses");
    let graph = bind_select(&stmt, bundle.db.catalog()).expect("binds");
    let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
    let planned = optimizer.plan(&graph).expect("plannable");
    planned.plan.validate(&graph).expect("valid plan");
    let out = execute(&bundle.db, &graph, &planned.plan, ExecConfig::default()).expect("executes");
    assert_eq!(out.rows.len(), 1, "COUNT(*) returns one row");
    let count = out.rows[0][0].as_int().expect("int count");
    assert!(count > 0, "the join is non-empty on generated data");
}

#[test]
fn every_join_order_gives_the_same_answer() {
    // The answer must be plan-invariant: execute a 3-relation query
    // under several hand-built orders and algorithms.
    let bundle = imdb();
    let sql = "SELECT COUNT(*) FROM title t, cast_info ci, role_type rt \
               WHERE t.id = ci.movie_id AND ci.role_id = rt.id \
               AND t.production_year < 100";
    let graph =
        bind_select(&parse_select(sql).expect("parses"), bundle.db.catalog()).expect("binds");
    let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
    let reference = execute(
        &bundle.db,
        &graph,
        &optimizer.plan(&graph).expect("plannable").plan,
        ExecConfig::default(),
    )
    .expect("reference executes")
    .rows;

    let scan = |rel: u32| PlanNode::Scan {
        rel: RelId(rel),
        path: AccessPath::SeqScan,
    };
    // (t ⋈ ci) ⋈ rt and (ci ⋈ rt) ⋈ t, hash and merge.
    for (a, b, c) in [(0u32, 1u32, 2u32), (1, 2, 0)] {
        for algo in [JoinAlgo::Hash, JoinAlgo::Merge, JoinAlgo::NestedLoop] {
            let inner_conds = graph.joins_between(
                hfqo_query::RelSet::single(RelId(a)),
                hfqo_query::RelSet::single(RelId(b)),
            );
            let inner = PlanNode::Join {
                algo,
                conds: inner_conds,
                left: Box::new(scan(a)),
                right: Box::new(scan(b)),
            };
            let outer_conds =
                graph.joins_between(inner.rel_set(), hfqo_query::RelSet::single(RelId(c)));
            let plan = PhysicalPlan::new(PlanNode::Aggregate {
                algo: hfqo_query::AggAlgo::Hash,
                input: Box::new(PlanNode::Join {
                    algo: JoinAlgo::Hash,
                    conds: outer_conds,
                    left: Box::new(inner),
                    right: Box::new(scan(c)),
                }),
            });
            plan.validate(&graph).expect("valid");
            let rows = execute(&bundle.db, &graph, &plan, ExecConfig::default())
                .expect("executes")
                .rows;
            assert_eq!(rows, reference, "order ({a},{b},{c}) algo {algo:?}");
        }
    }
}

#[test]
fn true_cardinality_matches_actual_execution() {
    let bundle = imdb();
    let sql = "SELECT COUNT(*) FROM title t, movie_companies mc \
               WHERE t.id = mc.movie_id AND t.kind_id = 2";
    let graph =
        bind_select(&parse_select(sql).expect("parses"), bundle.db.catalog()).expect("binds");
    let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
    let planned = optimizer.plan(&graph).expect("plannable");
    // Count via execution of the non-aggregated join.
    let join_only = match &planned.plan.root {
        PlanNode::Aggregate { input, .. } => PhysicalPlan::new((**input).clone()),
        other => PhysicalPlan::new(other.clone()),
    };
    let executed = execute(&bundle.db, &graph, &join_only, ExecConfig::default())
        .expect("executes")
        .rows
        .len() as f64;
    let oracle = TrueCardinality::new(&bundle.db);
    let counted = oracle.set_rows(&graph, graph.all_rels());
    assert_eq!(executed, counted, "oracle must agree with execution");
}

#[test]
fn estimates_are_imperfect_but_bounded_on_correlated_data() {
    // The IMDB-like generator correlates production_year with kind_id;
    // the independence assumption must produce a finite, positive, but
    // generally wrong estimate — the premise of §5.2.
    let bundle = imdb();
    let sql = "SELECT COUNT(*) FROM title t \
               WHERE t.production_year > 60 AND t.kind_id = 3";
    let graph =
        bind_select(&parse_select(sql).expect("parses"), bundle.db.catalog()).expect("binds");
    let est = EstimatedCardinality::new(&bundle.stats);
    let oracle = TrueCardinality::new(&bundle.db);
    let estimated = est.set_rows(&graph, graph.all_rels());
    let truth = oracle.set_rows(&graph, graph.all_rels());
    assert!(estimated >= 1.0);
    assert!(truth >= 0.0);
    // Sanity ceiling: neither exceeds the table size.
    assert!(estimated <= 400.0 + 1.0);
    assert!(truth <= 400.0);
}

#[test]
fn tpch_templates_plan_and_execute() {
    let (db, stats) = build_tpch(TpchConfig {
        lineitem_rows: 2_000,
        seed: 6,
    });
    let optimizer = TraditionalOptimizer::new(db.catalog(), &stats);
    for graph in hfqo::workload::tpch::bind_templates(db.catalog()) {
        let planned = optimizer.plan(&graph).expect("plannable");
        let out = execute(&db, &graph, &planned.plan, ExecConfig::default())
            .unwrap_or_else(|e| panic!("{:?} failed: {e}", graph.label));
        assert!(!out.rows.is_empty(), "{:?}", graph.label);
    }
}

#[test]
fn expert_beats_random_on_cost_across_the_suite() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let bundle = imdb();
    let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
    let mut rng = StdRng::seed_from_u64(0);
    let mut expert_wins = 0usize;
    let mut total = 0usize;
    for graph in bundle.queries.iter().take(25) {
        let expert_cost = optimizer.plan(graph).expect("plannable").cost;
        let random_cost =
            optimizer.cost_of(graph, &random_plan(graph, bundle.db.catalog(), &mut rng));
        total += 1;
        if expert_cost <= random_cost * 1.0001 {
            expert_wins += 1;
        }
    }
    assert!(
        expert_wins * 10 >= total * 9,
        "expert won only {expert_wins}/{total}"
    );
}
