//! Online-learning serving integration: the closed loop of
//! serve → record → retrain → hot-swap.
//!
//! The contracts pinned here:
//!
//! * **Smoke (JOB)** — with online training enabled on a JOB serving
//!   workload, at least one snapshot swap occurs, every swap
//!   invalidates the plan cache, and served results are identical to
//!   freshly-planned execution before and after every swap.
//! * **Training disabled ⇒ frozen serving** — a session with an
//!   attached-but-never-stepped trainer serves bit-identically to a
//!   plain frozen `LearnedPlanner` session (plans, costs, rows, work).
//! * **Torn snapshots are impossible** — under concurrent serving with
//!   policy hot-swaps racing mid-traffic, every served plan is exactly
//!   one published generation's deterministic plan, never a hybrid.
//! * **Reproducibility** — a fixed-seed, single-threaded online run
//!   (serve bursts interleaved with `OnlineTrainer::step`) reproduces
//!   the identical sequence of plans, costs, work, and generations.
//!
//! CI runs this file as the online-learning smoke next to the
//! `HFQO_WORKERS` serving suite.

use hfqo::opt::test_support::with_count;
use hfqo::prelude::*;
use hfqo::storage::Value;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn sorted_rows(served: &ServedQuery) -> Vec<Vec<Value>> {
    let mut rows = served.outcome.rows.clone();
    rows.sort();
    rows
}

/// A small JOB bundle plus a handful of its mid-size queries (COUNT(*)
/// roots so results are directly comparable across join orders).
fn job_fixture() -> (WorkloadBundle, Vec<QueryGraph>, usize) {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 200,
            seed: 31,
        },
        31,
    );
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| (4..=7).contains(&q.relation_count()))
        .take(6)
        .cloned()
        .map(with_count)
        .collect();
    let max_rels = queries
        .iter()
        .map(QueryGraph::relation_count)
        .max()
        .unwrap_or(2);
    (bundle, queries, max_rels)
}

fn fresh_agent(featurizer: &Featurizer, seed: u64) -> ReJoinAgent {
    let mut rng = StdRng::seed_from_u64(seed);
    ReJoinAgent::new(
        featurizer.state_dim(),
        featurizer.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    )
}

/// The acceptance-criteria smoke: a bounded online run on the JOB
/// workload swaps at least one policy generation, every swap
/// invalidates the plan cache, and serving results stay identical to
/// freshly-planned execution throughout.
#[test]
fn online_smoke_swaps_generations_with_identical_results() {
    let (bundle, queries, max_rels) = job_fixture();
    assert!(queries.len() >= 4, "JOB fixture must yield queries");
    let mut session = QuerySession::traditional(bundle.db, bundle.stats);
    // Freshly-planned reference results (expert planner, cache cold).
    let reference: Vec<_> = queries
        .iter()
        .map(|q| sorted_rows(&session.serve_graph(q).expect("reference serve")))
        .collect();

    let featurizer = Featurizer::new(max_rels);
    let agent = fresh_agent(&featurizer, 11);
    let mut trainer = OnlineTrainer::attach(
        &mut session,
        agent,
        featurizer,
        true,
        OnlineConfig::default().with_swap_every(queries.len()),
    );

    let mut swaps = 0u64;
    for _round in 0..4 {
        for (i, q) in queries.iter().enumerate() {
            let served = session.serve_graph(q).expect("online serve");
            assert_eq!(served.method, PlannerMethod::Learned);
            assert_eq!(
                sorted_rows(&served),
                reference[i],
                "online serving changed results (swap #{swaps})"
            );
        }
        let step = trainer.step(&session);
        assert_eq!(step.skipped, 0, "every JOB record must replay");
        if step.swapped() {
            swaps += step.swaps as u64;
            // The swap invalidated the cache: the next serve re-plans
            // with the new generation, and results are still identical
            // to freshly-planned execution.
            let served = session.serve_graph(&queries[0]).expect("post-swap serve");
            assert!(!served.cache_hit, "swap must invalidate the plan cache");
            assert_eq!(sorted_rows(&served), reference[0]);
        }
    }
    assert!(
        swaps >= 1,
        "bounded run must publish at least one generation"
    );
    assert_eq!(trainer.generation(), swaps);
    assert_eq!(trainer.metrics().swaps, swaps);
    // Attaching swapped the strategy (one invalidation), then every
    // generation invalidated once more.
    assert_eq!(session.cache_metrics().invalidations, 1 + swaps);
    assert_eq!(trainer.metrics().skipped, 0);
    assert!(trainer.agent().episodes_seen() >= queries.len());
}

/// With training disabled (trainer attached but never stepped), serving
/// is bit-identical to the PR 4 frozen-policy path: same plans, same
/// cost bits, same rows, same work, same cache behaviour.
#[test]
fn training_disabled_serving_is_bit_identical_to_frozen_policy() {
    let (bundle, queries, max_rels) = job_fixture();
    let featurizer = Featurizer::new(max_rels);

    // Frozen reference: a plain LearnedPlanner session.
    let mut frozen = QuerySession::traditional(bundle.db.clone(), bundle.stats.clone());
    frozen.set_planner(Box::new(
        LearnedPlanner::freeze(&fresh_agent(&featurizer, 23), featurizer)
            .with_require_connected(true),
    ));

    // Online session whose agent has identical weights (same seed), but
    // whose trainer never runs.
    let mut online = QuerySession::traditional(bundle.db, bundle.stats);
    let trainer = OnlineTrainer::attach(
        &mut online,
        fresh_agent(&featurizer, 23),
        featurizer,
        true,
        OnlineConfig::default(),
    );

    for round in 0..2 {
        for q in &queries {
            let a = frozen.serve_graph(q).expect("frozen serve");
            let b = online.serve_graph(q).expect("online serve");
            assert_eq!(a.plan, b.plan, "round {round}");
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.method, b.method);
            assert_eq!(a.cache_hit, b.cache_hit);
            assert_eq!(a.outcome.rows, b.outcome.rows);
            assert_eq!(a.outcome.stats.work, b.outcome.stats.work);
        }
    }
    assert_eq!(trainer.generation(), 0, "training never ran");
    // Recording is the only observable difference.
    let m = trainer.log().metrics();
    assert_eq!(m.recorded as usize, 2 * queries.len());
}

/// A fixed-seed, single-threaded online run — serve bursts interleaved
/// with trainer steps — is exactly reproducible: identical plans, cost
/// bits, executed work, and swap generations.
#[test]
fn fixed_seed_online_run_is_reproducible() {
    fn run() -> Vec<(u64, u64, u64)> {
        let (bundle, queries, max_rels) = job_fixture();
        let mut session = QuerySession::traditional(bundle.db, bundle.stats);
        let featurizer = Featurizer::new(max_rels);
        let mut trainer = OnlineTrainer::attach(
            &mut session,
            fresh_agent(&featurizer, 47),
            featurizer,
            true,
            OnlineConfig::default().with_swap_every(4),
        );
        let mut trace = Vec::new();
        for _round in 0..3 {
            for q in &queries {
                let served = session.serve_graph(q).expect("serves");
                trace.push((
                    served.cost.to_bits(),
                    served.outcome.stats.work,
                    trainer.generation(),
                ));
            }
            trainer.step(&session);
        }
        trace.push((0, 0, trainer.generation()));
        trace
    }
    assert_eq!(run(), run(), "online run must be reproducible");
}

/// Concurrent hot-swaps mid-traffic: every served plan must be exactly
/// one published generation's deterministic plan (never a torn hybrid),
/// results never change, and each swap invalidates the plan cache —
/// the swap path here is precisely `OnlineTrainer::swap`'s
/// store-then-invalidate sequence, driven directly so the two
/// generations' reference plans are known in advance.
#[test]
fn hot_swap_mid_traffic_never_serves_torn_plans() {
    let (bundle, queries, max_rels) = job_fixture();
    let featurizer = Featurizer::new(max_rels);
    let gen_a = LearnedPlanner::freeze(&fresh_agent(&featurizer, 1), featurizer)
        .with_require_connected(true);
    let gen_b = LearnedPlanner::freeze(&fresh_agent(&featurizer, 2), featurizer)
        .with_require_connected(true);

    let mut session = QuerySession::traditional(bundle.db, bundle.stats);
    // Reference rows (expert) and the two generations' exact plans.
    let reference: Vec<_> = queries
        .iter()
        .map(|q| sorted_rows(&session.serve_graph(q).expect("reference serve")))
        .collect();
    let ctx = PlannerContext::new(session.catalog(), session.stats());
    let plans_a: Vec<_> = queries
        .iter()
        .map(|q| gen_a.plan(&ctx, q).expect("gen A plans").plan)
        .collect();
    let plans_b: Vec<_> = queries
        .iter()
        .map(|q| gen_b.plan(&ctx, q).expect("gen B plans").plan)
        .collect();

    let handle = PlannerHandle::new(gen_a.clone());
    session.set_planner(Box::new(HotSwapPlanner::new(Arc::clone(&handle))));
    let inv_before = session.cache_metrics().invalidations;

    const SWAPS: u64 = 16;
    let workers: usize = std::env::var("HFQO_WORKERS")
        .ok()
        .and_then(|v| v.split(',').next_back()?.trim().parse().ok())
        .unwrap_or(2);
    let stop = AtomicBool::new(false);
    let serves = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let session = &session;
            let queries = &queries;
            let (reference, plans_a, plans_b) = (&reference, &plans_a, &plans_b);
            let (stop, serves) = (&stop, &serves);
            scope.spawn(move || {
                let mut i = w;
                // ordering: Acquire — pairs with the Release store after
                // the swap loop; loop exit implies all swaps are visible.
                while !stop.load(Ordering::Acquire) {
                    let idx = i % queries.len();
                    let served = session.serve_graph(&queries[idx]).expect("serves");
                    assert!(
                        served.plan == plans_a[idx] || served.plan == plans_b[idx],
                        "worker {w}: torn or unknown plan for query {idx}"
                    );
                    assert_eq!(sorted_rows(&served), reference[idx], "query {idx}");
                    // Relaxed: progress counter, only paces the swap loop.
                    serves.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }
        // Swap generations mid-traffic, exactly as OnlineTrainer::swap
        // does: publish a complete frozen planner, then invalidate.
        // Between swaps, wait for demonstrable serving progress (one
        // serve per worker) instead of sleeping: every swap then really
        // races live serves, and the pacing cannot under- or overshoot
        // on a loaded runner. Bounded so wedged workers fail loudly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        for swap in 0..SWAPS {
            let next = if swap % 2 == 0 { &gen_b } else { &gen_a };
            handle.store(next.clone());
            session.invalidate_cache();
            let target = serves.load(Ordering::Relaxed) + workers as u64;
            while serves.load(Ordering::Relaxed) < target {
                assert!(
                    std::time::Instant::now() < deadline,
                    "workers made no serving progress within 60 s of swap {swap}"
                );
                std::thread::yield_now();
            }
        }
        // ordering: Release — pairs with the workers' Acquire loop check.
        stop.store(true, Ordering::Release);
    });
    assert_eq!(handle.generation(), SWAPS);
    let invalidations = session.cache_metrics().invalidations - inv_before;
    assert_eq!(invalidations, SWAPS, "every swap invalidates the cache");
}

/// The background mode: a trainer thread runs `OnlineTrainer::run`
/// while serving continues; stopping it leaves a swapped-in, coherent
/// generation and correct results throughout.
#[test]
fn background_trainer_swaps_while_serving() {
    let (bundle, queries, max_rels) = job_fixture();
    let mut session = QuerySession::traditional(bundle.db, bundle.stats);
    let reference: Vec<_> = queries
        .iter()
        .map(|q| sorted_rows(&session.serve_graph(q).expect("reference serve")))
        .collect();
    let featurizer = Featurizer::new(max_rels);
    let mut trainer = OnlineTrainer::attach(
        &mut session,
        fresh_agent(&featurizer, 5),
        featurizer,
        true,
        OnlineConfig::default()
            .with_swap_every(4)
            .with_drain_batch(8),
    );
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let session_ref = &session;
        let stop_ref = &stop;
        let gen_handle = Arc::clone(trainer.handle());
        let thread = scope.spawn(move || {
            trainer.run(session_ref, stop_ref, std::time::Duration::from_millis(1));
            trainer
        });
        // Keep serving until the trainer has demonstrably published a
        // generation (bounded so a wedged trainer fails loudly instead
        // of hanging) — on a loaded single-CPU runner a fixed round
        // count could finish before the trainer thread ever ran.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            for (i, q) in queries.iter().enumerate() {
                let served = session.serve_graph(q).expect("serves under training");
                assert_eq!(sorted_rows(&served), reference[i]);
            }
            if gen_handle.generation() >= 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "background trainer published no generation within 60 s"
            );
        }
        // ordering: Release — pairs with the trainer's Acquire stop
        // check in `OnlineTrainer::run`.
        stop.store(true, Ordering::Release);
        let trainer = thread.join().expect("trainer thread");
        assert!(
            trainer.generation() >= 1,
            "background trainer must publish at least one generation"
        );
        assert!(trainer.metrics().trained >= 4);
    });
}
