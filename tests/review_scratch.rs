//! Scratch test (review): merge join with an empty input side.

use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, TableSchema};
use hfqo_exec::{execute, execute_rows, ExecConfig};
use hfqo_query::{
    AccessPath, BoundColumn, JoinAlgo, JoinEdge, Lit, PhysicalPlan, PlanNode, QueryGraph, RelId,
    Relation, Selection,
};
use hfqo_sql::CompareOp;
use hfqo_storage::{Database, Value};

#[test]
fn merge_join_with_empty_side() {
    let mut cat = Catalog::new();
    let a = cat
        .add_table(TableSchema::new(
            "a",
            vec![Column::new("k", ColumnType::Int)],
        ))
        .unwrap();
    let b = cat
        .add_table(TableSchema::new(
            "b",
            vec![Column::new("k", ColumnType::Int)],
        ))
        .unwrap();
    let mut db = Database::new(cat);
    for i in 0..5i64 {
        db.table_mut(a).unwrap().append_row(&[Value::Int(i)]).unwrap();
        db.table_mut(b).unwrap().append_row(&[Value::Int(i)]).unwrap();
    }
    let graph = QueryGraph::new(
        vec![
            Relation {
                table: a,
                alias: "a".into(),
            },
            Relation {
                table: b,
                alias: "b".into(),
            },
        ],
        vec![JoinEdge {
            left: BoundColumn::new(RelId(0), ColumnId(0)),
            op: CompareOp::Eq,
            right: BoundColumn::new(RelId(1), ColumnId(0)),
        }],
        // Selection matches nothing: a is empty after the filter.
        vec![Selection {
            column: BoundColumn::new(RelId(0), ColumnId(0)),
            op: CompareOp::Lt,
            value: Lit::Int(-100),
        }],
        vec![],
        vec![],
    );
    let plan = PhysicalPlan::new(PlanNode::Join {
        algo: JoinAlgo::Merge,
        conds: vec![0],
        left: Box::new(PlanNode::Scan {
            rel: RelId(0),
            path: AccessPath::SeqScan,
        }),
        right: Box::new(PlanNode::Scan {
            rel: RelId(1),
            path: AccessPath::SeqScan,
        }),
    });
    let r = execute_rows(&db, &graph, &plan, ExecConfig::default()).unwrap();
    assert_eq!(r.rows.len(), 0);
    let out = execute(&db, &graph, &plan, ExecConfig::default()).unwrap();
    assert_eq!(out.rows.len(), 0);
}
