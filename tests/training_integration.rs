//! Cross-crate integration of the learning stack: environments, agents,
//! and the three §5 methods driven through the public facade API.

use hfqo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_workload() -> (WorkloadBundle, Vec<QueryGraph>) {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 300,
            seed: 31,
        },
        17,
    );
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| q.relation_count() <= 5)
        .take(6)
        .cloned()
        .collect();
    assert!(!queries.is_empty());
    (bundle, queries)
}

#[test]
fn rejoin_training_beats_its_own_start() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
    );
    let mut rng = StdRng::seed_from_u64(2);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(500), &mut rng);
    let start = log.initial_geo_ratio(60).expect("non-empty");
    let end = log.final_geo_ratio(60).expect("non-empty");
    assert!(
        end < start,
        "training did not improve: {start:.2} → {end:.2}"
    );
    // Small queries: the trained agent should be near the expert.
    assert!(end < 3.0, "final ratio {end:.2} too high");
}

#[test]
fn figure2_replay_through_public_api() {
    let (bundle, queries) = small_workload();
    let four_rel: Vec<QueryGraph> = queries
        .iter()
        .filter(|q| q.relation_count() == 4)
        .cloned()
        .collect();
    if four_rel.is_empty() {
        return; // suite seed produced no 4-relation query under 6 taken
    }
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &four_rel,
        4,
        QueryOrder::Fixed(0),
        RewardMode::InverseCost,
    );
    let featurizer = env.featurizer();
    let mut rng = StdRng::seed_from_u64(0);
    env.reset(&mut rng);
    // The paper's Figure 2: actions [1,3], [2,3], [1,2] (1-based).
    env.step(featurizer.encode_pair(0, 2), &mut rng);
    env.step(featurizer.encode_pair(0, 1), &mut rng);
    let last = env.step(featurizer.encode_pair(0, 1), &mut rng);
    assert!(last.done);
    assert!(last.reward > 0.0, "terminal reward is 1/M(t) > 0");
    let outcome = env.last_outcome().expect("finished");
    assert_eq!(
        outcome.plan.root.join_tree().compact(),
        "((0 ⋈ 2) ⋈ (1 ⋈ 3))"
    );
}

#[test]
fn demonstration_learning_through_facade() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Cycle,
        RewardMode::InverseLatency,
    );
    let mut rng = StdRng::seed_from_u64(4);
    let config = DemonstrationConfig {
        pretrain_steps: 120,
        finetune_episodes: 40,
        ..Default::default()
    };
    let outcome = learn_from_demonstration(&mut env, &config, &mut rng);
    assert_eq!(outcome.log.len(), 40);
    assert_eq!(outcome.expert_latency_ms.len(), queries.len());
    let first = outcome.pretrain_losses.first().copied().expect("non-empty");
    let last = outcome.pretrain_losses.last().copied().expect("non-empty");
    assert!(last < first, "pretraining did not reduce loss");
}

#[test]
fn bootstrap_through_facade() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::NegLogCost);
    let mut rng = StdRng::seed_from_u64(5);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let config = BootstrapConfig {
        phase1_episodes: 80,
        observe_episodes: 30,
        phase2_episodes: 40,
        scale_rewards: true,
    };
    let outcome = cost_bootstrap(&mut env, &mut agent, &config, &mut rng);
    assert_eq!(outcome.log.len(), 120);
    assert!(outcome.scaler.is_ready());
    let (l_min, l_max) = outcome.scaler.latency_range();
    assert!(l_min > 0.0 && l_max >= l_min);
}

#[test]
fn full_plan_env_trains_and_evaluates() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = FullPlanEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
        StageSet::full(),
    );
    let mut rng = StdRng::seed_from_u64(6);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(120), &mut rng);
    assert_eq!(log.len(), 120);
    let records = evaluate_per_query(&mut env, &agent, QueryOrder::Shuffle, &mut rng);
    assert_eq!(records.len(), queries.len());
    for r in &records {
        assert!(r.agent_cost > 0.0 && r.expert_cost > 0.0);
    }
}

#[test]
fn ppo_backend_also_trains() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
    );
    let mut rng = StdRng::seed_from_u64(7);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_ppo(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(200), &mut rng);
    assert_eq!(log.len(), 200);
    assert!(log.final_geo_ratio(40).expect("non-empty").is_finite());
}
