//! Cross-crate integration of the learning stack: environments, agents,
//! and the three §5 methods driven through the public facade API.

use hfqo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_workload() -> (WorkloadBundle, Vec<QueryGraph>) {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 300,
            seed: 31,
        },
        17,
    );
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| q.relation_count() <= 5)
        .take(6)
        .cloned()
        .collect();
    assert!(!queries.is_empty());
    (bundle, queries)
}

#[test]
fn rejoin_training_beats_its_own_start() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
    );
    let mut rng = StdRng::seed_from_u64(2);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(500), &mut rng);
    let start = log.initial_geo_ratio(60).expect("non-empty");
    let end = log.final_geo_ratio(60).expect("non-empty");
    assert!(
        end < start,
        "training did not improve: {start:.2} → {end:.2}"
    );
    // Small queries: the trained agent should be near the expert.
    assert!(end < 3.0, "final ratio {end:.2} too high");
}

#[test]
fn figure2_replay_through_public_api() {
    let (bundle, queries) = small_workload();
    let four_rel: Vec<QueryGraph> = queries
        .iter()
        .filter(|q| q.relation_count() == 4)
        .cloned()
        .collect();
    if four_rel.is_empty() {
        return; // suite seed produced no 4-relation query under 6 taken
    }
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &four_rel,
        4,
        QueryOrder::Fixed(0),
        RewardMode::InverseCost,
    );
    let featurizer = env.featurizer();
    let mut rng = StdRng::seed_from_u64(0);
    env.reset(&mut rng);
    // The paper's Figure 2: actions [1,3], [2,3], [1,2] (1-based).
    env.step(featurizer.encode_pair(0, 2), &mut rng);
    env.step(featurizer.encode_pair(0, 1), &mut rng);
    let last = env.step(featurizer.encode_pair(0, 1), &mut rng);
    assert!(last.done);
    assert!(last.reward > 0.0, "terminal reward is 1/M(t) > 0");
    let outcome = env.last_outcome().expect("finished");
    assert_eq!(
        outcome.plan.root.join_tree().compact(),
        "((0 ⋈ 2) ⋈ (1 ⋈ 3))"
    );
}

#[test]
fn demonstration_learning_through_facade() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Cycle,
        RewardMode::InverseLatency,
    );
    let mut rng = StdRng::seed_from_u64(4);
    let config = DemonstrationConfig {
        pretrain_steps: 120,
        finetune_episodes: 40,
        ..Default::default()
    };
    let outcome = learn_from_demonstration(&mut env, &config, &mut rng);
    assert_eq!(outcome.log.len(), 40);
    assert_eq!(outcome.expert_latency_ms.len(), queries.len());
    let first = outcome.pretrain_losses.first().copied().expect("non-empty");
    let last = outcome.pretrain_losses.last().copied().expect("non-empty");
    assert!(last < first, "pretraining did not reduce loss");
}

#[test]
fn bootstrap_through_facade() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::NegLogCost);
    let mut rng = StdRng::seed_from_u64(5);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let config = BootstrapConfig {
        phase1_episodes: 80,
        observe_episodes: 30,
        phase2_episodes: 40,
        scale_rewards: true,
        ..Default::default()
    };
    let outcome = cost_bootstrap(&mut env, &mut agent, &config, &mut rng);
    assert_eq!(outcome.log.len(), 120);
    assert!(outcome.scaler.is_ready());
    let (l_min, l_max) = outcome.scaler.latency_range();
    assert!(l_min > 0.0 && l_max >= l_min);
}

#[test]
fn full_plan_env_trains_and_evaluates() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = FullPlanEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
        StageSet::full(),
    );
    let mut rng = StdRng::seed_from_u64(6);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(120), &mut rng);
    assert_eq!(log.len(), 120);
    let records = evaluate_per_query(&mut env, &agent, QueryOrder::Shuffle, &mut rng);
    assert_eq!(records.len(), queries.len());
    for r in &records {
        assert!(r.agent_cost > 0.0 && r.expert_cost > 0.0);
    }
}

/// Worker counts to exercise in the determinism tests: the
/// `HFQO_WORKERS` environment variable (a count or comma-separated
/// counts — CI runs the suite at 1, 2, and 4), defaulting to `[1, 2]`.
fn worker_counts() -> Vec<usize> {
    match std::env::var("HFQO_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("invalid HFQO_WORKERS entry `{s}`"))
                    .max(1)
            })
            .collect(),
        Err(_) => vec![1, 2],
    }
}

/// Runs the parallel trainer end to end at a given worker count.
fn parallel_run(
    bundle: &WorkloadBundle,
    queries: &[QueryGraph],
    workers: usize,
    seed: u64,
    episodes: usize,
) -> TrainingLog {
    let make_env = |_w: usize| {
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        JoinOrderEnv::new(ctx, queries, 5, QueryOrder::Cycle, RewardMode::LogRelative)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = {
        let env = make_env(0);
        ReJoinAgent::new(
            env.state_dim(),
            env.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        )
    };
    let trainer = ParallelTrainer::new(TrainerConfig::new(episodes).with_workers(workers));
    trainer.train(make_env, &mut agent, &mut rng)
}

/// The determinism-parity contract, part 1: `workers = 1` is the exact
/// legacy sequential loop — same seed, bit-identical `TrainingLog` to
/// calling `train()` directly.
#[test]
fn parallel_workers1_is_bit_identical_to_sequential_train() {
    let (bundle, queries) = small_workload();
    let seed = 21;
    let episodes = 40;

    let sequential = {
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        let mut env =
            JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::LogRelative);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agent = ReJoinAgent::new(
            env.state_dim(),
            env.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        train(&mut env, &mut agent, TrainerConfig::new(episodes), &mut rng)
    };
    let parallel = parallel_run(&bundle, &queries, 1, seed, episodes);
    assert_eq!(
        sequential, parallel,
        "workers=1 must replay the sequential trainer bit for bit"
    );
}

/// The determinism-parity contract, part 2: at any worker count, the
/// per-worker seeded streams make the run a pure function of the seed —
/// same seed ⇒ same log, bit for bit. Exercised at every count in
/// `HFQO_WORKERS` (CI runs 1, 2, and 4).
#[test]
fn parallel_same_seed_reproduces_at_all_worker_counts() {
    let (bundle, queries) = small_workload();
    for workers in worker_counts() {
        let a = parallel_run(&bundle, &queries, workers, 33, 24);
        let b = parallel_run(&bundle, &queries, workers, 33, 24);
        assert_eq!(a, b, "workers={workers}: same seed must reproduce");
        assert_eq!(a.len(), 24);
        // Episode order and the global Cycle walk survive parallel
        // collection.
        for (i, r) in a.records.iter().enumerate() {
            assert_eq!(r.episode, i);
            assert_eq!(r.query_idx, i % queries.len());
        }
        // A different seed must change the run (the log carries
        // per-episode costs; 24 identical episodes would mean the seed
        // is ignored).
        let c = parallel_run(&bundle, &queries, workers, 34, 24);
        assert_ne!(a, c, "workers={workers}: seed must matter");
    }
}

/// Golden-log regression: a fixed-seed 50-episode run on the synth
/// workload must keep producing exactly the `(query_idx, agent_cost,
/// reward)` tuples recorded in `tests/golden/training_log_seed7.txt`.
/// Any RL-stack refactor that shifts an RNG draw, a feature, or a cost
/// shows up here as a diff. Regenerate deliberately with
/// `HFQO_BLESS=1 cargo test --test training_integration golden`.
#[test]
fn golden_log_fixed_seed_synth_run() {
    use hfqo::workload::synth::{Shape, SynthConfig, SynthDb};

    let synth = SynthDb::build(SynthConfig {
        tables: 6,
        rows: 200,
        seed: 17,
    });
    let queries = vec![
        synth.query(Shape::Chain, 4, 2, 0).with_label("chain4"),
        synth.query(Shape::Star, 4, 1, 1).with_label("star4"),
        synth.query(Shape::Chain, 3, 2, 2).with_label("chain3"),
        synth.query(Shape::Cycle, 4, 0, 3).with_label("cycle4"),
    ];
    let ctx = EnvContext::new(&synth.db, &synth.stats);
    let mut env = JoinOrderEnv::new(ctx, &queries, 4, QueryOrder::Cycle, RewardMode::LogRelative);
    let mut rng = StdRng::seed_from_u64(7);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(50), &mut rng);
    let actual: String = log
        .records
        .iter()
        .map(|r| format!("{} {:?} {:?}\n", r.query_idx, r.agent_cost, r.reward))
        .collect();

    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/training_log_seed7.txt"
    );
    if std::env::var("HFQO_BLESS").is_ok() {
        std::fs::write(golden_path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(golden_path)
        .expect("golden file present (regenerate with HFQO_BLESS=1)");
    assert_eq!(
        expected, actual,
        "fixed-seed training log drifted from {golden_path}; if the \
         change is intentional, regenerate with HFQO_BLESS=1"
    );
}

/// The mini-batch tentpole's end-to-end statement: training with the
/// batched update path (the default) and with the retained per-row
/// reference path produces the **same log, bit for bit** — every
/// forward, gradient, and optimizer step agrees, so every subsequent
/// rollout consumes the RNG stream identically. Exercised for both
/// policy backends.
#[test]
fn per_row_update_path_reproduces_batched_training_bitwise() {
    use hfqo_rl::UpdatePath;

    let (bundle, queries) = small_workload();
    for kind in [PolicyKind::default_reinforce(), PolicyKind::default_ppo()] {
        let run = |path: UpdatePath| {
            let ctx = EnvContext::new(&bundle.db, &bundle.stats);
            let mut env =
                JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::LogRelative);
            let mut rng = StdRng::seed_from_u64(19);
            let mut agent =
                ReJoinAgent::new(env.state_dim(), env.action_dim(), kind.clone(), &mut rng);
            train(
                &mut env,
                &mut agent,
                TrainerConfig::new(48).with_update_path(path),
                &mut rng,
            )
        };
        let batched = run(UpdatePath::Batched);
        let per_row = run(UpdatePath::PerRow);
        assert_eq!(
            batched, per_row,
            "{kind:?}: batched and per-row training logs must be bit-identical"
        );
    }
}

#[test]
fn ppo_backend_also_trains() {
    let (bundle, queries) = small_workload();
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        5,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
    );
    let mut rng = StdRng::seed_from_u64(7);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_ppo(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(200), &mut rng);
    assert_eq!(log.len(), 200);
    assert!(log.final_geo_ratio(40).expect("non-empty").is_finite());
}
