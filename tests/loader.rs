//! Bulk-loader smoke test over the checked-in IMDB CSV sample.
//!
//! `tests/data/imdb_sample/` holds a ~1.4k-row slice in the real JOB
//! dump layout (`<table>.csv`, no headers, RFC 4180 quoting — the
//! `movie_companies.note` column carries quoted commas and embedded
//! quotes; `title.production_year` and `movie_companies.note` carry
//! `\N` NULLs; the appended `movie_companies` block repeats values in
//! long runs). The loader must ingest it through the typed batched
//! path, dictionary-encode the low-cardinality text columns,
//! run-length-encode the run-structured ones, and produce a database
//! that answers joins identically across the row engine, the batch
//! engine, the parallel evaluator, and a plain (unencoded) load.

use hfqo::catalog::ColumnId;
use hfqo::exec::execute_rows;
use hfqo::prelude::*;
use hfqo::query::{BoundColumn, JoinAlgo, JoinEdge, PlanNode, RelId, Relation};
use hfqo::sql::CompareOp;
use hfqo::workload::imdb;
use hfqo::workload::loader::{load_imdb_csv_dir, LoaderOptions};
use std::path::Path;

fn sample_dir() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/imdb_sample"
    ))
}

fn load(dict_max_distinct: usize, rle_min_avg_run: usize) -> (Database, hfqo::stats::StatsCatalog) {
    let opts = LoaderOptions {
        dict_max_distinct,
        rle_min_avg_run,
        ..LoaderOptions::default()
    };
    let (db, stats, _) = load_imdb_csv_dir(sample_dir(), &opts).expect("sample loads");
    (db, stats)
}

/// title ⋈ movie_companies on `t.id = mc.movie_id`, then ⋈ kind_type on
/// `t.kind_id = kt.id`. Every `mc` row references an existing title and
/// every title an existing kind, so the result has one row per `mc` row.
fn three_way_join(db: &Database) -> (QueryGraph, PhysicalPlan) {
    let rels = ["title", "movie_companies", "kind_type"];
    let relations: Vec<Relation> = rels
        .iter()
        .map(|name| Relation {
            table: imdb::table_id(db, name),
            alias: imdb::alias_of(name).to_string(),
        })
        .collect();
    let graph = QueryGraph::new(
        relations,
        vec![
            JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(0)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(1), ColumnId(1)),
            },
            JoinEdge {
                left: BoundColumn::new(RelId(0), ColumnId(1)),
                op: CompareOp::Eq,
                right: BoundColumn::new(RelId(2), ColumnId(0)),
            },
        ],
        vec![],
        vec![],
        vec![],
    );
    let scan = |rel: u32| {
        Box::new(PlanNode::Scan {
            rel: RelId(rel),
            path: hfqo::query::AccessPath::SeqScan,
        })
    };
    let plan = PhysicalPlan::new(PlanNode::Join {
        algo: JoinAlgo::Hash,
        conds: vec![1],
        left: Box::new(PlanNode::Join {
            algo: JoinAlgo::Hash,
            conds: vec![0],
            left: scan(0),
            right: scan(1),
        }),
        right: scan(2),
    });
    (graph, plan)
}

#[test]
fn sample_loads_through_the_typed_path() {
    let opts = LoaderOptions::default();
    let (db, stats, report) = load_imdb_csv_dir(sample_dir(), &opts).expect("sample loads");

    let counts: Vec<(&str, usize)> = report
        .tables
        .iter()
        .map(|t| (t.table.as_str(), t.rows))
        .collect();
    assert_eq!(
        counts,
        vec![("title", 800), ("kind_type", 7), ("movie_companies", 630)]
    );
    assert_eq!(report.total_rows(), 1437);
    assert!(report.total_bytes() > 0);

    // Typed ingestion, spot-checked against the raw file contents.
    let t = imdb::table_id(&db, "title");
    assert_eq!(db.table(t).unwrap().row_count(), 800);
    assert_eq!(
        db.table(t).unwrap().value_at(0, ColumnId(2)),
        hfqo::storage::Value::Int(1963)
    );
    let mc = imdb::table_id(&db, "movie_companies");
    assert_eq!(
        db.table(mc).unwrap().value_at(1, ColumnId(4)),
        hfqo::storage::Value::str("(in association with, co-production)"),
        "quoted note with embedded comma survives the CSV reader"
    );
    assert_eq!(
        db.table(mc).unwrap().value_at(2, ColumnId(4)),
        hfqo::storage::Value::str("(as \"The Studio\", uncredited)"),
        "doubled quotes unescape"
    );

    // Low-cardinality text columns dictionary-encode; statistics see
    // the loaded rows.
    let dicts: Vec<(&str, usize)> = report
        .tables
        .iter()
        .map(|t| (t.table.as_str(), t.dict_columns))
        .collect();
    assert_eq!(
        dicts,
        vec![("title", 0), ("kind_type", 1), ("movie_companies", 1)]
    );
    // The run-structured block appended to movie_companies pushes its
    // fk/flag/note columns over the RLE threshold; note stacks RLE on
    // top of its dictionary codes.
    assert!(db.table(mc).unwrap().column(ColumnId(4)).unwrap().is_rle());
    assert_eq!(stats.table(t).row_count, 800.0);

    // NULLs ingest as NULLs: odd appended title ids have \N years, and
    // the middle appended movie_companies block has \N notes.
    let title = db.table(t).unwrap();
    assert!(title.value_at(700, ColumnId(2)).is_null(), "id 701 year");
    assert!(!title.value_at(701, ColumnId(2)).is_null(), "id 702 year");
    assert!(db.table(mc).unwrap().value_at(450, ColumnId(4)).is_null());
}

#[test]
fn loaded_sample_serves_joins_identically_everywhere() {
    let defaults = LoaderOptions::default();
    let (db, _) = load(defaults.dict_max_distinct, defaults.rle_min_avg_run);
    let (graph, plan) = three_way_join(&db);

    let row = execute_rows(&db, &graph, &plan, ExecConfig::default()).expect("row engine");
    let batch = hfqo::exec::execute(&db, &graph, &plan, ExecConfig::default()).expect("batch");
    assert_eq!(batch.rows.len(), 630, "one output row per movie_companies");
    let (mut bs, mut rs) = (batch.rows.clone(), row.rows.clone());
    bs.sort();
    rs.sort();
    assert_eq!(bs, rs, "batch vs row multiset");
    assert_eq!(batch.stats.work, row.stats.work);

    for threads in [2, 4] {
        let par = hfqo::exec::execute(&db, &graph, &plan, ExecConfig::default().threads(threads))
            .expect("parallel");
        assert_eq!(par.rows, batch.rows, "threads={threads} exact row order");
        assert_eq!(par.stats.work, batch.stats.work, "threads={threads} work");
    }
}

#[test]
fn dictionary_encoding_round_trips_identically_to_plain() {
    // RLE disabled on both sides: this test isolates the dictionary.
    let (dict_db, _) = load(LoaderOptions::default().dict_max_distinct, 0);
    let (plain_db, _) = load(0, 0);

    // Cell-by-cell: decoding the dictionary column reproduces the plain
    // load exactly.
    let mc = imdb::table_id(&dict_db, "movie_companies");
    let dict_table = dict_db.table(mc).unwrap();
    let plain_table = plain_db.table(mc).unwrap();
    assert!(dict_table.column(ColumnId(4)).unwrap().is_dictionary());
    assert!(!plain_table.column(ColumnId(4)).unwrap().is_dictionary());
    for row in 0..dict_table.row_count() {
        assert_eq!(
            dict_table.value_at(row, ColumnId(4)),
            plain_table.value_at(row, ColumnId(4)),
            "row {row}"
        );
    }

    // And query results over the encoded database match the plain one,
    // serial and parallel.
    let (graph, plan) = three_way_join(&dict_db);
    let from_dict = hfqo::exec::execute(&dict_db, &graph, &plan, ExecConfig::default()).unwrap();
    let from_plain = hfqo::exec::execute(&plain_db, &graph, &plan, ExecConfig::default()).unwrap();
    assert_eq!(from_dict.rows, from_plain.rows);
    assert_eq!(from_dict.stats.work, from_plain.stats.work);
    let par = hfqo::exec::execute(
        &dict_db,
        &graph,
        &plan,
        ExecConfig::default().threads(4).morsel_rows(64),
    )
    .unwrap();
    assert_eq!(par.rows, from_dict.rows);
    assert_eq!(par.stats.work, from_dict.stats.work);
}

#[test]
fn rle_auto_selects_only_run_structured_columns() {
    let opts = LoaderOptions::default();
    let (db, _, report) = load_imdb_csv_dir(sample_dir(), &opts).expect("sample loads");

    // title's appended rows cycle their values (no runs) and kind_type
    // is tiny; only movie_companies' clustered block compresses.
    let rles: Vec<(&str, usize)> = report
        .tables
        .iter()
        .map(|t| (t.table.as_str(), t.rle_columns))
        .collect();
    assert_eq!(
        rles,
        vec![("title", 0), ("kind_type", 0), ("movie_companies", 4)]
    );

    let mc = imdb::table_id(&db, "movie_companies");
    let table = db.table(mc).unwrap();
    assert!(!table.column(ColumnId(0)).unwrap().is_rle(), "id is unique");
    for col in [1, 2, 3, 4] {
        assert!(table.column(ColumnId(col)).unwrap().is_rle(), "col {col}");
    }
}

#[test]
fn rle_encoding_round_trips_identically_to_plain() {
    // Dictionary on both sides: this test isolates the run-length layer
    // (mirroring the dictionary round-trip test above).
    let defaults = LoaderOptions::default();
    let (rle_db, _) = load(defaults.dict_max_distinct, defaults.rle_min_avg_run);
    let (plain_db, _) = load(defaults.dict_max_distinct, 0);

    // Cell-by-cell over every movie_companies column, NULLs included.
    let mc = imdb::table_id(&rle_db, "movie_companies");
    let rle_table = rle_db.table(mc).unwrap();
    let plain_table = plain_db.table(mc).unwrap();
    let width = rle_table.schema().columns().len();
    for col in 0..width {
        assert!(!plain_table.column(ColumnId(col as u32)).unwrap().is_rle());
        for row in 0..rle_table.row_count() {
            assert_eq!(
                rle_table.value_at(row, ColumnId(col as u32)),
                plain_table.value_at(row, ColumnId(col as u32)),
                "col {col} row {row}"
            );
        }
    }

    // And query results over the run-length database match the plain
    // one, serial and parallel.
    let (graph, plan) = three_way_join(&rle_db);
    let from_rle = hfqo::exec::execute(&rle_db, &graph, &plan, ExecConfig::default()).unwrap();
    let from_plain = hfqo::exec::execute(&plain_db, &graph, &plan, ExecConfig::default()).unwrap();
    assert_eq!(from_rle.rows, from_plain.rows);
    assert_eq!(from_rle.stats.work, from_plain.stats.work);
    let par = hfqo::exec::execute(
        &rle_db,
        &graph,
        &plan,
        ExecConfig::default().threads(4).morsel_rows(64),
    )
    .unwrap();
    assert_eq!(par.rows, from_rle.rows);
    assert_eq!(par.stats.work, from_rle.stats.work);
}
