//! Serving-layer integration: plan-cache correctness, LRU eviction,
//! stats-rebuild invalidation, the learned planner behind
//! `QuerySession`, and concurrent serving (the CI smoke test runs this
//! file at `HFQO_WORKERS=2`).

use hfqo::prelude::*;
use hfqo::workload::synth::{Shape, SynthConfig, SynthDb};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

fn synth_config() -> SynthConfig {
    SynthConfig {
        tables: 7,
        rows: 150,
        seed: 55,
    }
}

/// One shared session for the property test (building a database per
/// case would dominate the run time). The generator side is a second
/// build of the same deterministic database.
fn shared_session() -> &'static QuerySession {
    static SESSION: OnceLock<QuerySession> = OnceLock::new();
    SESSION.get_or_init(|| {
        let synth = SynthDb::build(synth_config());
        QuerySession::traditional(synth.db, synth.stats)
    })
}

fn generator() -> &'static SynthDb {
    static DB: OnceLock<SynthDb> = OnceLock::new();
    DB.get_or_init(|| SynthDb::build(synth_config()))
}

fn shape_from(v: u8) -> Shape {
    match v % 3 {
        0 => Shape::Chain,
        1 => Shape::Star,
        _ => Shape::Cycle,
    }
}

fn sorted_rows(served: &ServedQuery) -> Vec<Vec<hfqo::storage::Value>> {
    let mut rows = served.outcome.rows.clone();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plan-cache correctness: a cache-hit serve must execute to the
    /// identical row multiset and identical `ExecStats.work` as the
    /// freshly planned serve of the same query.
    #[test]
    fn cache_hit_executes_identically_to_fresh_plan(
        n in 2usize..6,
        shape in 0u8..3,
        qseed in 0u64..40,
    ) {
        let session = shared_session();
        let graph = generator().query(shape_from(shape), n, 2, qseed);
        session.invalidate_cache();
        let fresh = session.serve_graph(&graph).expect("fresh serve");
        let hit = session.serve_graph(&graph).expect("cached serve");
        prop_assert!(!fresh.cache_hit);
        prop_assert!(hit.cache_hit);
        prop_assert_eq!(&hit.plan, &fresh.plan);
        prop_assert_eq!(sorted_rows(&hit), sorted_rows(&fresh));
        prop_assert_eq!(hit.outcome.stats.work, fresh.outcome.stats.work);
        prop_assert_eq!(hit.method, fresh.method);
    }
}

/// Structurally distinct queries (different shapes/sizes), so each has
/// its own template fingerprint. Same-shape queries differing only in
/// seed now share a template — exactly what the old version of the LRU
/// test below unknowingly relied on *not* happening.
fn distinct_template_queries(bundle: &SynthDb) -> Vec<QueryGraph> {
    vec![
        bundle.query(Shape::Chain, 3, 2, 100),
        bundle.query(Shape::Star, 4, 2, 101),
        bundle.query(Shape::Cycle, 5, 2, 102),
    ]
}

#[test]
fn lru_eviction_drops_the_least_recently_used_plan() {
    let synth = SynthDb::build(synth_config());
    let queries = distinct_template_queries(&synth);
    // One shard so the two-template capacity (eviction is per shard)
    // and the LRU order are deterministic.
    let session = QuerySession::traditional(synth.db, synth.stats).with_cache_config(CacheConfig {
        capacity: 2,
        shards: 1,
        ..CacheConfig::default()
    });
    // Fill: q0, q1 (both miss).
    assert!(!session.serve_graph(&queries[0]).unwrap().cache_hit);
    assert!(!session.serve_graph(&queries[1]).unwrap().cache_hit);
    // Touch q0 so q1 becomes LRU, then insert q2 → q1 evicted.
    assert!(session.serve_graph(&queries[0]).unwrap().cache_hit);
    assert!(!session.serve_graph(&queries[2]).unwrap().cache_hit);
    assert_eq!(session.cache_metrics().evictions, 1);
    // q0 survived; q1 must re-plan.
    assert!(session.serve_graph(&queries[0]).unwrap().cache_hit);
    assert!(!session.serve_graph(&queries[1]).unwrap().cache_hit);
}

#[test]
fn stats_rebuild_invalidates_the_plan_cache() {
    let synth = SynthDb::build(synth_config());
    let graph = synth.query(Shape::Star, 4, 2, 7);
    let mut session = QuerySession::traditional(synth.db, synth.stats);
    let before = session.serve_graph(&graph).unwrap();
    assert!(session.serve_graph(&graph).unwrap().cache_hit);
    session.rebuild_stats();
    let after = session.serve_graph(&graph).unwrap();
    assert!(!after.cache_hit, "stats rebuild must invalidate the cache");
    assert_eq!(session.cache_metrics().invalidations, 1);
    // Rebuilding from the unchanged database re-derives the same
    // statistics, so the re-planned query gives the same answer.
    assert_eq!(sorted_rows(&after), sorted_rows(&before));
}

/// All four strategies serve through one session: swap planners behind
/// the trait, get identical results, correctly attributed. The query
/// carries a `COUNT(*)` root because non-aggregated output columns
/// follow plan-leaf order — different join orders permute them, so only
/// the aggregated shape is directly comparable across planners.
#[test]
fn all_four_planners_serve_through_the_session() {
    let synth = SynthDb::build(synth_config());
    let graph = hfqo::opt::test_support::with_count(synth.query(Shape::Chain, 4, 2, 11));

    // Train (briefly) on the serving query so the learned planner is a
    // real frozen policy, then freeze it.
    let stats_clone = synth.stats.clone();
    let db_clone = synth.db.clone();
    let queries = vec![graph.clone()];
    let ctx = EnvContext::new(&db_clone, &stats_clone);
    let mut env = JoinOrderEnv::new(ctx, &queries, 4, QueryOrder::Cycle, RewardMode::LogRelative);
    env.require_connected = true;
    let mut rng = StdRng::seed_from_u64(2);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let _ = train(&mut env, &mut agent, TrainerConfig::new(40), &mut rng);
    let learned = LearnedPlanner::freeze(&agent, env.featurizer());

    let mut session = QuerySession::traditional(synth.db, synth.stats);
    let planners: Vec<(Box<dyn Planner>, PlannerMethod)> = vec![
        (
            Box::new(TraditionalPlanner::new()),
            PlannerMethod::DynamicProgramming,
        ),
        (Box::new(GreedyPlanner), PlannerMethod::Greedy),
        (Box::new(RandomPlanner::new(5)), PlannerMethod::Random),
        (Box::new(learned), PlannerMethod::Learned),
    ];
    let mut reference: Option<Vec<Vec<hfqo::storage::Value>>> = None;
    for (planner, method) in planners {
        session.set_planner(planner);
        let served = session.serve_graph(&graph).unwrap();
        assert!(!served.cache_hit, "planner swap must invalidate");
        assert_eq!(served.method, method);
        served.plan.validate(&graph).unwrap();
        let rows = sorted_rows(&served);
        match &reference {
            None => reference = Some(rows),
            Some(expected) => assert_eq!(&rows, expected, "{method} changed results"),
        }
        // And each strategy's plans cache like any other.
        assert!(session.serve_graph(&graph).unwrap().cache_hit);
    }
}

/// Worker counts for the concurrency smoke test: `HFQO_WORKERS` (a
/// count or comma-separated counts; CI runs 2), default 2.
fn worker_counts() -> Vec<usize> {
    match std::env::var("HFQO_WORKERS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("invalid HFQO_WORKERS entry `{s}`"))
                    .max(1)
            })
            .collect(),
        Err(_) => vec![2],
    }
}

/// Executor thread counts for the intra-query parallelism test:
/// `HFQO_EXEC_THREADS` (comma-separated; CI runs 1, 2 and 4), default
/// `2,4`.
fn exec_thread_counts() -> Vec<usize> {
    match std::env::var("HFQO_EXEC_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("invalid HFQO_EXEC_THREADS entry `{s}`"))
                    .max(1)
            })
            .collect(),
        Err(_) => vec![2, 4],
    }
}

/// A session configured for intra-query parallelism must serve the
/// identical rows and the identical `ExecStats.work` as a single-thread
/// session — the executor's thread count is invisible to everything
/// above it, including online-learning reward signals derived from
/// served work.
#[test]
fn served_results_are_independent_of_executor_threads() {
    let synth = SynthDb::build(synth_config());
    let queries: Vec<QueryGraph> = (0..6u64)
        .map(|s| synth.query(shape_from(s as u8), 2 + (s as usize % 4), 2, 300 + s))
        .collect();
    let serial = QuerySession::traditional(synth.db.clone(), synth.stats.clone());
    let reference: Vec<_> = queries
        .iter()
        .map(|q| serial.serve_graph(q).expect("serial serve"))
        .collect();
    for threads in exec_thread_counts() {
        let session = QuerySession::traditional(synth.db.clone(), synth.stats.clone())
            .with_exec_config(ExecConfig::default().threads(threads));
        for (q, reference) in queries.iter().zip(&reference) {
            let served = session.serve_graph(q).expect("parallel serve");
            assert_eq!(
                sorted_rows(&served),
                sorted_rows(reference),
                "threads={threads} rows"
            );
            assert_eq!(
                served.outcome.stats.work, reference.outcome.stats.work,
                "threads={threads} work"
            );
            assert_eq!(served.plan, reference.plan, "threads={threads} plan");
        }
    }
}

/// N threads serve the same workload against one shared session; every
/// thread must observe the sequential reference results, and the cache
/// counters must add up.
#[test]
fn concurrent_serving_matches_sequential_results() {
    let synth = SynthDb::build(synth_config());
    let queries: Vec<QueryGraph> = (0..6u64)
        .map(|s| synth.query(shape_from(s as u8), 2 + (s as usize % 4), 2, 200 + s))
        .collect();
    let session = QuerySession::traditional(synth.db, synth.stats);
    let reference: Vec<_> = queries
        .iter()
        .map(|q| sorted_rows(&session.serve_graph(q).expect("reference serve")))
        .collect();

    for workers in worker_counts() {
        session.invalidate_cache();
        let before = session.cache_metrics();
        std::thread::scope(|scope| {
            for w in 0..workers {
                let session = &session;
                let queries = &queries;
                let reference = &reference;
                scope.spawn(move || {
                    // Stagger starting offsets so threads race on
                    // different fingerprints first.
                    for round in 0..3 {
                        for i in 0..queries.len() {
                            let idx = (i + w + round) % queries.len();
                            let served = session
                                .serve_graph(&queries[idx])
                                .expect("concurrent serve");
                            assert_eq!(
                                sorted_rows(&served),
                                reference[idx],
                                "worker {w} round {round} query {idx}"
                            );
                        }
                    }
                });
            }
        });
        let after = session.cache_metrics();
        // Every serve accounts as exactly one of hit / miss / re-plan —
        // a thread that waits on another's in-flight planner run counts
        // only its final (post-wait) probe.
        let probes = (after.hits - before.hits)
            + (after.misses - before.misses)
            + (after.replans - before.replans);
        assert_eq!(
            probes as usize,
            workers * 3 * queries.len(),
            "every serve probes the cache exactly once"
        );
        assert_eq!(
            after.duplicate_plans, before.duplicate_plans,
            "single-flight: racing cold misses must not double-plan"
        );
        assert!(
            after.len <= queries.len(),
            "at most one template entry per distinct structure"
        );
    }
}
