//! Offline shim for the subset of the `criterion` API the workspace's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`. Timing is plain wall-clock sampling (median over a
//! configurable number of samples after a short warm-up) — far simpler
//! than real criterion's bootstrap analysis, but stable enough to track
//! relative throughput across PRs without network access to crates.io.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as real criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// One benchmark's timing summary, as recorded for the JSON report.
#[derive(Debug, Clone)]
pub struct SummaryEntry {
    /// Group name (`benchmark_group` argument).
    pub group: String,
    /// Benchmark id within the group (`name` or `name/parameter`).
    pub id: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u128,
    /// Fastest sample.
    pub min_ns: u128,
    /// Slowest sample.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
}

/// Top-level handle passed to every benchmark function. Accumulates a
/// [`SummaryEntry`] per benchmark; `criterion_main!` drains them into
/// `results/bench_<binary>.json` at the workspace root.
#[derive(Debug, Default)]
pub struct Criterion {
    entries: Vec<SummaryEntry>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name}");
        BenchmarkGroup {
            c: self,
            name,
            sample_size: 20,
        }
    }

    /// The summaries recorded so far, in run order.
    pub fn into_entries(self) -> Vec<SummaryEntry> {
        self.entries
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if let Some(entry) = b.report(&self.name, &id.id) {
            self.c.entries.push(entry);
        }
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        if let Some(entry) = b.report(&self.name, &id.id) {
            self.c.entries.push(entry);
        }
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) -> Option<SummaryEntry> {
        if self.samples.is_empty() {
            eprintln!("{group}/{id}: no samples (iter was never called)");
            return None;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        eprintln!(
            "{group}/{id}: median {} (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            self.samples.len()
        );
        Some(SummaryEntry {
            group: group.to_string(),
            id: id.to_string(),
            median_ns: median.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: self.samples.len(),
        })
    }
}

/// The workspace root: the nearest ancestor of the current directory
/// holding a `Cargo.lock` (`cargo bench` runs benches with the package
/// directory as cwd, which for this workspace is below the root).
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.lock").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The bench binary's stem with cargo's `-<hash>` suffix stripped:
/// `target/release/deps/executor-1f2e3d…` → `executor`.
fn bench_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the run's summaries to `results/bench_<binary>.json` at the
/// workspace root. Never fails the bench run: reporting problems go to
/// stderr and the process still exits 0. Called by `criterion_main!`.
pub fn write_summary(entries: &[SummaryEntry]) {
    if entries.is_empty() {
        return;
    }
    let Some(root) = workspace_root() else {
        eprintln!("bench summary: no Cargo.lock ancestor; skipping JSON report");
        return;
    };
    let dir = root.join("results");
    let path = dir.join(format!("bench_{}.json", bench_name()));
    let mut body = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        body.push_str(&format!(
            "  {{\"group\": \"{}\", \"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}}}{}\n",
            json_escape(&e.group),
            json_escape(&e.id),
            e.median_ns,
            e.min_ns,
            e.max_ns,
            e.samples,
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    body.push_str("]\n");
    let written = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body));
    match written {
        Ok(()) => eprintln!("\nbench summary: wrote {}", path.display()),
        Err(e) => eprintln!("\nbench summary: cannot write {}: {e}", path.display()),
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro. The generated function returns the group's summaries so
/// `criterion_main!` can write one JSON report per bench binary.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() -> Vec<$crate::SummaryEntry> {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
            c.into_entries()
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
/// After all groups run, their summaries land in
/// `results/bench_<binary>.json` at the workspace root.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut entries: Vec<$crate::SummaryEntry> = Vec::new();
            $( entries.extend($group()); )+
            $crate::write_summary(&entries);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_renders_name_and_param() {
        let id = BenchmarkId::new("expert", 7);
        assert_eq!(id.id, "expert/7");
    }

    #[test]
    fn group_collects_summaries() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_function("a", |b| b.iter(|| 1));
        group.bench_with_input(BenchmarkId::new("b", 7), &3, |b, &x| b.iter(|| x));
        group.finish();
        let entries = c.into_entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].group, "shim");
        assert_eq!(entries[0].id, "a");
        assert_eq!(entries[1].id, "b/7");
        assert_eq!(entries[1].samples, 2);
        assert!(entries[1].min_ns <= entries[1].median_ns);
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_escape("plain/1%"), "plain/1%");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
    }
}
