//! Offline shim for the subset of the `criterion` API the workspace's
//! benches use: `criterion_group!` / `criterion_main!`, benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, and
//! `Bencher::iter`. Timing is plain wall-clock sampling (median over a
//! configurable number of samples after a short warm-up) — far simpler
//! than real criterion's bootstrap analysis, but stable enough to track
//! relative throughput across PRs without network access to crates.io.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, as real criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.samples.is_empty() {
            eprintln!("{group}/{id}: no samples (iter was never called)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = self.samples[self.samples.len() - 1];
        eprintln!(
            "{group}/{id}: median {} (min {}, max {}, {} samples)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("count_calls", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_renders_name_and_param() {
        let id = BenchmarkId::new("expert", 7);
        assert_eq!(id.id, "expert/7");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
    }
}
