//! Offline shim for the subset of the `rand` crate API this workspace
//! uses (`Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`, `SeedableRng`,
//! `rngs::StdRng`). The container has no crates.io access, so the real
//! crate cannot be fetched; this implementation is deterministic,
//! seed-stable across runs, and fast, which is all the experiments need.
//!
//! The generator is xoshiro256** seeded via SplitMix64 — the same
//! construction rand's `SmallRng` family uses. It is NOT the real
//! `StdRng` stream (ChaCha12); seeds produce different sequences than
//! upstream rand, which is fine because nothing in this repository
//! depends on upstream stream values.

use std::ops::{Range, RangeInclusive};

/// Core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (the only constructor
    /// this workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `Standard` distribution in real rand).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (`Range` / `RangeInclusive`
/// over the primitive types the workspace draws).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via 64-bit rejection sampling (`span`
/// always fits in 65 bits here; the widening only exists so the macro
/// covers signed full-range spans).
#[inline]
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable for ranges wider than u64::MAX, which the
        // workspace never samples; fall back to a modulo draw.
        return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
    }
    let span = span as u64;
    // Rejection zone to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span) as u128;
        }
    }
}

macro_rules! float_sample_range {
    ($($t:ty => $std:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32 => f32, f64 => f64);

/// The user-facing generator trait.
pub trait Rng: RngCore {
    /// Draws a value of `T` from the standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as StandardSample>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's
    /// `StdRng` (different stream, same API).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
