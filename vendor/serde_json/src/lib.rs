//! Offline shim for the one `serde_json` entry point the workspace uses:
//! [`to_string_pretty`]. Values render through the vendored
//! `serde::Serialize` trait into compact JSON, then get re-indented.

use serde::Serialize;
use std::fmt;

/// Serialisation error. The shim's serialisers are infallible, so this
/// type exists only to keep call sites' `Result` handling compiling.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialisation failed")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut compact = String::new();
    value.serialize_json(&mut compact);
    Ok(pretty(&compact))
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut compact = String::new();
    value.serialize_json(&mut compact);
    Ok(compact)
}

fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                indent += 1;
                out.push(c);
                newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Point {
        x: u32,
        label: String,
    }

    impl Serialize for Point {
        fn serialize_json(&self, out: &mut String) {
            out.push('{');
            serde::write_json_string(out, "x");
            out.push(':');
            self.x.serialize_json(out);
            out.push(',');
            serde::write_json_string(out, "label");
            out.push(':');
            self.label.serialize_json(out);
            out.push('}');
        }
    }

    #[test]
    fn pretty_output_is_indented_and_string_safe() {
        let p = Point {
            x: 3,
            label: "a{b,c}:d".into(),
        };
        let s = to_string_pretty(&p).unwrap();
        assert!(s.contains("\"x\": 3"));
        // Braces inside strings must not trigger indentation.
        assert!(s.contains("a{b,c}:d"));
        assert_eq!(to_string(&p).unwrap(), "{\"x\":3,\"label\":\"a{b,c}:d\"}");
    }
}
