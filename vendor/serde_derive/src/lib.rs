//! Hand-rolled `#[derive(Serialize)]` proc-macro for the vendored serde
//! shim. Supports exactly what the workspace derives on: non-generic
//! structs with named fields. No `syn`/`quote` (offline build), so the
//! input token stream is parsed directly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored JSON-only trait) for a
/// named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, fields) =
        parse_struct(&tokens).unwrap_or_else(|e| panic!("#[derive(Serialize)] shim: {e}"));

    let mut body = String::new();
    body.push_str("out.push('{');\n");
    for (i, field) in fields.iter().enumerate() {
        if i > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!(
            "serde::write_json_string(out, \"{field}\");\nout.push(':');\n\
             serde::Serialize::serialize_json(&self.{field}, out);\n"
        ));
    }
    body.push_str("out.push('}');\n");

    let impl_src = format!(
        "impl serde::Serialize for {name} {{\n\
           fn serialize_json(&self, out: &mut String) {{\n{body}}}\n\
         }}"
    );
    impl_src.parse().expect("generated impl is valid Rust")
}

/// Extracts `(struct_name, field_names)` from the derive input tokens.
fn parse_struct(tokens: &[TokenTree]) -> Result<(String, Vec<String>), String> {
    let mut iter = tokens.iter().peekable();
    // Skip attributes (`#[...]`, doc comments arrive in this form) and
    // visibility ahead of the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the following bracket group.
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => match iter.next() {
                Some(TokenTree::Ident(n)) => {
                    name = Some(n.to_string());
                    break;
                }
                other => {
                    return Err(format!("expected struct name, found {other:?}"));
                }
            },
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("enums are not supported; derive on structs only".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or("no `struct` keyword found")?;
    // The next brace group holds the fields.
    let fields_group = iter
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g),
            _ => None,
        })
        .ok_or("no braced field list found (tuple structs unsupported)")?;

    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut expecting_name = true;
    let mut toks = fields_group.stream().into_iter().peekable();
    while let Some(tt) = toks.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' && depth == 0 => {
                toks.next(); // attribute body
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth = depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                expecting_name = true;
            }
            TokenTree::Ident(id) if depth == 0 && expecting_name => {
                let s = id.to_string();
                if s == "pub" {
                    // Visibility; a `pub(crate)` group is skipped as a
                    // normal token below.
                    continue;
                }
                // A field name is an ident directly followed by `:`.
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Punct(p)) if p.as_char() == ':'
                ) {
                    fields.push(s);
                    expecting_name = false;
                }
            }
            _ => {}
        }
    }
    Ok((name, fields))
}
