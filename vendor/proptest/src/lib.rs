//! Offline shim for the subset of `proptest` this workspace uses: the
//! `proptest!` macro over range strategies, `prop_assert!` /
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`.
//!
//! Each property runs `cases` times with inputs drawn from the range
//! strategies by a per-test deterministic RNG (seeded from the test name,
//! so adding tests does not perturb existing ones). There is no
//! shrinking: a failing case panics with the drawn inputs printed, which
//! is enough to reproduce (the draw is deterministic).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random inputs for one property case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic per-(test, case) generator.
    pub fn new(test_name: &str, case: u32) -> Self {
        let mut seed = 0xCBF29CE484222325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001B3);
        }
        Self {
            inner: StdRng::seed_from_u64(seed ^ ((case as u64) << 32)),
        }
    }
}

/// A strategy: something that can draw a value.
pub trait Strategy {
    /// The produced type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn draw(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn draw(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The property-test macro. Supports the forms used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in 0usize..10, y in 0.0f64..1.0) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::TestRng::new(stringify!($name), case);
                    $( let $arg = $crate::Strategy::draw(&($strat), &mut prop_rng); )+
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed with inputs: {}",
                            stringify!($name),
                            [$( format!("{} = {:?}", stringify!($arg), $arg) ),+].join(", "),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strat ),+ ) $body
            )*
        }
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob import real proptest users write.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3usize..9, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn multiple_properties_compile(a in 0u8..3, b in 0u64..10) {
            prop_assert!(u64::from(a) + b < 13);
        }
    }

    proptest! {
        #[test]
        fn default_config_form(x in 0i64..=5) {
            prop_assert!((0..=5).contains(&x));
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let a = (0u64..1000).draw(&mut TestRng::new("t", 3));
        let b = (0u64..1000).draw(&mut TestRng::new("t", 3));
        assert_eq!(a, b);
        let c = (0u64..1000).draw(&mut TestRng::new("t", 4));
        let d = (0u64..1000).draw(&mut TestRng::new("u", 3));
        // Overwhelmingly likely to differ; deterministic so stable.
        assert!(a != c || a != d);
    }
}
