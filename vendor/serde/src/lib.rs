//! Offline shim for the subset of `serde` this workspace uses: a
//! `Serialize` trait (JSON-only, no `Serializer` abstraction) plus the
//! `#[derive(Serialize)]` macro re-exported from the vendored
//! `serde_derive`. `serde_json::to_string_pretty` is the only consumer.

pub use serde_derive::Serialize;

/// JSON-serialisable values.
pub trait Serialize {
    /// Appends this value's JSON rendering to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Writes `s` as a JSON string literal (with escaping).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! int_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

int_serialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/∞; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
        }
    )*};
}

float_serialize!(f32, f64);

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! tuple_serialize {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}

tuple_serialize!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    fn render<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(render(3u64), "3");
        assert_eq!(render(-2i64), "-2");
        assert_eq!(render(true), "true");
        assert_eq!(render(1.5f64), "1.5");
        assert_eq!(render(f64::NAN), "null");
        assert_eq!(render("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(render(vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(render(Option::<u32>::None), "null");
        assert_eq!(render(Some(7u32)), "7");
        assert_eq!(render((1usize, 2.5f64)), "[1,2.5]");
    }
}
