//! # hfqo — a Hands-Free Query Optimizer through Deep Reinforcement Learning
//!
//! A complete, from-scratch Rust reproduction of *"Towards a Hands-Free
//! Query Optimizer through Deep Learning"* (Marcus & Papaemmanouil,
//! CIDR 2019): the **ReJOIN** deep-RL join order enumerator, the full
//! database substrate it runs on (catalog, storage, SQL front-end,
//! statistics, cost model, executor, and a traditional optimizer playing
//! PostgreSQL's role), and the paper's three proposed research
//! directions — learning from demonstration, cost-model bootstrapping,
//! and incremental learning.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and integration tests. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every figure.
//!
//! ## Quick start
//!
//! ```
//! use hfqo::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A small IMDB-like database with JOB-like queries.
//! let bundle = WorkloadBundle::imdb_job(
//!     ImdbConfig { base_rows: 300, seed: 1 },
//!     7,
//! );
//! // Plan one query with the traditional optimizer…
//! let expert = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
//! let planned = expert.plan(&bundle.queries[0]).unwrap();
//! assert!(planned.cost > 0.0);
//!
//! // …and set up a ReJOIN agent over the same workload.
//! let ctx = EnvContext::new(&bundle.db, &bundle.stats);
//! let mut env = JoinOrderEnv::new(
//!     ctx,
//!     &bundle.queries,
//!     bundle.max_rels(),
//!     QueryOrder::Shuffle,
//!     RewardMode::RelativeToExpert,
//! );
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut agent = ReJoinAgent::new(
//!     env.state_dim(),
//!     env.action_dim(),
//!     PolicyKind::default_reinforce(),
//!     &mut rng,
//! );
//! let log = train(&mut env, &mut agent, TrainerConfig::new(10), &mut rng);
//! assert_eq!(log.len(), 10);
//! ```

pub use hfqo_catalog as catalog;
pub use hfqo_cost as cost;
pub use hfqo_exec as exec;
pub use hfqo_nn as nn;
pub use hfqo_opt as opt;
pub use hfqo_query as query;
pub use hfqo_rejoin as rejoin;
pub use hfqo_rl as rl;
pub use hfqo_serve as serve;
pub use hfqo_sql as sql;
pub use hfqo_stats as stats;
pub use hfqo_storage as storage;
pub use hfqo_workload as workload;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use hfqo_catalog::{Catalog, Column, ColumnType, IndexKind, TableSchema};
    pub use hfqo_cost::{CostModel, CostParams, LatencyModel, RewardScaler};
    pub use hfqo_exec::{execute, ExecConfig, TrueCardinality};
    pub use hfqo_opt::{
        random_plan, GreedyPlanner, Planner, PlannerContext, PlannerMethod, RandomPlanner,
        TraditionalOptimizer, TraditionalPlanner,
    };
    pub use hfqo_query::{
        bind_select, fingerprint, template_fingerprint, Forest, JoinTree, ParamVector,
        PhysicalPlan, PlanNode, QueryFingerprint, QueryGraph, RelSet, TemplateFingerprint,
    };
    pub use hfqo_rejoin::{
        cost_bootstrap, evaluate_per_query, learn_from_demonstration, train, train_parallel,
        BootstrapConfig, Curriculum, DemonstrationConfig, EnvContext, Featurizer, FullPlanEnv,
        JoinOrderEnv, LearnedPlanner, ParallelTrainer, PolicyKind, QueryOrder, ReJoinAgent,
        RewardMode, StageSet, TrainerConfig, TrainingLog,
    };
    pub use hfqo_rl::Environment;
    pub use hfqo_serve::{
        CacheConfig, CacheMetrics, CacheOutcome, Experience, ExperienceLog, HotSwapPlanner,
        OnlineConfig, OnlineTrainer, PlanKey, PlannerHandle, QuerySession, ServeError, ServedQuery,
    };
    pub use hfqo_sql::parse_select;
    pub use hfqo_stats::{build_database_stats, CardinalitySource, EstimatedCardinality};
    pub use hfqo_stats::{param_selectivities, selection_selectivities};
    pub use hfqo_storage::{Database, Value};
    pub use hfqo_workload::imdb::ImdbConfig;
    pub use hfqo_workload::{
        apply_mutation, shock_battery_for, synth_shock_battery, with_count_root, DbSnapshots,
        DriftConfig, DriftHarness, DriftOutcome, DriftScenario, Mutation, MutationOp,
        RecoveryReport, Shock, ShockKind, WorkloadBundle,
    };
}
