//! Incremental learning (§5.3): growing the task instead of starting
//! with everything.
//!
//! Shows the three decompositions of Figure 7 as executable curricula
//! over the full-plan environment, one hybrid walk in detail.
//!
//! ```sh
//! cargo run --release --example incremental_curriculum
//! ```

use hfqo::prelude::*;
use hfqo::rejoin::incremental::admitted_queries;
use hfqo::workload::synth::SynthConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Synthetic workload with 2–6-relation queries: real suites lack the
    // small queries the relations curriculum needs (§5.3.2 notes TPC-H
    // has two single-relation templates and JOB none).
    let sizes: Vec<usize> = (2..=6).collect();
    let bundle = WorkloadBundle::synthetic(
        SynthConfig {
            tables: 6,
            rows: 800,
            seed: 2,
        },
        &sizes,
        4,
    );
    println!(
        "workload: {} queries over 2–6 relations\n",
        bundle.queries.len()
    );

    for curriculum in [
        Curriculum::Pipeline,
        Curriculum::Relations,
        Curriculum::Hybrid,
    ] {
        let phases = curriculum.phases(bundle.max_rels(), 1200);
        println!("{curriculum:?} curriculum — {} phases:", phases.len());
        for (i, p) in phases.iter().enumerate() {
            println!(
                "  phase {}: stages={} rels≤{} episodes={}",
                i + 1,
                p.stages.enabled_count(),
                p.max_rels.map_or("all".to_string(), |m| m.to_string()),
                p.episodes
            );
        }
    }

    // Walk the hybrid curriculum with one agent.
    println!("\ntraining the Hybrid curriculum …");
    let mut rng = StdRng::seed_from_u64(1);
    let max_rels = bundle.max_rels();
    let probe = FullPlanEnv::new(
        EnvContext::new(&bundle.db, &bundle.stats),
        &bundle.queries,
        max_rels,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
        StageSet::full(),
    );
    let mut agent = ReJoinAgent::new(
        probe.state_dim(),
        probe.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    drop(probe);
    for (i, phase) in Curriculum::Hybrid
        .phases(max_rels, 1200)
        .into_iter()
        .enumerate()
    {
        let admitted = admitted_queries(&bundle.queries, phase.max_rels);
        if admitted.is_empty() || phase.episodes == 0 {
            continue;
        }
        let phase_queries: Vec<QueryGraph> = admitted
            .iter()
            .map(|&qi| bundle.queries[qi].clone())
            .collect();
        let mut env = FullPlanEnv::new(
            EnvContext::new(&bundle.db, &bundle.stats),
            &phase_queries,
            max_rels,
            QueryOrder::Shuffle,
            RewardMode::LogRelative,
            phase.stages,
        );
        let log = train(
            &mut env,
            &mut agent,
            TrainerConfig::new(phase.episodes),
            &mut rng,
        );
        println!(
            "  phase {}: {} queries, {} stages → ratio {:.2}x",
            i + 1,
            phase_queries.len(),
            phase.stages.enabled_count(),
            log.final_geo_ratio(50).unwrap_or(f64::NAN),
        );
    }

    // Final evaluation on the complete task.
    let mut eval_env = FullPlanEnv::new(
        EnvContext::new(&bundle.db, &bundle.stats),
        &bundle.queries,
        max_rels,
        QueryOrder::Cycle,
        RewardMode::LogRelative,
        StageSet::full(),
    );
    let records = evaluate_per_query(&mut eval_env, &agent, QueryOrder::Cycle, &mut rng);
    let geo = (records
        .iter()
        .map(|r| r.cost_ratio().max(1e-12).ln())
        .sum::<f64>()
        / records.len().max(1) as f64)
        .exp();
    println!("\nfull task (all queries, all pipeline stages): geometric mean ratio {geo:.2}x");
    println!(
        "run `cargo run -p hfqo-bench --release --bin exp_incremental` for the 4-way comparison"
    );
}
