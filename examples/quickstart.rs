//! Quickstart: build a database, parse SQL, plan it two ways, execute.
//!
//! Walks the paper's Figure 2 example end to end: four relations, a
//! ReJOIN episode choosing `[1,3]`, `[2,3]`, `[1,2]` (0-based `(0,2)`,
//! `(0,1)`, `(0,1)`), the traditional optimizer completing the ordering
//! into a physical plan, and the executor running it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hfqo::prelude::*;
use hfqo::query::display::explain;
use hfqo::rejoin::planfix::plan_from_tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A small IMDB-like database (17 tables, skewed and correlated data).
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 1_000,
            seed: 42,
        },
        7,
    );
    let catalog = bundle.db.catalog();

    // Parse and bind a four-relation query, as in Figure 2's
    // `SELECT * FROM A, B, C, D WHERE ...`.
    let sql = "SELECT COUNT(*) \
               FROM title AS t, cast_info AS ci, name AS n, role_type AS rt \
               WHERE t.id = ci.movie_id AND ci.person_id = n.id \
               AND ci.role_id = rt.id AND t.production_year > 60";
    println!("SQL:\n  {sql}\n");
    let stmt = parse_select(sql).expect("valid SQL");
    let graph = bind_select(&stmt, catalog).expect("binds against the catalog");

    // 1. The traditional optimizer (the paper's "expert").
    let expert = TraditionalOptimizer::new(catalog, &bundle.stats);
    let planned = expert.plan(&graph).expect("plannable");
    println!(
        "expert plan (cost {:.1}, {:?}, planned in {:?}):\n{}",
        planned.cost,
        planned.method,
        planned.planning_time,
        explain(&planned.plan.root, &graph)
    );

    // 2. A ReJOIN episode, replaying Figure 2's actions by hand:
    //    merge (A,C), then (B,D), then the two subtrees.
    let mut forest = Forest::initial(4);
    forest.merge(0, 2); // A ⋈ C
    forest.merge(0, 1); // B ⋈ D
    forest.merge(0, 1); // (A ⋈ C) ⋈ (B ⋈ D)
    let tree = forest.into_tree().expect("terminal");
    println!("ReJOIN episode's join ordering: {}", tree.compact());
    let params = CostParams::postgres_like();
    let model = CostModel::new(&params, &bundle.stats);
    let est = EstimatedCardinality::new(&bundle.stats);
    let rejoin_plan = plan_from_tree(&graph, &tree, catalog, &model, &est);
    let rejoin_cost = model.plan_cost(&graph, &rejoin_plan, &est).total;
    println!(
        "completed by the optimizer (cost {:.1}, reward 1/M(t) = {:.2e}):\n{}",
        rejoin_cost,
        1.0 / rejoin_cost,
        explain(&rejoin_plan.root, &graph)
    );

    // 3. Execute both plans: same answer, possibly different work.
    let expert_out = execute(&bundle.db, &graph, &planned.plan, ExecConfig::default())
        .expect("expert plan executes");
    let rejoin_out = execute(&bundle.db, &graph, &rejoin_plan, ExecConfig::default())
        .expect("rejoin plan executes");
    println!(
        "expert:  COUNT(*) = {}   (work {}, {:?})",
        expert_out.rows[0][0], expert_out.stats.work, expert_out.stats.elapsed
    );
    println!(
        "rejoin:  COUNT(*) = {}   (work {}, {:?})",
        rejoin_out.rows[0][0], rejoin_out.stats.work, rejoin_out.stats.elapsed
    );
    assert_eq!(expert_out.rows, rejoin_out.rows, "plans must agree");

    // 4. Let an agent *learn* the ordering instead of hand-replaying it.
    let queries = vec![graph];
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(ctx, &queries, 4, QueryOrder::Cycle, RewardMode::LogRelative);
    let mut rng = StdRng::seed_from_u64(0);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(300), &mut rng);
    println!(
        "\nafter 300 episodes on this query: cost ratio vs expert {:.3} (started at {:.3})",
        log.final_geo_ratio(30).expect("non-empty"),
        log.initial_geo_ratio(30).expect("non-empty"),
    );
}
