//! Quickstart: build a database, walk the paper's Figure 2 episode,
//! train an agent, then serve the query through [`QuerySession`] with
//! the expert *and* the learned planner behind the same [`Planner`]
//! trait.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hfqo::prelude::*;
use hfqo::query::display::explain;
use hfqo::rejoin::planfix::plan_from_tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A small IMDB-like database (17 tables, skewed and correlated data).
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 1_000,
            seed: 42,
        },
        7,
    );
    let catalog = bundle.db.catalog();

    // Parse and bind a four-relation query, as in Figure 2's
    // `SELECT * FROM A, B, C, D WHERE ...`.
    let sql = "SELECT COUNT(*) \
               FROM title AS t, cast_info AS ci, name AS n, role_type AS rt \
               WHERE t.id = ci.movie_id AND ci.person_id = n.id \
               AND ci.role_id = rt.id AND t.production_year > 60";
    println!("SQL:\n  {sql}\n");
    let stmt = parse_select(sql).expect("valid SQL");
    let graph = bind_select(&stmt, catalog).expect("binds against the catalog");

    // 1. A ReJOIN episode, replaying Figure 2's actions by hand:
    //    merge (A,C), then (B,D), then the two subtrees. The traditional
    //    machinery completes the ordering into a physical plan — the
    //    planfix hand-off every learned plan goes through.
    let mut forest = Forest::initial(4);
    forest.merge(0, 2); // A ⋈ C
    forest.merge(0, 1); // B ⋈ D
    forest.merge(0, 1); // (A ⋈ C) ⋈ (B ⋈ D)
    let tree = forest.into_tree().expect("terminal");
    println!("Figure 2 episode's join ordering: {}", tree.compact());
    let params = CostParams::postgres_like();
    let model = CostModel::new(&params, &bundle.stats);
    let est = EstimatedCardinality::new(&bundle.stats);
    let figure2_plan = plan_from_tree(&graph, &tree, catalog, &model, &est);
    let figure2_cost = model.plan_cost(&graph, &figure2_plan, &est).total;
    println!(
        "completed by the optimizer (cost {:.1}, reward 1/M(t) = {:.2e}):\n{}",
        figure2_cost,
        1.0 / figure2_cost,
        explain(&figure2_plan.root, &graph)
    );

    // 2. Let an agent *learn* the ordering instead of hand-replaying it.
    let queries = vec![graph.clone()];
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(ctx, &queries, 4, QueryOrder::Cycle, RewardMode::LogRelative);
    let featurizer = env.featurizer();
    let mut rng = StdRng::seed_from_u64(0);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(300), &mut rng);
    println!(
        "\nafter 300 episodes on this query: cost ratio vs expert {:.3} (started at {:.3})",
        log.final_geo_ratio(30).expect("non-empty"),
        log.initial_geo_ratio(30).expect("non-empty"),
    );

    // 3. Serve the query for real. One session owns the world; the
    //    planning strategy is swappable behind the `Planner` trait.
    let mut session = QuerySession::traditional(bundle.db, bundle.stats);
    let expert = session.serve(sql).expect("expert serves");
    println!(
        "\nexpert plan ({}, cost {:.1}, planned in {:?}):\n{}",
        expert.method,
        expert.cost,
        expert.planning_time,
        explain(&expert.plan.root, &expert.graph)
    );

    // Freeze the trained policy into a planner and swap it in (this
    // invalidates the plan cache — cached plans belonged to the expert).
    // The environment above allowed cross-join pairs, so inference must
    // walk the same action space.
    let learned = LearnedPlanner::freeze(&agent, featurizer).with_require_connected(false);
    session.set_planner(Box::new(learned));
    let served = session.serve(sql).expect("learned planner serves");
    println!(
        "learned plan ({}, cost {:.1}, planned in {:?}):\n{}",
        served.method,
        served.cost,
        served.planning_time,
        explain(&served.plan.root, &served.graph)
    );

    // Same answer either way; the work may differ with the plan.
    println!(
        "expert:  COUNT(*) = {}   (work {}, {:?})",
        expert.outcome.rows[0][0], expert.outcome.stats.work, expert.outcome.stats.elapsed
    );
    println!(
        "learned: COUNT(*) = {}   (work {}, {:?})",
        served.outcome.rows[0][0], served.outcome.stats.work, served.outcome.stats.elapsed
    );
    assert_eq!(expert.outcome.rows, served.outcome.rows, "plans must agree");

    // 4. Repeats hit the plan cache: planning cost becomes a lookup.
    let again = session.serve(sql).expect("serves from cache");
    assert!(again.cache_hit);
    assert_eq!(again.outcome.rows, served.outcome.rows);
    let m = session.cache_metrics();
    println!(
        "\nserved again from the plan cache in {:?} ({} hits / {} misses)",
        again.planning_time, m.hits, m.misses
    );

    // 5. Close the hands-free loop: keep learning from the queries the
    //    session actually executes. The trainer drains the experience
    //    log, rewards on the executor's observed work, and hot-swaps
    //    each retrained policy generation into live serving.
    let trainer_agent = agent; // keep training the same policy online
    let mut trainer = OnlineTrainer::attach(
        &mut session,
        trainer_agent,
        featurizer,
        false, // the training env above allowed cross-join pairs
        OnlineConfig::default().with_swap_every(8),
    );
    for _burst in 0..4 {
        for _ in 0..8 {
            let _ = session.serve(sql).expect("serves under online training");
        }
        let step = trainer.step(&session);
        if step.swapped() {
            println!(
                "online trainer published policy generation {} \
                 (trained on {} served episodes so far)",
                trainer.generation(),
                trainer.metrics().trained
            );
        }
    }
    let online = session.serve(sql).expect("serves the latest generation");
    assert_eq!(
        online.outcome.rows, served.outcome.rows,
        "results never change"
    );
    println!(
        "after online learning (gen {}): cost {:.1}, work {}",
        trainer.generation(),
        online.cost,
        online.outcome.stats.work
    );
}
