//! Train ReJOIN on the JOB-like workload — a miniature Figure 3a.
//!
//! ```sh
//! cargo run --release --example imdb_training
//! # collect episodes on 4 worker threads (same-seed runs reproduce):
//! cargo run --release --example imdb_training -- --workers 4
//! ```
//!
//! The worker count can also come from `HFQO_WORKERS`.

use hfqo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `--workers N` (or `HFQO_WORKERS=N`), defaulting to 1 — the exact
/// sequential trainer.
fn worker_count() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            let v = args.next().expect("--workers requires a value");
            return v.parse().expect("invalid --workers value");
        }
    }
    std::env::var("HFQO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    let episodes = 2_000;
    let window = 100;
    let workers = worker_count();
    println!("building IMDB-like database and 113 JOB-like queries …");
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 1_500,
            seed: 1,
        },
        9,
    );
    // Keep the example fast: train on the small-to-mid-size queries.
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| q.relation_count() <= 8)
        .cloned()
        .collect();
    println!(
        "training on {} queries (4–8 relations) for {episodes} episodes \
         ({workers} worker{}) …",
        queries.len(),
        if workers == 1 { "" } else { "s" }
    );

    let make_env = |_w: usize| {
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        JoinOrderEnv::new(
            ctx,
            &queries,
            8,
            QueryOrder::Shuffle,
            RewardMode::LogRelative,
        )
    };
    let mut env = make_env(0);
    let mut rng = StdRng::seed_from_u64(3);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let trainer = ParallelTrainer::new(TrainerConfig::new(episodes).with_workers(workers));
    let log = trainer.train(make_env, &mut agent, &mut rng);

    println!("\nepisode   plan cost relative to expert (geometric MA {window})");
    for (ep, ratio) in log.moving_geo_ratio(window).iter().step_by(200) {
        let bar_len = ((ratio.min(20.0) / 20.0) * 50.0) as usize;
        println!("{ep:>7}   {:>7.2}x  {}", ratio, "#".repeat(bar_len.max(1)));
    }
    match log.convergence_episode_geo(1.0, window) {
        Some(ep) => println!("\nreached expert parity at episode {ep}"),
        None => println!(
            "\nfinal ratio {:.2}x after {episodes} episodes (longer runs converge further; \
             see `cargo run -p hfqo-bench --release --bin fig3a -- --full`)",
            log.final_geo_ratio(window).expect("non-empty")
        ),
    }

    // Greedy per-query evaluation, Figure 3b style, on a few queries.
    let records = evaluate_per_query(&mut env, &agent, QueryOrder::Shuffle, &mut rng);
    println!("\nper-query greedy evaluation (first 8):");
    println!("query     expert_cost   rejoin_cost   ratio");
    for r in records.iter().take(8) {
        println!(
            "{:<9} {:>11.1} {:>13.1} {:>7.2}",
            r.label.as_deref().unwrap_or("?"),
            r.expert_cost,
            r.agent_cost,
            r.cost_ratio()
        );
    }
}
