//! Train ReJOIN on the JOB-like workload — a miniature Figure 3a.
//!
//! ```sh
//! cargo run --release --example imdb_training
//! ```

use hfqo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let episodes = 2_000;
    let window = 100;
    println!("building IMDB-like database and 113 JOB-like queries …");
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 1_500,
            seed: 1,
        },
        9,
    );
    // Keep the example fast: train on the small-to-mid-size queries.
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| q.relation_count() <= 8)
        .cloned()
        .collect();
    println!(
        "training on {} queries (4–8 relations) for {episodes} episodes …",
        queries.len()
    );

    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        8,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
    );
    let mut rng = StdRng::seed_from_u64(3);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let log = train(&mut env, &mut agent, TrainerConfig::new(episodes), &mut rng);

    println!("\nepisode   plan cost relative to expert (geometric MA {window})");
    for (ep, ratio) in log.moving_geo_ratio(window).iter().step_by(200) {
        let bar_len = ((ratio.min(20.0) / 20.0) * 50.0) as usize;
        println!("{ep:>7}   {:>7.2}x  {}", ratio, "#".repeat(bar_len.max(1)));
    }
    match log.convergence_episode_geo(1.0, window) {
        Some(ep) => println!("\nreached expert parity at episode {ep}"),
        None => println!(
            "\nfinal ratio {:.2}x after {episodes} episodes (longer runs converge further; \
             see `cargo run -p hfqo-bench --release --bin fig3a -- --full`)",
            log.final_geo_ratio(window).expect("non-empty")
        ),
    }

    // Greedy per-query evaluation, Figure 3b style, on a few queries.
    let records = evaluate_per_query(&mut env, &agent, QueryOrder::Shuffle, &mut rng);
    println!("\nper-query greedy evaluation (first 8):");
    println!("query     expert_cost   rejoin_cost   ratio");
    for r in records.iter().take(8) {
        println!(
            "{:<9} {:>11.1} {:>13.1} {:>7.2}",
            r.label.as_deref().unwrap_or("?"),
            r.expert_cost,
            r.agent_cost,
            r.cost_ratio()
        );
    }
}
