//! Learning from demonstration (§5.1): imitate the expert, then
//! fine-tune on latency — without ever executing a catastrophic plan.
//!
//! ```sh
//! cargo run --release --example learning_from_demonstration
//! ```

use hfqo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 800,
            seed: 8,
        },
        21,
    );
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| q.relation_count() <= 7)
        .take(16)
        .cloned()
        .collect();
    println!(
        "learning from demonstration on {} queries (expert: the DP optimizer) …",
        queries.len()
    );

    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        7,
        QueryOrder::Cycle,
        RewardMode::InverseLatency,
    );
    let mut rng = StdRng::seed_from_u64(0);
    let config = DemonstrationConfig {
        pretrain_steps: 800,
        finetune_episodes: 400,
        ..Default::default()
    };
    let outcome = learn_from_demonstration(&mut env, &config, &mut rng);

    let first_loss = outcome
        .pretrain_losses
        .first()
        .copied()
        .unwrap_or(f64::NAN as f32);
    let last_loss = outcome
        .pretrain_losses
        .last()
        .copied()
        .unwrap_or(f64::NAN as f32);
    println!("\nPhase 1 — reward-prediction pretraining on expert histories:");
    println!(
        "  loss {first_loss:.3} → {last_loss:.3} over {} minibatches",
        config.pretrain_steps
    );

    let expert_mean = outcome.expert_latency_ms.iter().sum::<f64>()
        / outcome.expert_latency_ms.len().max(1) as f64;
    println!("\nPhase 2 — fine-tuning by argmin-prediction planning:");
    println!("  episodes           : {}", outcome.log.len());
    println!("  expert mean latency: {expert_mean:.2} ms");
    println!("  worst plan executed: {:.2} ms", outcome.worst_latency_ms);
    println!("  slip re-trainings  : {}", outcome.retrain_events.len());
    println!(
        "  final cost ratio   : {:.2}x",
        outcome.log.final_geo_ratio(50).expect("non-empty")
    );
    println!(
        "\nthe point (§5.1): a tabula-rasa latency learner executes plans thousands of\n\
         times slower than the expert before improving; the demonstration-guided agent's\n\
         worst plan stayed within {:.0}× of the expert mean.",
        outcome.worst_latency_ms / expert_mean
    );
}
