//! End-to-end SQL serving on the TPC-H-like database through
//! [`QuerySession`]: parse → bind → plan (fingerprint-keyed plan cache)
//! → execute, with EXPLAIN output, runtime statistics, and the
//! cache-warm second round showing planning amortised away.
//!
//! ```sh
//! cargo run --release --example execute_sql
//! ```

use hfqo::prelude::*;
use hfqo::query::display::explain;
use hfqo::workload::tpch::{build_tpch, TpchConfig};

fn main() {
    let (db, stats) = build_tpch(TpchConfig {
        lineitem_rows: 20_000,
        seed: 4,
    });
    // One session owns the whole serving world: database, statistics,
    // the traditional DP/greedy planner, and the plan cache.
    let session = QuerySession::traditional(db, stats);

    let queries = [
        "SELECT COUNT(*) FROM lineitem l WHERE l.l_shipdate < 1000 AND l.l_quantity > 45;",
        "SELECT COUNT(*), MIN(o.o_totalprice) FROM customer c, orders o \
         WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 2;",
        "SELECT COUNT(*) FROM customer c, orders o, lineitem l, supplier s, nation n, region r \
         WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
         AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
         AND n.n_regionkey = r.r_regionkey AND o.o_orderdate < 1800;",
    ];

    for sql in queries {
        println!("─────────────────────────────────────────────");
        println!("SQL: {sql}\n");
        let served = session.serve(sql).expect("serves");
        println!(
            "plan ({}, estimated cost {:.1}, planned in {:?}, cache {}):\n{}",
            served.method,
            served.cost,
            served.planning_time,
            if served.cache_hit { "hit" } else { "miss" },
            explain(&served.plan.root, &served.graph)
        );
        // The outcome carries the real output schema — for aggregated
        // queries: group keys followed by aggregate values.
        println!("columns: {}", served.outcome.schema);
        print!("result: ");
        for row in served.outcome.rows.iter().take(3) {
            let cells: Vec<String> = served
                .outcome
                .schema
                .columns
                .iter()
                .zip(row)
                .map(|(c, v)| format!("{} = {v}", c.name()))
                .collect();
            print!("[{}] ", cells.join(", "));
        }
        println!(
            "\nruntime: {} work units in {:?}",
            served.outcome.stats.work, served.outcome.stats.elapsed
        );

        // Cross-check the estimate against the truth.
        let oracle = TrueCardinality::new(session.db());
        let est = EstimatedCardinality::new(session.stats());
        let graph = &served.graph;
        let estimated = est.set_rows(graph, graph.all_rels());
        let true_rows = oracle.set_rows(graph, graph.all_rels());
        println!(
            "cardinality: estimated {estimated:.0} vs true {true_rows:.0} (q-error {:.1})",
            (estimated / true_rows.max(1.0)).max(true_rows / estimated.max(1.0))
        );
    }

    // Serve the workload again: every plan now comes from the cache, so
    // the per-query planning cost is a lookup.
    println!("─────────────────────────────────────────────");
    println!("second round (cache-warm):");
    for sql in queries {
        let served = session.serve(sql).expect("serves");
        assert!(served.cache_hit, "repeated query must hit the plan cache");
        println!(
            "  {} … cache hit, planned in {:?}, {} work units",
            &sql[..40.min(sql.len())],
            served.planning_time,
            served.outcome.stats.work
        );
    }
    let m = session.cache_metrics();
    println!(
        "cache: {} hits / {} misses, {} entries",
        m.hits, m.misses, m.len
    );
}
