//! End-to-end SQL execution on the TPC-H-like database: parse → bind →
//! optimize → execute, with EXPLAIN output and runtime statistics.
//!
//! ```sh
//! cargo run --release --example execute_sql
//! ```

use hfqo::prelude::*;
use hfqo::query::display::explain;
use hfqo::workload::tpch::{build_tpch, TpchConfig};

fn main() {
    let (db, stats) = build_tpch(TpchConfig {
        lineitem_rows: 20_000,
        seed: 4,
    });
    let optimizer = TraditionalOptimizer::new(db.catalog(), &stats);

    let queries = [
        "SELECT COUNT(*) FROM lineitem l WHERE l.l_shipdate < 1000 AND l.l_quantity > 45;",
        "SELECT COUNT(*), MIN(o.o_totalprice) FROM customer c, orders o \
         WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 2;",
        "SELECT COUNT(*) FROM customer c, orders o, lineitem l, supplier s, nation n, region r \
         WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
         AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
         AND n.n_regionkey = r.r_regionkey AND o.o_orderdate < 1800;",
    ];

    for sql in queries {
        println!("─────────────────────────────────────────────");
        println!("SQL: {sql}\n");
        let stmt = parse_select(sql).expect("valid SQL");
        let graph = bind_select(&stmt, db.catalog()).expect("binds");
        let planned = optimizer.plan(&graph).expect("plannable");
        println!(
            "plan ({:?}, estimated cost {:.1}, planned in {:?}):\n{}",
            planned.method,
            planned.cost,
            planned.planning_time,
            explain(&planned.plan.root, &graph)
        );
        let out = execute(&db, &graph, &planned.plan, ExecConfig::default())
            .expect("executes within budget");
        // The outcome carries the real output schema — for aggregated
        // queries: group keys followed by aggregate values.
        println!("columns: {}", out.schema);
        print!("result: ");
        for row in out.rows.iter().take(3) {
            let cells: Vec<String> = out
                .schema
                .columns
                .iter()
                .zip(row)
                .map(|(c, v)| format!("{} = {v}", c.name()))
                .collect();
            print!("[{}] ", cells.join(", "));
        }
        println!(
            "\nruntime: {} work units in {:?}",
            out.stats.work, out.stats.elapsed
        );

        // Cross-check the estimate against the truth.
        let oracle = TrueCardinality::new(&db);
        let est = EstimatedCardinality::new(&stats);
        let estimated = est.set_rows(&graph, graph.all_rels());
        let true_rows = oracle.set_rows(&graph, graph.all_rels());
        println!(
            "cardinality: estimated {estimated:.0} vs true {true_rows:.0} (q-error {:.1})",
            (estimated / true_rows.max(1.0)).max(true_rows / estimated.max(1.0))
        );
    }
}
