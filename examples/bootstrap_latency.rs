//! Cost-model bootstrapping (§5.2): cost-model "training wheels", then
//! fine-tuning on scaled latency.
//!
//! ```sh
//! cargo run --release --example bootstrap_latency
//! ```

use hfqo::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 800,
            seed: 5,
        },
        13,
    );
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| q.relation_count() <= 7)
        .take(20)
        .cloned()
        .collect();
    println!("bootstrapping on {} queries …", queries.len());

    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &queries,
        7,
        QueryOrder::Shuffle,
        RewardMode::NegLogCost,
    );
    let mut rng = StdRng::seed_from_u64(0);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    let config = BootstrapConfig {
        phase1_episodes: 600,
        observe_episodes: 100,
        phase2_episodes: 400,
        scale_rewards: true,
        ..Default::default()
    };
    let outcome = cost_bootstrap(&mut env, &mut agent, &config, &mut rng);

    let (c_min, c_max) = outcome.scaler.cost_range();
    let (l_min, l_max) = outcome.scaler.latency_range();
    println!("\nPhase 1 trained on the cost model (no plan was ever executed).");
    println!("observed near convergence: costs {c_min:.0}..{c_max:.0}, latencies {l_min:.2}..{l_max:.2} ms");
    println!(
        "the paper's r_l scaling maps a {l_max:.1} ms plan to {:.0} — back in cost range",
        outcome.scaler.scale(l_max)
    );

    println!("\nepisode   cost ratio vs expert (geometric MA 50)");
    for (ep, ratio) in outcome.log.moving_geo_ratio(50).iter().step_by(100) {
        let marker = if *ep >= outcome.phase_boundary {
            " <- phase 2 (latency reward)"
        } else {
            ""
        };
        println!("{ep:>7}   {ratio:>7.2}x{marker}");
    }
    println!(
        "\nfinal ratio {:.2}x; phase switch at episode {}",
        outcome.log.final_geo_ratio(50).expect("non-empty"),
        outcome.phase_boundary
    );
    println!("run `cargo run -p hfqo-bench --release --bin exp_bootstrap` for the scaled-vs-raw ablation");
}
