//! The drift harness end to end: shock the data, watch the online loop
//! recover to expert parity — hands-free.
//!
//! Runs the standard scripted scenario ([`DriftScenario::imdb_job`]):
//! JOB-like templates served over the IMDB-like database with online
//! training attached, hit by the full shock battery (append growth,
//! skew shift, a new template arriving mid-run, bulk delete). Every
//! number is deterministic: latencies derive from the executor's work
//! counter, and every mutation is seeded — the printed golden log is
//! the exact content of `tests/golden/drift_recovery_seed41.txt`.
//!
//! ```sh
//! cargo run --release --example drift_recovery
//! ```

use hfqo::prelude::*;

fn main() {
    let scenario = DriftScenario::imdb_job();
    println!(
        "world: IMDB-like database ({} rows), {} JOB-like templates; {} shocks inbound\n",
        scenario.db.total_rows(),
        scenario.queries.len(),
        scenario.shocks.len()
    );

    let outcome = scenario.run();

    let report = |r: &RecoveryReport| {
        println!(
            "{:>14}: expert p95 {:>9.2} ms | rounds {:>2} | serves {:>3} | drift {:>5.2} | {}",
            r.label,
            r.expert_p95_ms,
            r.rounds.len(),
            r.serves,
            r.drift.max_shift(),
            match r.generations_to_parity {
                Some(0) => "parity at the serving generation (shock absorbed)".to_string(),
                Some(g) => format!("parity after {g} swap generation(s)"),
                None => format!("NO parity (last p95 {:.2} ms)", r.final_p95_ms()),
            }
        );
    };
    report(&outcome.warmup);
    for shock in &outcome.shocks {
        report(shock);
    }

    println!("\ngolden log:\n{}", outcome.golden_log());
    assert!(
        outcome.all_parity(),
        "the hands-free loop must recover from every shock"
    );
    println!("all shocks recovered — the loop never needed a human.");
}
