//! Tables, columns, and the catalog container.

use crate::error::CatalogError;
use crate::ids::{ColumnId, ColumnRef, IndexId, TableId};
use crate::index::{IndexDef, IndexKind};

/// Logical type of a column.
///
/// The engine is deliberately small: integers cover keys and dimension
/// attributes, floats cover measures, and strings cover labels. That is
/// enough to express the IMDB-like and TPC-H-like schemas the experiments
/// use while keeping the executor simple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
}

impl ColumnType {
    /// Short lowercase name, as printed by plan explainers.
    pub fn name(self) -> &'static str {
        match self {
            Self::Int => "int",
            Self::Float => "float",
            Self::Text => "text",
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    name: String,
    ty: ColumnType,
    /// Whether NULLs may appear in this column.
    nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
            nullable: true,
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn ty(&self) -> ColumnType {
        self.ty
    }

    /// Whether the column may hold NULLs.
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }
}

/// Schema of a single table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<Column>,
    /// Position of the primary-key column, if any (single-column PKs only).
    primary_key: Option<ColumnId>,
}

impl TableSchema {
    /// Creates a schema with no primary key.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        Self {
            name: name.into(),
            columns,
            primary_key: None,
        }
    }

    /// Declares the column at `pk` as the primary key (builder style).
    pub fn with_primary_key(mut self, pk: ColumnId) -> Self {
        self.primary_key = Some(pk);
        self
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All columns, in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The primary-key column, if declared.
    pub fn primary_key(&self) -> Option<ColumnId> {
        self.primary_key
    }

    /// The column at `id`, if in range.
    pub fn column(&self, id: ColumnId) -> Option<&Column> {
        self.columns.get(id.index())
    }

    /// Finds a column position by name.
    pub fn column_by_name(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColumnId(i as u32))
    }
}

/// The catalog: the set of all tables and indexes known to the system.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    indexes: Vec<IndexDef>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table. Fails if a table with the same name exists.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<TableId, CatalogError> {
        if self.tables.iter().any(|t| t.name() == schema.name()) {
            return Err(CatalogError::DuplicateTable(schema.name().to_string()));
        }
        let id = TableId(self.tables.len() as u32);
        self.tables.push(schema);
        Ok(id)
    }

    /// Registers a single-column index on `table.column`.
    pub fn add_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        column: ColumnId,
        kind: IndexKind,
        unique: bool,
    ) -> Result<IndexId, CatalogError> {
        let name = name.into();
        // Validate the target exists before registering.
        let schema = self.table(table)?;
        if schema.column(column).is_none() {
            return Err(CatalogError::UnknownColumnId {
                table: schema.name().to_string(),
                column: column.0,
            });
        }
        if self.indexes.iter().any(|i| i.name() == name) {
            return Err(CatalogError::DuplicateIndex(name));
        }
        let id = IndexId(self.indexes.len() as u32);
        self.indexes
            .push(IndexDef::new(name, table, column, kind, unique));
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> Result<&TableSchema, CatalogError> {
        self.tables
            .get(id.index())
            .ok_or(CatalogError::UnknownTableId(id.0))
    }

    /// Looks a table up by name.
    pub fn table_by_name(&self, name: &str) -> Result<TableId, CatalogError> {
        self.tables
            .iter()
            .position(|t| t.name() == name)
            .map(|i| TableId(i as u32))
            .ok_or_else(|| CatalogError::UnknownTable(name.to_string()))
    }

    /// Resolves `table`.`column_name` to a column position.
    pub fn resolve_column(
        &self,
        table: TableId,
        column_name: &str,
    ) -> Result<ColumnId, CatalogError> {
        let schema = self.table(table)?;
        schema
            .column_by_name(column_name)
            .ok_or_else(|| CatalogError::UnknownColumn {
                table: schema.name().to_string(),
                column: column_name.to_string(),
            })
    }

    /// The index with the given id.
    pub fn index(&self, id: IndexId) -> Result<&IndexDef, CatalogError> {
        self.indexes
            .get(id.index())
            .ok_or(CatalogError::UnknownIndexId(id.0))
    }

    /// All indexes.
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }

    /// All tables paired with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (TableId(i as u32), t))
    }

    /// All indexes on the given column, if any.
    pub fn indexes_on(&self, col: ColumnRef) -> impl Iterator<Item = (IndexId, &IndexDef)> {
        self.indexes
            .iter()
            .enumerate()
            .filter(move |(_, idx)| idx.table() == col.table && idx.column() == col.column)
            .map(|(i, idx)| (IndexId(i as u32), idx))
    }

    /// Whether any index exists on the given column.
    pub fn has_index_on(&self, col: ColumnRef) -> bool {
        self.indexes_on(col).next().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> (Catalog, TableId) {
        let mut c = Catalog::new();
        let t = c
            .add_table(
                TableSchema::new(
                    "title",
                    vec![
                        Column::new("id", ColumnType::Int),
                        Column::new("kind_id", ColumnType::Int),
                        Column::nullable("production_year", ColumnType::Int),
                        Column::new("title", ColumnType::Text),
                    ],
                )
                .with_primary_key(ColumnId(0)),
            )
            .unwrap();
        (c, t)
    }

    #[test]
    fn add_and_resolve_table() {
        let (c, t) = sample_catalog();
        assert_eq!(c.table_by_name("title").unwrap(), t);
        assert_eq!(c.table(t).unwrap().arity(), 4);
        assert_eq!(c.table(t).unwrap().primary_key(), Some(ColumnId(0)));
    }

    #[test]
    fn duplicate_table_rejected() {
        let (mut c, _) = sample_catalog();
        let err = c.add_table(TableSchema::new("title", vec![])).unwrap_err();
        assert_eq!(err, CatalogError::DuplicateTable("title".into()));
    }

    #[test]
    fn resolve_column_by_name() {
        let (c, t) = sample_catalog();
        let col = c.resolve_column(t, "production_year").unwrap();
        assert_eq!(col, ColumnId(2));
        assert!(c.table(t).unwrap().column(col).unwrap().is_nullable());
        assert!(c.resolve_column(t, "nope").is_err());
    }

    #[test]
    fn index_registration_and_lookup() {
        let (mut c, t) = sample_catalog();
        let col = c.resolve_column(t, "id").unwrap();
        let idx = c
            .add_index("title_pkey", t, col, IndexKind::BTree, true)
            .unwrap();
        assert!(c.has_index_on(ColumnRef::new(t, col)));
        assert!(!c.has_index_on(ColumnRef::new(t, ColumnId(1))));
        assert_eq!(c.index(idx).unwrap().name(), "title_pkey");
        // Duplicate name rejected.
        assert!(c
            .add_index("title_pkey", t, col, IndexKind::Hash, false)
            .is_err());
        // Out-of-range column rejected.
        assert!(c
            .add_index("bad", t, ColumnId(99), IndexKind::BTree, false)
            .is_err());
    }

    #[test]
    fn unknown_ids_error() {
        let (c, _) = sample_catalog();
        assert!(c.table(TableId(42)).is_err());
        assert!(c.index(crate::ids::IndexId(9)).is_err());
        assert!(c.table_by_name("missing").is_err());
    }

    #[test]
    fn tables_iterator_pairs_ids() {
        let (mut c, t0) = sample_catalog();
        let t1 = c
            .add_table(TableSchema::new(
                "name",
                vec![Column::new("id", ColumnType::Int)],
            ))
            .unwrap();
        let ids: Vec<TableId> = c.tables().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![t0, t1]);
    }
}
