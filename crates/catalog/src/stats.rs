//! Lightweight statistics metadata containers.
//!
//! The full statistics machinery (histograms, selectivity estimation) lives
//! in the `hfqo-stats` crate; this module only defines the plain-old-data
//! summaries that both the statistics builder and the cost model agree on.

use crate::schema::{ColumnType, TableSchema};

/// Assumed on-disk page size, matching PostgreSQL's 8 KiB blocks.
pub const PAGE_SIZE_BYTES: f64 = 8192.0;

/// Per-column summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStatsMeta {
    /// Number of distinct non-null values.
    pub ndv: f64,
    /// Minimum value, coerced to `f64` (strings use their length ordering
    /// proxy; see the stats builder).
    pub min: f64,
    /// Maximum value, coerced to `f64`.
    pub max: f64,
    /// Fraction of rows that are NULL in this column, in `[0, 1]`.
    pub null_frac: f64,
}

impl ColumnStatsMeta {
    /// Statistics for a column nothing is known about: one distinct value,
    /// degenerate range, no NULLs. Estimators treat this conservatively.
    pub fn unknown() -> Self {
        Self {
            ndv: 1.0,
            min: 0.0,
            max: 0.0,
            null_frac: 0.0,
        }
    }
}

/// Per-table summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStatsMeta {
    /// Number of rows in the table.
    pub row_count: f64,
    /// Per-column summaries, indexed by column position.
    pub columns: Vec<ColumnStatsMeta>,
    /// Estimated width of one row in bytes.
    pub row_width: f64,
}

impl TableStatsMeta {
    /// Builds empty-table statistics shaped to the given schema.
    pub fn empty_for(schema: &TableSchema) -> Self {
        Self {
            row_count: 0.0,
            columns: vec![ColumnStatsMeta::unknown(); schema.arity()],
            row_width: estimated_row_width(schema),
        }
    }

    /// Number of pages the table occupies at [`PAGE_SIZE_BYTES`].
    ///
    /// Never returns less than 1: even an empty table costs one page to
    /// scan, which keeps the cost model's seq-scan floor positive.
    pub fn pages(&self) -> f64 {
        ((self.row_count * self.row_width) / PAGE_SIZE_BYTES)
            .ceil()
            .max(1.0)
    }
}

/// Estimated width in bytes of one row of the given schema.
///
/// Uses fixed widths per type (text uses a representative average); the cost
/// model only needs relative magnitudes.
pub fn estimated_row_width(schema: &TableSchema) -> f64 {
    schema
        .columns()
        .iter()
        .map(|c| match c.ty() {
            ColumnType::Int => 8.0,
            ColumnType::Float => 8.0,
            ColumnType::Text => 32.0,
        })
        .sum::<f64>()
        .max(8.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Text),
            ],
        )
    }

    #[test]
    fn row_width_by_type() {
        assert_eq!(estimated_row_width(&schema()), 40.0);
        let empty = TableSchema::new("e", vec![]);
        assert_eq!(estimated_row_width(&empty), 8.0);
    }

    #[test]
    fn pages_floor_is_one() {
        let mut s = TableStatsMeta::empty_for(&schema());
        assert_eq!(s.pages(), 1.0);
        s.row_count = 1_000_000.0;
        assert!(s.pages() > 1000.0);
    }

    #[test]
    fn empty_for_shapes_columns() {
        let s = TableStatsMeta::empty_for(&schema());
        assert_eq!(s.columns.len(), 2);
        assert_eq!(s.columns[0], ColumnStatsMeta::unknown());
    }
}
