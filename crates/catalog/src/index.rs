//! Index definitions.

use crate::ids::{ColumnId, TableId};

/// Physical index kind.
///
/// The optimizer's access-path selection distinguishes the two the same way
/// PostgreSQL does: B-trees serve range and equality predicates, hash
/// indexes serve only equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Ordered index supporting equality and range lookups.
    BTree,
    /// Hash index supporting only equality lookups.
    Hash,
}

impl IndexKind {
    /// Short lowercase name, as printed by plan explainers.
    pub fn name(self) -> &'static str {
        match self {
            Self::BTree => "btree",
            Self::Hash => "hash",
        }
    }

    /// Whether the index can serve a range predicate (`<`, `<=`, `>`, `>=`).
    pub fn supports_range(self) -> bool {
        matches!(self, Self::BTree)
    }
}

/// A single-column secondary (or primary) index definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexDef {
    name: String,
    table: TableId,
    column: ColumnId,
    kind: IndexKind,
    unique: bool,
}

impl IndexDef {
    /// Creates an index definition. Prefer
    /// [`Catalog::add_index`](crate::Catalog::add_index), which validates
    /// the target.
    pub fn new(
        name: impl Into<String>,
        table: TableId,
        column: ColumnId,
        kind: IndexKind,
        unique: bool,
    ) -> Self {
        Self {
            name: name.into(),
            table,
            column,
            kind,
            unique,
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Indexed table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Indexed column.
    pub fn column(&self) -> ColumnId {
        self.column
    }

    /// Index kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Whether keys are unique (e.g. a primary key index).
    pub fn is_unique(&self) -> bool {
        self.unique
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_capabilities() {
        assert!(IndexKind::BTree.supports_range());
        assert!(!IndexKind::Hash.supports_range());
        assert_eq!(IndexKind::BTree.name(), "btree");
        assert_eq!(IndexKind::Hash.name(), "hash");
    }

    #[test]
    fn def_accessors() {
        let d = IndexDef::new("idx", TableId(1), ColumnId(2), IndexKind::Hash, true);
        assert_eq!(d.name(), "idx");
        assert_eq!(d.table(), TableId(1));
        assert_eq!(d.column(), ColumnId(2));
        assert_eq!(d.kind(), IndexKind::Hash);
        assert!(d.is_unique());
    }
}
