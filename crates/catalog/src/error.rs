//! Catalog error types.

use std::fmt;

/// Errors raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A table with the given name already exists.
    DuplicateTable(String),
    /// An index with the given name already exists.
    DuplicateIndex(String),
    /// No table with the given name.
    UnknownTable(String),
    /// No table with the given id.
    UnknownTableId(u32),
    /// No column with the given name in the named table.
    UnknownColumn {
        /// Table searched.
        table: String,
        /// Column that was not found.
        column: String,
    },
    /// A column id was out of range for its table.
    UnknownColumnId {
        /// Table searched.
        table: String,
        /// Out-of-range column position.
        column: u32,
    },
    /// No index with the given id.
    UnknownIndexId(u32),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            Self::DuplicateIndex(name) => write!(f, "index `{name}` already exists"),
            Self::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Self::UnknownTableId(id) => write!(f, "unknown table id {id}"),
            Self::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Self::UnknownColumnId { table, column } => {
                write!(
                    f,
                    "column position {column} out of range for table `{table}`"
                )
            }
            Self::UnknownIndexId(id) => write!(f, "unknown index id {id}"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CatalogError::UnknownTable("foo".into()).to_string(),
            "unknown table `foo`"
        );
        assert_eq!(
            CatalogError::UnknownColumn {
                table: "t".into(),
                column: "c".into()
            }
            .to_string(),
            "unknown column `c` in table `t`"
        );
    }
}
