//! Small copyable identifiers used throughout the system.
//!
//! All identifiers are dense indexes into the owning [`Catalog`]'s vectors,
//! so lookups are O(1) and the ids can be used directly as array indexes in
//! hot paths (the cost model and the RL featurizer do exactly that).
//!
//! [`Catalog`]: crate::Catalog

use std::fmt;

/// Identifies a table within a [`Catalog`](crate::Catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

/// Identifies a column *within its table* (position in the table schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

/// Identifies an index within a [`Catalog`](crate::Catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexId(pub u32);

/// A fully-qualified column reference: `(table, column)`.
///
/// This is the currency of predicates, statistics lookups, and index
/// matching. It intentionally refers to *catalog* tables; query-level
/// relation aliases are resolved to these by the binder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Owning table.
    pub table: TableId,
    /// Column position within the table.
    pub column: ColumnId,
}

impl ColumnRef {
    /// Creates a column reference.
    pub fn new(table: TableId, column: ColumnId) -> Self {
        Self { table, column }
    }
}

impl TableId {
    /// The id as a `usize`, for indexing into dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ColumnId {
    /// The id as a `usize`, for indexing into dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl IndexId {
    /// The id as a `usize`, for indexing into dense side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.table, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = TableId(1);
        let b = TableId(2);
        assert!(a < b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(TableId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn column_ref_display() {
        let r = ColumnRef::new(TableId(3), ColumnId(7));
        assert_eq!(r.to_string(), "t3.c7");
        assert_eq!(r.table.index(), 3);
        assert_eq!(r.column.index(), 7);
    }
}
