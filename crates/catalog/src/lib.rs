//! # hfqo-catalog
//!
//! Schema metadata for the hands-free query optimizer: tables, columns,
//! types, indexes, and the containers that hold per-table statistics.
//!
//! The catalog is deliberately independent of the storage layer: it only
//! describes *shape*, never data. Everything downstream (the SQL binder, the
//! cardinality estimator, the cost model, the optimizer, and the RL
//! featurizer) keys off the small, copyable identifiers defined in [`ids`].
//!
//! ```
//! use hfqo_catalog::{Catalog, TableSchema, Column, ColumnType, IndexKind};
//!
//! let mut catalog = Catalog::new();
//! let t = catalog
//!     .add_table(TableSchema::new(
//!         "title",
//!         vec![
//!             Column::new("id", ColumnType::Int),
//!             Column::new("kind_id", ColumnType::Int),
//!             Column::new("production_year", ColumnType::Int),
//!         ],
//!     ))
//!     .unwrap();
//! let col = catalog.resolve_column(t, "id").unwrap();
//! catalog.add_index("title_pkey", t, col, IndexKind::BTree, true).unwrap();
//! assert_eq!(catalog.table(t).unwrap().name(), "title");
//! ```

pub mod error;
pub mod ids;
pub mod index;
pub mod schema;
pub mod stats;

pub use error::CatalogError;
pub use ids::{ColumnId, ColumnRef, IndexId, TableId};
pub use index::{IndexDef, IndexKind};
pub use schema::{Catalog, Column, ColumnType, TableSchema};
pub use stats::{ColumnStatsMeta, TableStatsMeta, PAGE_SIZE_BYTES};
