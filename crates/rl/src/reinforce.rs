//! REINFORCE with a moving-average baseline.

use crate::env::Environment;
use crate::episode::{Episode, Transition};
use crate::rollout::PolicySnapshot;
use hfqo_nn::{loss, Activation, Adam, Matrix, Mlp, MlpGradients, Optimizer};
use rand::rngs::StdRng;

/// Which implementation applies the network update.
///
/// The batched path assembles each update's transitions into one B×F
/// feature matrix and runs a single forward and a single backward per
/// minibatch; the per-row path runs one forward/backward per
/// transition. They are **bit-identical** — the nn matmul kernels
/// accumulate batched gradients in the same row order the per-row path
/// sums them — so `PerRow` survives purely as the verification anchor,
/// the way `execute_rows` anchors the batch executor. Parity is
/// enforced by tests in this crate and by the PR 2 golden training log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdatePath {
    /// One fused forward/backward per minibatch (the production path).
    #[default]
    Batched,
    /// One forward/backward per transition (the reference path).
    PerRow,
}

/// Stacks per-transition feature vectors into one B×F matrix.
pub(crate) fn stack_features<'a, I>(rows: I, len: usize) -> Matrix
where
    I: Iterator<Item = &'a [f32]>,
{
    let mut data: Vec<f32> = Vec::new();
    let mut cols = 0usize;
    for (i, row) in rows.enumerate() {
        if i == 0 {
            cols = row.len();
            data.reserve(len * cols);
        }
        assert_eq!(row.len(), cols, "transition feature widths differ");
        data.extend_from_slice(row);
    }
    Matrix::from_vec(len, cols, data)
}

/// REINFORCE hyperparameters.
#[derive(Debug, Clone)]
pub struct ReinforceConfig {
    /// Hidden layer widths (ReJOIN used two 128-unit layers).
    pub hidden: Vec<usize>,
    /// Discount factor (1.0 suits the short, sparse-reward episodes of
    /// join ordering).
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Entropy bonus coefficient (exploration pressure).
    pub entropy_coef: f32,
    /// EMA decay for the scalar return baseline.
    pub baseline_decay: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Episodes accumulated per policy update.
    pub batch_episodes: usize,
    /// Whether to normalise advantages within each batch.
    pub normalize_advantages: bool,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 128],
            gamma: 1.0,
            lr: 3e-4,
            entropy_coef: 0.01,
            baseline_decay: 0.95,
            grad_clip: 5.0,
            batch_episodes: 8,
            normalize_advantages: true,
        }
    }
}

/// A policy-gradient agent: MLP policy over a masked discrete action
/// space, trained by REINFORCE with an EMA baseline.
pub struct ReinforceAgent {
    policy: Mlp,
    optimizer: Adam,
    config: ReinforceConfig,
    update_path: UpdatePath,
    baseline: f32,
    baseline_ready: bool,
    pending: Vec<Episode>,
    episodes_seen: usize,
    updates: usize,
}

impl ReinforceAgent {
    /// Creates an agent for the given state/action dimensions.
    pub fn new(
        state_dim: usize,
        action_dim: usize,
        config: ReinforceConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut sizes = vec![state_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(action_dim);
        let policy = Mlp::new(&sizes, Activation::ReLU, rng);
        let optimizer = Adam::new(config.lr);
        Self {
            policy,
            optimizer,
            config,
            update_path: UpdatePath::Batched,
            baseline: 0.0,
            baseline_ready: false,
            pending: Vec::new(),
            episodes_seen: 0,
            updates: 0,
        }
    }

    /// The active update implementation.
    pub fn update_path(&self) -> UpdatePath {
        self.update_path
    }

    /// Selects the update implementation (the per-row path is retained
    /// for parity verification and benchmarking; results are
    /// bit-identical).
    pub fn set_update_path(&mut self, path: UpdatePath) {
        self.update_path = path;
    }

    /// The policy network.
    pub fn policy(&self) -> &Mlp {
        &self.policy
    }

    /// Mutable access to the policy network (used when transplanting
    /// weights between training phases).
    pub fn policy_mut(&mut self) -> &mut Mlp {
        &mut self.policy
    }

    /// Episodes observed so far.
    pub fn episodes_seen(&self) -> usize {
        self.episodes_seen
    }

    /// Policy updates applied so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// A frozen, `Send + Sync` copy of the current policy for rollout
    /// workers. The snapshot's action selection consumes the RNG stream
    /// exactly as the live agent does.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot::new(self.policy.clone())
    }

    /// Samples an action (or takes the mode when `greedy`). Returns the
    /// action and its probability under the current policy.
    pub fn select_action(
        &self,
        features: &[f32],
        mask: &[bool],
        rng: &mut StdRng,
        greedy: bool,
    ) -> (usize, f32) {
        PolicySnapshot::select_with(&self.policy, features, mask, rng, greedy)
    }

    /// Rolls out one episode in `env` with the current policy.
    pub fn run_episode<E: Environment>(
        &self,
        env: &mut E,
        rng: &mut StdRng,
        greedy: bool,
    ) -> Episode {
        PolicySnapshot::rollout_with(&self.policy, env, rng, greedy)
    }

    /// Buffers a finished episode; triggers an update every
    /// `batch_episodes`. Returns `true` when an update ran.
    pub fn observe(&mut self, episode: Episode) -> bool {
        self.episodes_seen += 1;
        self.pending.push(episode);
        if self.pending.len() >= self.config.batch_episodes {
            self.update();
            true
        } else {
            false
        }
    }

    /// Applies one REINFORCE update over the buffered episodes.
    pub fn update(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let episodes = std::mem::take(&mut self.pending);
        // Advantages: per-step discounted return minus the EMA baseline.
        let mut all: Vec<(&Transition, f32)> = Vec::new();
        for ep in &episodes {
            let returns = ep.returns(self.config.gamma);
            for (t, g) in ep.transitions.iter().zip(returns) {
                let adv = if self.baseline_ready {
                    g - self.baseline
                } else {
                    g
                };
                all.push((t, adv));
            }
        }
        if self.config.normalize_advantages && all.len() > 1 {
            let mean = all.iter().map(|(_, a)| a).sum::<f32>() / all.len() as f32;
            let var = all
                .iter()
                .map(|(_, a)| (a - mean) * (a - mean))
                .sum::<f32>()
                / all.len() as f32;
            let std = var.sqrt().max(1e-6);
            for (_, a) in &mut all {
                *a = (*a - mean) / std;
            }
        }
        let mut grads = match self.update_path {
            UpdatePath::Batched if !all.is_empty() => {
                Self::policy_grads_batched(&self.policy, &self.config, &all)
            }
            // The per-row loop also covers the degenerate all-empty
            // case (every episode had zero transitions): it yields zero
            // gradients, preserving the historical zero-grad optimizer
            // step instead of panicking on a 0×0 forward.
            _ => Self::policy_grads_per_row(&self.policy, &self.config, &all),
        };
        grads.scale(1.0 / all.len().max(1) as f32);
        grads.clip_global_norm(self.config.grad_clip);
        self.optimizer.step(&mut self.policy, &grads);
        self.updates += 1;
        // Refresh the baseline from the observed undiscounted returns.
        for ep in &episodes {
            let g0 = ep
                .returns(self.config.gamma)
                .first()
                .copied()
                .unwrap_or(0.0);
            if self.baseline_ready {
                self.baseline = self.config.baseline_decay * self.baseline
                    + (1.0 - self.config.baseline_decay) * g0;
            } else {
                self.baseline = g0;
                self.baseline_ready = true;
            }
        }
    }

    /// One supervised (cross-entropy) imitation step over demonstration
    /// tuples `(features, mask, expert_action)`. Returns the mean loss.
    /// This is the Phase-1 mechanism of learning from demonstration.
    pub fn imitate_step(&mut self, batch: &[(Vec<f32>, Vec<bool>, usize)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let (total_loss, mut grads) = match self.update_path {
            UpdatePath::Batched => {
                let x = stack_features(batch.iter().map(|(f, _, _)| f.as_slice()), batch.len());
                let cache = self.policy.forward(&x);
                let masks: Vec<&[bool]> = batch.iter().map(|(_, m, _)| m.as_slice()).collect();
                let targets: Vec<usize> = batch.iter().map(|(_, _, a)| *a).collect();
                let (l, grad_out) =
                    loss::cross_entropy_grad_batch(cache.output(), &masks, &targets);
                (l, self.policy.backward(&cache, grad_out))
            }
            UpdatePath::PerRow => {
                let mut grads = MlpGradients::zeros_like(&self.policy);
                let mut total_loss = 0.0f32;
                for (features, mask, action) in batch {
                    let x = Matrix::row_vector(features.clone());
                    let cache = self.policy.forward(&x);
                    let (l, grad_row) =
                        loss::cross_entropy_grad(cache.output().row(0), mask, *action);
                    total_loss += l;
                    let g = self.policy.backward(&cache, Matrix::row_vector(grad_row));
                    grads.add(&g);
                }
                (total_loss, grads)
            }
        };
        grads.scale(1.0 / batch.len() as f32);
        grads.clip_global_norm(self.config.grad_clip);
        self.optimizer.step(&mut self.policy, &grads);
        total_loss / batch.len() as f32
    }

    /// REINFORCE gradients over a prepared `(transition, advantage)`
    /// batch via one fused forward/backward (the production path).
    fn policy_grads_batched(
        policy: &Mlp,
        config: &ReinforceConfig,
        all: &[(&Transition, f32)],
    ) -> MlpGradients {
        let x = stack_features(all.iter().map(|(t, _)| t.features.as_slice()), all.len());
        let cache = policy.forward(&x);
        let logits = cache.output();
        let masks: Vec<&[bool]> = all.iter().map(|(t, _)| t.mask.as_slice()).collect();
        let grad_out = if config.entropy_coef > 0.0 {
            // One shared softmax per batch feeds both the policy
            // gradient and the entropy bonus (the PPO epoch path uses
            // the same pattern).
            let probs = loss::masked_softmax_batch(logits, &masks);
            let cols = logits.cols();
            let mut grad_out = Matrix::zeros(all.len(), cols);
            for (r, (t, adv)) in all.iter().enumerate() {
                let mut grad_row =
                    loss::policy_gradient_from_probs(probs.row(r), &t.mask, t.action, *adv);
                add_entropy_grad(&mut grad_row, probs.row(r), &t.mask, config.entropy_coef);
                grad_out.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(&grad_row);
            }
            grad_out
        } else {
            let actions: Vec<usize> = all.iter().map(|(t, _)| t.action).collect();
            let advantages: Vec<f32> = all.iter().map(|(_, adv)| *adv).collect();
            loss::policy_gradient_batch(logits, &masks, &actions, &advantages)
        };
        policy.backward(&cache, grad_out)
    }

    /// The per-transition reference implementation: one forward and one
    /// backward per row, gradients accumulated in transition order.
    /// Retained (like the row executor) as the parity anchor the
    /// batched path is verified against.
    fn policy_grads_per_row(
        policy: &Mlp,
        config: &ReinforceConfig,
        all: &[(&Transition, f32)],
    ) -> MlpGradients {
        let mut grads = MlpGradients::zeros_like(policy);
        for (t, adv) in all {
            let x = Matrix::row_vector(t.features.clone());
            let cache = policy.forward(&x);
            let logits = cache.output().row(0);
            let mut grad_row = loss::policy_gradient(logits, &t.mask, t.action, *adv);
            if config.entropy_coef > 0.0 {
                let probs = loss::masked_softmax(logits, &t.mask);
                add_entropy_grad(&mut grad_row, &probs, &t.mask, config.entropy_coef);
            }
            let g = policy.backward(&cache, Matrix::row_vector(grad_row));
            grads.add(&g);
        }
        grads
    }
}

/// Adds the gradient of `−entropy_coef · H(π)` w.r.t. the logits to a
/// policy-gradient row (exploration pressure). Shared by both update
/// paths so they cannot drift.
fn add_entropy_grad(grad_row: &mut [f32], probs: &[f32], mask: &[bool], entropy_coef: f32) {
    let h = loss::entropy(probs);
    for (j, g) in grad_row.iter_mut().enumerate() {
        if mask[j] && probs[j] > 0.0 {
            *g += entropy_coef * probs[j] * (probs[j].ln() + h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::toy::{Bandit, Corridor};
    use rand::SeedableRng;

    fn small_config() -> ReinforceConfig {
        ReinforceConfig {
            hidden: vec![16],
            lr: 0.02,
            entropy_coef: 0.005,
            batch_episodes: 8,
            ..Default::default()
        }
    }

    #[test]
    fn learns_best_bandit_arm() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut env = Bandit::new(vec![0.1, 0.9, 0.3]);
        let mut agent = ReinforceAgent::new(1, 3, small_config(), &mut rng);
        for _ in 0..600 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        let (action, p) = agent.select_action(&[1.0], &[true; 3], &mut rng, true);
        assert_eq!(action, 1, "agent picked arm {action} with prob {p}");
        assert!(p > 0.5, "confidence too low: {p}");
        assert!(agent.updates() > 0);
        assert_eq!(agent.episodes_seen(), 600);
    }

    #[test]
    fn learns_corridor_with_multi_step_credit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut env = Corridor::new(4);
        let config = ReinforceConfig {
            gamma: 0.95,
            ..small_config()
        };
        let mut agent = ReinforceAgent::new(5, 2, config, &mut rng);
        for _ in 0..400 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        // Greedy rollout should walk straight to the goal.
        let ep = agent.run_episode(&mut env, &mut rng, true);
        assert_eq!(ep.len(), 4, "greedy path length {}", ep.len());
        assert!(ep.total_reward() > 0.9);
    }

    #[test]
    fn respects_action_masks() {
        let mut rng = StdRng::seed_from_u64(2);
        let agent = ReinforceAgent::new(2, 4, small_config(), &mut rng);
        let mask = vec![false, true, false, false];
        for _ in 0..20 {
            let (a, p) = agent.select_action(&[0.5, -0.5], &mask, &mut rng, false);
            assert_eq!(a, 1);
            assert!((p - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn imitation_converges_to_expert_action() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut agent = ReinforceAgent::new(2, 3, small_config(), &mut rng);
        // Expert: state [1,0] → action 0; state [0,1] → action 2.
        let batch = vec![
            (vec![1.0, 0.0], vec![true; 3], 0usize),
            (vec![0.0, 1.0], vec![true; 3], 2usize),
        ];
        let first_loss = agent.imitate_step(&batch);
        for _ in 0..200 {
            agent.imitate_step(&batch);
        }
        let last_loss = agent.imitate_step(&batch);
        assert!(last_loss < first_loss * 0.2, "{first_loss} → {last_loss}");
        let (a, _) = agent.select_action(&[1.0, 0.0], &[true; 3], &mut rng, true);
        assert_eq!(a, 0);
        let (a, _) = agent.select_action(&[0.0, 1.0], &[true; 3], &mut rng, true);
        assert_eq!(a, 2);
    }

    /// The tentpole parity contract: the batched update path (one B×F
    /// forward + one backward per minibatch) must be **bit-identical**
    /// to the per-row reference — same forward logits, same gradients,
    /// same optimizer step — on random rollouts, so that switching the
    /// production path to batched changes nothing but wall-clock.
    #[test]
    fn batched_update_is_bit_identical_to_per_row() {
        let config = ReinforceConfig {
            hidden: vec![16, 8],
            lr: 0.01,
            entropy_coef: 0.01,
            batch_episodes: 6,
            ..Default::default()
        };
        let mut env = Corridor::new(5);
        for seed in 0..3u64 {
            let mut init_rng = StdRng::seed_from_u64(seed);
            let mut batched = ReinforceAgent::new(6, 2, config.clone(), &mut init_rng);
            let mut init_rng = StdRng::seed_from_u64(seed);
            let mut per_row = ReinforceAgent::new(6, 2, config.clone(), &mut init_rng);
            per_row.set_update_path(UpdatePath::PerRow);
            assert_eq!(batched.policy(), per_row.policy(), "identical init");

            let mut rng_a = StdRng::seed_from_u64(100 + seed);
            let mut rng_b = StdRng::seed_from_u64(100 + seed);
            let mut updates = 0;
            for _ in 0..24 {
                let ea = batched.run_episode(&mut env, &mut rng_a, false);
                let eb = per_row.run_episode(&mut env, &mut rng_b, false);
                let ua = batched.observe(ea);
                let ub = per_row.observe(eb);
                assert_eq!(ua, ub);
                updates += usize::from(ua);
                assert_eq!(
                    batched.policy(),
                    per_row.policy(),
                    "seed {seed}: policies diverged after {} episodes",
                    batched.episodes_seen()
                );
            }
            assert!(updates >= 4, "parity test must exercise real updates");
        }
    }

    /// Same contract for the supervised imitation step: identical mean
    /// loss and identical post-step weights.
    #[test]
    fn batched_imitation_is_bit_identical_to_per_row() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut batched = ReinforceAgent::new(3, 4, small_config(), &mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let mut per_row = ReinforceAgent::new(3, 4, small_config(), &mut rng);
        per_row.set_update_path(UpdatePath::PerRow);
        let batch = vec![
            (vec![1.0, 0.2, -0.3], vec![true, true, false, true], 0usize),
            (vec![0.0, 1.0, 0.5], vec![true; 4], 2usize),
            (vec![-0.5, 0.1, 0.9], vec![false, true, true, true], 3usize),
        ];
        for step in 0..50 {
            let la = batched.imitate_step(&batch);
            let lb = per_row.imitate_step(&batch);
            assert_eq!(la, lb, "losses diverged at step {step}");
            assert_eq!(
                batched.policy(),
                per_row.policy(),
                "weights diverged at step {step}"
            );
        }
    }

    /// Regression: an update whose episodes carry zero transitions
    /// (possible when an environment terminates before the first step)
    /// must not panic on a 0×0 batched forward; both paths apply the
    /// historical zero-gradient optimizer step and stay bit-identical.
    #[test]
    fn empty_transition_update_stays_bit_identical() {
        for path in [UpdatePath::Batched, UpdatePath::PerRow] {
            let mut rng = StdRng::seed_from_u64(6);
            let mut agent = ReinforceAgent::new(1, 2, small_config(), &mut rng);
            agent.set_update_path(path);
            let before = agent.policy().clone();
            for _ in 0..agent.config.batch_episodes {
                agent.observe(Episode::new());
            }
            assert_eq!(agent.updates(), 1, "{path:?}: update must have run");
            // Zero gradients with fresh Adam state move nothing.
            assert_eq!(&before, agent.policy(), "{path:?}");
        }
    }

    #[test]
    fn update_with_no_pending_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut agent = ReinforceAgent::new(1, 2, small_config(), &mut rng);
        let before = agent.policy().clone();
        agent.update();
        assert_eq!(&before, agent.policy());
    }
}
