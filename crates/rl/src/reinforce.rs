//! REINFORCE with a moving-average baseline.

use crate::env::Environment;
use crate::episode::{Episode, Transition};
use crate::rollout::PolicySnapshot;
use hfqo_nn::{loss, Activation, Adam, Matrix, Mlp, MlpGradients, Optimizer};
use rand::rngs::StdRng;

/// REINFORCE hyperparameters.
#[derive(Debug, Clone)]
pub struct ReinforceConfig {
    /// Hidden layer widths (ReJOIN used two 128-unit layers).
    pub hidden: Vec<usize>,
    /// Discount factor (1.0 suits the short, sparse-reward episodes of
    /// join ordering).
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Entropy bonus coefficient (exploration pressure).
    pub entropy_coef: f32,
    /// EMA decay for the scalar return baseline.
    pub baseline_decay: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Episodes accumulated per policy update.
    pub batch_episodes: usize,
    /// Whether to normalise advantages within each batch.
    pub normalize_advantages: bool,
}

impl Default for ReinforceConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 128],
            gamma: 1.0,
            lr: 3e-4,
            entropy_coef: 0.01,
            baseline_decay: 0.95,
            grad_clip: 5.0,
            batch_episodes: 8,
            normalize_advantages: true,
        }
    }
}

/// A policy-gradient agent: MLP policy over a masked discrete action
/// space, trained by REINFORCE with an EMA baseline.
pub struct ReinforceAgent {
    policy: Mlp,
    optimizer: Adam,
    config: ReinforceConfig,
    baseline: f32,
    baseline_ready: bool,
    pending: Vec<Episode>,
    episodes_seen: usize,
    updates: usize,
}

impl ReinforceAgent {
    /// Creates an agent for the given state/action dimensions.
    pub fn new(
        state_dim: usize,
        action_dim: usize,
        config: ReinforceConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut sizes = vec![state_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(action_dim);
        let policy = Mlp::new(&sizes, Activation::ReLU, rng);
        let optimizer = Adam::new(config.lr);
        Self {
            policy,
            optimizer,
            config,
            baseline: 0.0,
            baseline_ready: false,
            pending: Vec::new(),
            episodes_seen: 0,
            updates: 0,
        }
    }

    /// The policy network.
    pub fn policy(&self) -> &Mlp {
        &self.policy
    }

    /// Mutable access to the policy network (used when transplanting
    /// weights between training phases).
    pub fn policy_mut(&mut self) -> &mut Mlp {
        &mut self.policy
    }

    /// Episodes observed so far.
    pub fn episodes_seen(&self) -> usize {
        self.episodes_seen
    }

    /// Policy updates applied so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// A frozen, `Send + Sync` copy of the current policy for rollout
    /// workers. The snapshot's action selection consumes the RNG stream
    /// exactly as the live agent does.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot::new(self.policy.clone())
    }

    /// Samples an action (or takes the mode when `greedy`). Returns the
    /// action and its probability under the current policy.
    pub fn select_action(
        &self,
        features: &[f32],
        mask: &[bool],
        rng: &mut StdRng,
        greedy: bool,
    ) -> (usize, f32) {
        PolicySnapshot::select_with(&self.policy, features, mask, rng, greedy)
    }

    /// Rolls out one episode in `env` with the current policy.
    pub fn run_episode<E: Environment>(
        &self,
        env: &mut E,
        rng: &mut StdRng,
        greedy: bool,
    ) -> Episode {
        PolicySnapshot::rollout_with(&self.policy, env, rng, greedy)
    }

    /// Buffers a finished episode; triggers an update every
    /// `batch_episodes`. Returns `true` when an update ran.
    pub fn observe(&mut self, episode: Episode) -> bool {
        self.episodes_seen += 1;
        self.pending.push(episode);
        if self.pending.len() >= self.config.batch_episodes {
            self.update();
            true
        } else {
            false
        }
    }

    /// Applies one REINFORCE update over the buffered episodes.
    pub fn update(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let episodes = std::mem::take(&mut self.pending);
        // Advantages: per-step discounted return minus the EMA baseline.
        let mut all: Vec<(&Transition, f32)> = Vec::new();
        for ep in &episodes {
            let returns = ep.returns(self.config.gamma);
            for (t, g) in ep.transitions.iter().zip(returns) {
                let adv = if self.baseline_ready {
                    g - self.baseline
                } else {
                    g
                };
                all.push((t, adv));
            }
        }
        if self.config.normalize_advantages && all.len() > 1 {
            let mean = all.iter().map(|(_, a)| a).sum::<f32>() / all.len() as f32;
            let var = all
                .iter()
                .map(|(_, a)| (a - mean) * (a - mean))
                .sum::<f32>()
                / all.len() as f32;
            let std = var.sqrt().max(1e-6);
            for (_, a) in &mut all {
                *a = (*a - mean) / std;
            }
        }
        let mut grads = MlpGradients::zeros_like(&self.policy);
        for (t, adv) in &all {
            let x = Matrix::row_vector(t.features.clone());
            let cache = self.policy.forward(&x);
            let logits = cache.output().row(0);
            let mut grad_row = loss::policy_gradient(logits, &t.mask, t.action, *adv);
            if self.config.entropy_coef > 0.0 {
                let probs = loss::masked_softmax(logits, &t.mask);
                let h = loss::entropy(&probs);
                for (j, g) in grad_row.iter_mut().enumerate() {
                    if t.mask[j] && probs[j] > 0.0 {
                        // Gradient of −entropy_coef · H w.r.t. logits.
                        *g += self.config.entropy_coef * probs[j] * (probs[j].ln() + h);
                    }
                }
            }
            let g = self.policy.backward(&cache, Matrix::row_vector(grad_row));
            grads.add(&g);
        }
        grads.scale(1.0 / all.len().max(1) as f32);
        grads.clip_global_norm(self.config.grad_clip);
        self.optimizer.step(&mut self.policy, &grads);
        self.updates += 1;
        // Refresh the baseline from the observed undiscounted returns.
        for ep in &episodes {
            let g0 = ep
                .returns(self.config.gamma)
                .first()
                .copied()
                .unwrap_or(0.0);
            if self.baseline_ready {
                self.baseline = self.config.baseline_decay * self.baseline
                    + (1.0 - self.config.baseline_decay) * g0;
            } else {
                self.baseline = g0;
                self.baseline_ready = true;
            }
        }
    }

    /// One supervised (cross-entropy) imitation step over demonstration
    /// tuples `(features, mask, expert_action)`. Returns the mean loss.
    /// This is the Phase-1 mechanism of learning from demonstration.
    pub fn imitate_step(&mut self, batch: &[(Vec<f32>, Vec<bool>, usize)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let mut grads = MlpGradients::zeros_like(&self.policy);
        let mut total_loss = 0.0f32;
        for (features, mask, action) in batch {
            let x = Matrix::row_vector(features.clone());
            let cache = self.policy.forward(&x);
            let (l, grad_row) = loss::cross_entropy_grad(cache.output().row(0), mask, *action);
            total_loss += l;
            let g = self.policy.backward(&cache, Matrix::row_vector(grad_row));
            grads.add(&g);
        }
        grads.scale(1.0 / batch.len() as f32);
        grads.clip_global_norm(self.config.grad_clip);
        self.optimizer.step(&mut self.policy, &grads);
        total_loss / batch.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::toy::{Bandit, Corridor};
    use rand::SeedableRng;

    fn small_config() -> ReinforceConfig {
        ReinforceConfig {
            hidden: vec![16],
            lr: 0.02,
            entropy_coef: 0.005,
            batch_episodes: 8,
            ..Default::default()
        }
    }

    #[test]
    fn learns_best_bandit_arm() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut env = Bandit::new(vec![0.1, 0.9, 0.3]);
        let mut agent = ReinforceAgent::new(1, 3, small_config(), &mut rng);
        for _ in 0..600 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        let (action, p) = agent.select_action(&[1.0], &[true; 3], &mut rng, true);
        assert_eq!(action, 1, "agent picked arm {action} with prob {p}");
        assert!(p > 0.5, "confidence too low: {p}");
        assert!(agent.updates() > 0);
        assert_eq!(agent.episodes_seen(), 600);
    }

    #[test]
    fn learns_corridor_with_multi_step_credit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut env = Corridor::new(4);
        let config = ReinforceConfig {
            gamma: 0.95,
            ..small_config()
        };
        let mut agent = ReinforceAgent::new(5, 2, config, &mut rng);
        for _ in 0..400 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        // Greedy rollout should walk straight to the goal.
        let ep = agent.run_episode(&mut env, &mut rng, true);
        assert_eq!(ep.len(), 4, "greedy path length {}", ep.len());
        assert!(ep.total_reward() > 0.9);
    }

    #[test]
    fn respects_action_masks() {
        let mut rng = StdRng::seed_from_u64(2);
        let agent = ReinforceAgent::new(2, 4, small_config(), &mut rng);
        let mask = vec![false, true, false, false];
        for _ in 0..20 {
            let (a, p) = agent.select_action(&[0.5, -0.5], &mask, &mut rng, false);
            assert_eq!(a, 1);
            assert!((p - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn imitation_converges_to_expert_action() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut agent = ReinforceAgent::new(2, 3, small_config(), &mut rng);
        // Expert: state [1,0] → action 0; state [0,1] → action 2.
        let batch = vec![
            (vec![1.0, 0.0], vec![true; 3], 0usize),
            (vec![0.0, 1.0], vec![true; 3], 2usize),
        ];
        let first_loss = agent.imitate_step(&batch);
        for _ in 0..200 {
            agent.imitate_step(&batch);
        }
        let last_loss = agent.imitate_step(&batch);
        assert!(last_loss < first_loss * 0.2, "{first_loss} → {last_loss}");
        let (a, _) = agent.select_action(&[1.0, 0.0], &[true; 3], &mut rng, true);
        assert_eq!(a, 0);
        let (a, _) = agent.select_action(&[0.0, 1.0], &[true; 3], &mut rng, true);
        assert_eq!(a, 2);
    }

    #[test]
    fn update_with_no_pending_is_noop() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut agent = ReinforceAgent::new(1, 2, small_config(), &mut rng);
        let before = agent.policy().clone();
        agent.update();
        assert_eq!(&before, agent.policy());
    }
}
