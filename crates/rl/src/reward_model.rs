//! The reward-prediction function for learning from demonstration.
//!
//! §5.1's recipe: train a network to predict, for each `(state, action)`
//! pair in an expert history, the eventual episode quality (the paper uses
//! query latency `L_q`). At plan time the agent runs every valid action
//! through this function and picks the one predicted to be cheapest, with
//! a small ε-probability of exploring another valid action.

use hfqo_nn::{loss, Activation, Adam, Matrix, Mlp, Optimizer};
use rand::rngs::StdRng;
use rand::Rng;

/// Reward-model hyperparameters.
#[derive(Debug, Clone)]
pub struct RewardModelConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Global gradient clip.
    pub grad_clip: f32,
}

impl Default for RewardModelConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 64],
            lr: 1e-3,
            grad_clip: 5.0,
        }
    }
}

/// Predicts the episode outcome (e.g. latency) of taking `action` in a
/// state. Input is the state features concatenated with a one-hot action
/// encoding; output is a scalar.
pub struct RewardModel {
    net: Mlp,
    optimizer: Adam,
    state_dim: usize,
    action_dim: usize,
    grad_clip: f32,
}

impl RewardModel {
    /// Creates a model for the given dimensions.
    pub fn new(
        state_dim: usize,
        action_dim: usize,
        config: RewardModelConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut sizes = vec![state_dim + action_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(1);
        Self {
            net: Mlp::new(&sizes, Activation::ReLU, rng),
            optimizer: Adam::new(config.lr),
            state_dim,
            action_dim,
            grad_clip: config.grad_clip,
        }
    }

    /// State feature width.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Action count.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    fn encode(&self, features: &[f32], action: usize) -> Vec<f32> {
        debug_assert_eq!(features.len(), self.state_dim);
        debug_assert!(action < self.action_dim);
        let mut row = Vec::with_capacity(self.state_dim + self.action_dim);
        row.extend_from_slice(features);
        row.resize(self.state_dim + self.action_dim, 0.0);
        row[self.state_dim + action] = 1.0;
        row
    }

    /// Predicted outcome of `(state, action)`.
    pub fn predict(&self, features: &[f32], action: usize) -> f32 {
        let x = Matrix::row_vector(self.encode(features, action));
        self.net.predict(&x).get(0, 0)
    }

    /// Predicted outcome for every action; invalid actions get `+∞` so a
    /// minimum search never picks them.
    pub fn predict_all(&self, features: &[f32], mask: &[bool]) -> Vec<f32> {
        debug_assert_eq!(mask.len(), self.action_dim);
        // Batch all valid actions in one forward pass.
        let valid: Vec<usize> = (0..self.action_dim).filter(|&a| mask[a]).collect();
        let mut out = vec![f32::INFINITY; self.action_dim];
        if valid.is_empty() {
            return out;
        }
        let mut data = Vec::with_capacity(valid.len() * (self.state_dim + self.action_dim));
        for &a in &valid {
            data.extend_from_slice(&self.encode(features, a));
        }
        let x = Matrix::from_vec(valid.len(), self.state_dim + self.action_dim, data);
        let preds = self.net.predict(&x);
        for (i, &a) in valid.iter().enumerate() {
            out[a] = preds.get(i, 0);
        }
        out
    }

    /// ε-greedy minimum-prediction action selection.
    pub fn select_min(
        &self,
        features: &[f32],
        mask: &[bool],
        epsilon: f32,
        rng: &mut StdRng,
    ) -> usize {
        let valid: Vec<usize> = (0..self.action_dim).filter(|&a| mask[a]).collect();
        assert!(!valid.is_empty(), "no valid actions");
        if epsilon > 0.0 && rng.gen::<f32>() < epsilon {
            return valid[rng.gen_range(0..valid.len())];
        }
        let preds = self.predict_all(features, mask);
        valid
            .into_iter()
            .min_by(|&a, &b| {
                preds[a]
                    .partial_cmp(&preds[b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty valid set")
    }

    /// One MSE training step over `(features, action, target)` samples;
    /// returns the batch loss.
    ///
    /// This is the batched NN path: the whole minibatch is one B×(S+A)
    /// matrix, one forward, one backward. The nn kernels accumulate
    /// batched gradients in row order, so the step is bit-identical to
    /// accumulating one forward/backward per sample (see the
    /// `batched_training_matches_per_row_reference` parity test).
    pub fn train_batch(&mut self, samples: &[(Vec<f32>, usize, f32)]) -> f32 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut data = Vec::with_capacity(samples.len() * (self.state_dim + self.action_dim));
        let mut targets = Vec::with_capacity(samples.len());
        for (features, action, target) in samples {
            data.extend_from_slice(&self.encode(features, *action));
            targets.push(*target);
        }
        let x = Matrix::from_vec(samples.len(), self.state_dim + self.action_dim, data);
        let cache = self.net.forward(&x);
        let (l, grad) = loss::mse_grad(cache.output(), &targets);
        let mut grads = self.net.backward(&cache, grad);
        grads.clip_global_norm(self.grad_clip);
        self.optimizer.step(&mut self.net, &grads);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn config() -> RewardModelConfig {
        RewardModelConfig {
            hidden: vec![32],
            lr: 0.01,
            grad_clip: 5.0,
        }
    }

    #[test]
    fn learns_action_dependent_rewards() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = RewardModel::new(2, 3, config(), &mut rng);
        // Latency: action 0 → 10, action 1 → 1, action 2 → 5 (state-free).
        let samples: Vec<(Vec<f32>, usize, f32)> = vec![
            (vec![1.0, 0.0], 0, 10.0),
            (vec![1.0, 0.0], 1, 1.0),
            (vec![1.0, 0.0], 2, 5.0),
            (vec![0.0, 1.0], 0, 10.0),
            (vec![0.0, 1.0], 1, 1.0),
            (vec![0.0, 1.0], 2, 5.0),
        ];
        let first = model.train_batch(&samples);
        for _ in 0..500 {
            model.train_batch(&samples);
        }
        let last = model.train_batch(&samples);
        assert!(last < first * 0.05, "{first} → {last}");
        let chosen = model.select_min(&[1.0, 0.0], &[true; 3], 0.0, &mut rng);
        assert_eq!(chosen, 1);
        let preds = model.predict_all(&[1.0, 0.0], &[true; 3]);
        assert!(preds[1] < preds[2] && preds[2] < preds[0], "{preds:?}");
    }

    #[test]
    fn masked_actions_never_chosen() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = RewardModel::new(1, 4, config(), &mut rng);
        let mask = [false, false, true, false];
        for eps in [0.0, 0.5, 1.0] {
            for _ in 0..10 {
                assert_eq!(model.select_min(&[1.0], &mask, eps, &mut rng), 2);
            }
        }
        let preds = model.predict_all(&[1.0], &mask);
        assert!(preds[0].is_infinite() && preds[2].is_finite());
    }

    #[test]
    fn epsilon_explores() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = RewardModel::new(1, 2, config(), &mut rng);
        // Make action 0 clearly the minimum.
        for _ in 0..300 {
            model.train_batch(&[(vec![1.0], 0, 0.0), (vec![1.0], 1, 10.0)]);
        }
        let greedy: Vec<usize> = (0..50)
            .map(|_| model.select_min(&[1.0], &[true, true], 0.0, &mut rng))
            .collect();
        assert!(greedy.iter().all(|&a| a == 0));
        let explored: Vec<usize> = (0..100)
            .map(|_| model.select_min(&[1.0], &[true, true], 1.0, &mut rng))
            .collect();
        assert!(explored.contains(&1), "ε=1 never explored");
    }

    /// Parity anchor for the reward model's batched training step: one
    /// fused forward/backward over the B×(S+A) matrix must be
    /// bit-identical — loss, gradients, and the Adam step — to running
    /// one forward/backward per sample and accumulating the per-row MSE
    /// gradients in sample order.
    #[test]
    fn batched_training_matches_per_row_reference() {
        use hfqo_nn::MlpGradients;

        let mut rng = StdRng::seed_from_u64(5);
        let mut model = RewardModel::new(2, 3, config(), &mut rng);
        let mut reference = model.net.clone();
        let mut ref_opt = Adam::new(model.optimizer.learning_rate());
        let samples: Vec<(Vec<f32>, usize, f32)> = vec![
            (vec![0.3, -0.7], 0, 4.0),
            (vec![1.0, 0.0], 2, 1.5),
            (vec![-0.2, 0.9], 1, 7.0),
            (vec![0.0, 0.0], 0, 2.5),
        ];
        let n = samples.len() as f32;
        for step in 0..25 {
            // Per-row reference: one forward/backward per sample, MSE
            // gradient 2·(pred − target)/n per row, accumulated in
            // sample order.
            let mut grads = MlpGradients::zeros_like(&reference);
            let mut ref_loss = 0.0f32;
            for (features, action, target) in &samples {
                let row = {
                    let mut row = features.clone();
                    row.resize(2 + 3, 0.0);
                    row[2 + action] = 1.0;
                    row
                };
                let cache = reference.forward(&Matrix::row_vector(row));
                let diff = cache.output().get(0, 0) - target;
                ref_loss += diff * diff;
                let g = reference.backward(&cache, Matrix::from_vec(1, 1, vec![2.0 * diff / n]));
                grads.add(&g);
            }
            grads.clip_global_norm(model.grad_clip);
            ref_opt.step(&mut reference, &grads);

            let batch_loss = model.train_batch(&samples);
            assert_eq!(batch_loss, ref_loss / n, "loss diverged at step {step}");
            assert_eq!(&model.net, &reference, "weights diverged at step {step}");
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = RewardModel::new(1, 2, config(), &mut rng);
        assert_eq!(model.train_batch(&[]), 0.0);
        assert_eq!(model.state_dim(), 1);
        assert_eq!(model.action_dim(), 2);
    }
}
