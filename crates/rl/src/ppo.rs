//! A PPO-style clipped-surrogate policy-gradient agent.
//!
//! ReJOIN's published implementation used Proximal Policy Optimization;
//! this is the single-worker variant: batches of episodes are replayed for
//! several epochs with importance ratios clipped to `[1−ε, 1+ε]`, which
//! permits multiple gradient steps per batch without the policy running
//! away — the "smooth policy change" requirement §2 describes.

use crate::env::Environment;
use crate::episode::Episode;
use crate::reinforce::{stack_features, UpdatePath};
use crate::rollout::PolicySnapshot;
use hfqo_nn::{loss, Activation, Adam, Matrix, Mlp, MlpGradients, Optimizer};
use rand::rngs::StdRng;

/// PPO hyperparameters.
#[derive(Debug, Clone)]
pub struct PpoConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Clip range ε.
    pub clip: f32,
    /// Replay epochs per batch.
    pub epochs: usize,
    /// Episodes per batch.
    pub batch_episodes: usize,
    /// EMA decay for the scalar baseline.
    pub baseline_decay: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 128],
            gamma: 1.0,
            lr: 3e-4,
            clip: 0.2,
            epochs: 4,
            batch_episodes: 8,
            baseline_decay: 0.95,
            grad_clip: 5.0,
        }
    }
}

/// The PPO agent.
pub struct PpoAgent {
    policy: Mlp,
    optimizer: Adam,
    config: PpoConfig,
    update_path: UpdatePath,
    baseline: f32,
    baseline_ready: bool,
    pending: Vec<Episode>,
    episodes_seen: usize,
}

impl PpoAgent {
    /// Creates an agent for the given dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: PpoConfig, rng: &mut StdRng) -> Self {
        let mut sizes = vec![state_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(action_dim);
        Self {
            policy: Mlp::new(&sizes, Activation::ReLU, rng),
            optimizer: Adam::new(config.lr),
            config,
            update_path: UpdatePath::Batched,
            baseline: 0.0,
            baseline_ready: false,
            pending: Vec::new(),
            episodes_seen: 0,
        }
    }

    /// The active update implementation.
    pub fn update_path(&self) -> UpdatePath {
        self.update_path
    }

    /// Selects the update implementation (the per-row path is retained
    /// for parity verification and benchmarking; results are
    /// bit-identical).
    pub fn set_update_path(&mut self, path: UpdatePath) {
        self.update_path = path;
    }

    /// The policy network.
    pub fn policy(&self) -> &Mlp {
        &self.policy
    }

    /// Episodes observed.
    pub fn episodes_seen(&self) -> usize {
        self.episodes_seen
    }

    /// A frozen, `Send + Sync` copy of the current policy for rollout
    /// workers.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot::new(self.policy.clone())
    }

    /// Samples an action; returns `(action, probability)`.
    pub fn select_action(
        &self,
        features: &[f32],
        mask: &[bool],
        rng: &mut StdRng,
        greedy: bool,
    ) -> (usize, f32) {
        PolicySnapshot::select_with(&self.policy, features, mask, rng, greedy)
    }

    /// Rolls out one episode.
    pub fn run_episode<E: Environment>(
        &self,
        env: &mut E,
        rng: &mut StdRng,
        greedy: bool,
    ) -> Episode {
        PolicySnapshot::rollout_with(&self.policy, env, rng, greedy)
    }

    /// Buffers an episode; updates when the batch fills. Returns `true`
    /// when an update ran.
    pub fn observe(&mut self, episode: Episode) -> bool {
        self.episodes_seen += 1;
        self.pending.push(episode);
        if self.pending.len() >= self.config.batch_episodes {
            self.update();
            true
        } else {
            false
        }
    }

    /// Clipped-surrogate update over the pending batch.
    pub fn update(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let episodes = std::mem::take(&mut self.pending);
        // Flatten to (features, mask, action, old_prob, advantage).
        let mut steps: Vec<Step<'_>> = Vec::new();
        for ep in &episodes {
            let returns = ep.returns(self.config.gamma);
            for (t, g) in ep.transitions.iter().zip(returns) {
                let adv = if self.baseline_ready {
                    g - self.baseline
                } else {
                    g
                };
                steps.push((&t.features, &t.mask, t.action, t.action_prob.max(1e-8), adv));
            }
        }
        // Normalise advantages.
        if steps.len() > 1 {
            let mean = steps.iter().map(|s| s.4).sum::<f32>() / steps.len() as f32;
            let var = steps
                .iter()
                .map(|s| (s.4 - mean) * (s.4 - mean))
                .sum::<f32>()
                / steps.len() as f32;
            let std = var.sqrt().max(1e-6);
            for s in &mut steps {
                s.4 = (s.4 - mean) / std;
            }
        }
        // The feature matrix is constant across epochs; only the policy
        // (and therefore the cache) changes between optimizer steps.
        // An all-empty step set (every episode had zero transitions)
        // routes through the per-row loop, whose zero gradients
        // preserve the historical zero-grad optimizer steps instead of
        // panicking on a 0×0 forward.
        let x = match self.update_path {
            UpdatePath::Batched if !steps.is_empty() => Some(stack_features(
                steps.iter().map(|s| s.0.as_slice()),
                steps.len(),
            )),
            _ => None,
        };
        for _ in 0..self.config.epochs {
            let mut grads = match &x {
                Some(x) => Self::epoch_grads_batched(&self.policy, &self.config, &steps, x),
                None => Self::epoch_grads_per_row(&self.policy, &self.config, &steps),
            };
            grads.scale(1.0 / steps.len().max(1) as f32);
            grads.clip_global_norm(self.config.grad_clip);
            self.optimizer.step(&mut self.policy, &grads);
        }
        for ep in &episodes {
            let g0 = ep
                .returns(self.config.gamma)
                .first()
                .copied()
                .unwrap_or(0.0);
            if self.baseline_ready {
                self.baseline = self.config.baseline_decay * self.baseline
                    + (1.0 - self.config.baseline_decay) * g0;
            } else {
                self.baseline = g0;
                self.baseline_ready = true;
            }
        }
    }

    /// One epoch's clipped-surrogate gradients via a single fused
    /// forward/backward over the whole step batch. Clipped-out steps
    /// keep an all-zero gradient row, which contributes exactly nothing
    /// to the accumulation — bit-identical to the per-row path skipping
    /// them.
    fn epoch_grads_batched(
        policy: &Mlp,
        config: &PpoConfig,
        steps: &[Step<'_>],
        x: &Matrix,
    ) -> MlpGradients {
        let cache = policy.forward(x);
        let logits = cache.output();
        let masks: Vec<&[bool]> = steps.iter().map(|s| s.1.as_slice()).collect();
        // One softmax per row per epoch, shared by the ratio test and
        // the gradient.
        let all_probs = loss::masked_softmax_batch(logits, &masks);
        let cols = logits.cols();
        let mut grad_out = Matrix::zeros(steps.len(), cols);
        for (r, (_, mask, action, old_prob, adv)) in steps.iter().enumerate() {
            let probs = all_probs.row(r);
            let new_prob = probs[*action].max(1e-8);
            let ratio = new_prob / old_prob;
            // Clipped-objective gradient: zero where the min() selects
            // the clipped (constant) branch.
            let clipped_out = (*adv >= 0.0 && ratio > 1.0 + config.clip)
                || (*adv < 0.0 && ratio < 1.0 - config.clip);
            if clipped_out {
                continue;
            }
            let grad_row = loss::policy_gradient_from_probs(probs, mask, *action, adv * ratio);
            grad_out.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(&grad_row);
        }
        policy.backward(&cache, grad_out)
    }

    /// The per-step reference implementation of one epoch (one
    /// forward/backward per transition), retained as the parity anchor
    /// the batched path is verified against.
    fn epoch_grads_per_row(policy: &Mlp, config: &PpoConfig, steps: &[Step<'_>]) -> MlpGradients {
        let mut grads = MlpGradients::zeros_like(policy);
        for (features, mask, action, old_prob, adv) in steps {
            let x = Matrix::row_vector((*features).clone());
            let cache = policy.forward(&x);
            let probs = loss::masked_softmax(cache.output().row(0), mask);
            let new_prob = probs[*action].max(1e-8);
            let ratio = new_prob / old_prob;
            let clipped_out = (*adv >= 0.0 && ratio > 1.0 + config.clip)
                || (*adv < 0.0 && ratio < 1.0 - config.clip);
            if clipped_out {
                continue;
            }
            let grad_row = loss::policy_gradient(cache.output().row(0), mask, *action, adv * ratio);
            let g = policy.backward(&cache, Matrix::row_vector(grad_row));
            grads.add(&g);
        }
        grads
    }
}

/// One flattened PPO step: `(features, mask, action, old_prob,
/// advantage)`.
type Step<'a> = (&'a Vec<f32>, &'a Vec<bool>, usize, f32, f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::toy::Bandit;
    use rand::SeedableRng;

    #[test]
    fn ppo_learns_bandit() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut env = Bandit::new(vec![0.2, 0.4, 1.0, 0.1]);
        let config = PpoConfig {
            hidden: vec![16],
            lr: 0.02,
            batch_episodes: 8,
            epochs: 3,
            ..Default::default()
        };
        let mut agent = PpoAgent::new(1, 4, config, &mut rng);
        for _ in 0..600 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        let (action, p) = agent.select_action(&[1.0], &[true; 4], &mut rng, true);
        assert_eq!(action, 2, "picked {action} at {p}");
        assert!(agent.episodes_seen() == 600);
    }

    /// The tentpole parity contract for PPO: every replay epoch of the
    /// batched path — including its clipped-out zero rows — must leave
    /// the policy bit-identical to the per-row reference.
    #[test]
    fn batched_ppo_update_is_bit_identical_to_per_row() {
        let config = PpoConfig {
            hidden: vec![12],
            lr: 0.02,
            batch_episodes: 4,
            epochs: 3,
            // A tight clip so some steps genuinely get clipped out and
            // the zero-row path is exercised.
            clip: 0.05,
            ..Default::default()
        };
        let mut env = Bandit::new(vec![0.1, 0.8, 0.4]);
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut batched = PpoAgent::new(1, 3, config.clone(), &mut rng);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut per_row = PpoAgent::new(1, 3, config.clone(), &mut rng);
            per_row.set_update_path(UpdatePath::PerRow);

            let mut rng_a = StdRng::seed_from_u64(40 + seed);
            let mut rng_b = StdRng::seed_from_u64(40 + seed);
            let mut updates = 0;
            for _ in 0..16 {
                let ea = batched.run_episode(&mut env, &mut rng_a, false);
                let eb = per_row.run_episode(&mut env, &mut rng_b, false);
                let ua = batched.observe(ea);
                assert_eq!(ua, per_row.observe(eb));
                updates += usize::from(ua);
                assert_eq!(
                    batched.policy(),
                    per_row.policy(),
                    "seed {seed}: diverged after {} episodes",
                    batched.episodes_seen()
                );
            }
            assert!(updates >= 4);
        }
    }

    /// Regression: zero-transition episodes must not panic the batched
    /// path on a 0×0 forward; the update degrades to the historical
    /// zero-gradient epochs on both paths.
    #[test]
    fn empty_transition_update_does_not_panic() {
        for path in [UpdatePath::Batched, UpdatePath::PerRow] {
            let mut rng = StdRng::seed_from_u64(8);
            let config = PpoConfig {
                hidden: vec![4],
                batch_episodes: 2,
                ..Default::default()
            };
            let mut agent = PpoAgent::new(1, 2, config, &mut rng);
            agent.set_update_path(path);
            let before = agent.policy().clone();
            agent.observe(Episode::new());
            agent.observe(Episode::new());
            assert_eq!(agent.episodes_seen(), 2);
            assert_eq!(&before, agent.policy(), "{path:?}");
        }
    }

    #[test]
    fn clipping_bounds_policy_shift() {
        // After a single batch of extreme advantages, the policy must not
        // have collapsed to a deterministic distribution (the clip keeps
        // steps bounded).
        let mut rng = StdRng::seed_from_u64(11);
        let mut env = Bandit::new(vec![0.0, 10.0]);
        let config = PpoConfig {
            hidden: vec![8],
            lr: 0.05,
            batch_episodes: 4,
            epochs: 8,
            ..Default::default()
        };
        let mut agent = PpoAgent::new(1, 2, config, &mut rng);
        for _ in 0..4 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        let logits = agent.policy().predict(&Matrix::row_vector(vec![1.0]));
        let probs = loss::masked_softmax(logits.row(0), &[true, true]);
        assert!(probs[0] > 0.01, "policy collapsed: {probs:?}");
    }
}
