//! A PPO-style clipped-surrogate policy-gradient agent.
//!
//! ReJOIN's published implementation used Proximal Policy Optimization;
//! this is the single-worker variant: batches of episodes are replayed for
//! several epochs with importance ratios clipped to `[1−ε, 1+ε]`, which
//! permits multiple gradient steps per batch without the policy running
//! away — the "smooth policy change" requirement §2 describes.

use crate::env::Environment;
use crate::episode::Episode;
use crate::rollout::PolicySnapshot;
use hfqo_nn::{loss, Activation, Adam, Matrix, Mlp, MlpGradients, Optimizer};
use rand::rngs::StdRng;

/// PPO hyperparameters.
#[derive(Debug, Clone)]
pub struct PpoConfig {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Clip range ε.
    pub clip: f32,
    /// Replay epochs per batch.
    pub epochs: usize,
    /// Episodes per batch.
    pub batch_episodes: usize,
    /// EMA decay for the scalar baseline.
    pub baseline_decay: f32,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            hidden: vec![128, 128],
            gamma: 1.0,
            lr: 3e-4,
            clip: 0.2,
            epochs: 4,
            batch_episodes: 8,
            baseline_decay: 0.95,
            grad_clip: 5.0,
        }
    }
}

/// The PPO agent.
pub struct PpoAgent {
    policy: Mlp,
    optimizer: Adam,
    config: PpoConfig,
    baseline: f32,
    baseline_ready: bool,
    pending: Vec<Episode>,
    episodes_seen: usize,
}

impl PpoAgent {
    /// Creates an agent for the given dimensions.
    pub fn new(state_dim: usize, action_dim: usize, config: PpoConfig, rng: &mut StdRng) -> Self {
        let mut sizes = vec![state_dim];
        sizes.extend_from_slice(&config.hidden);
        sizes.push(action_dim);
        Self {
            policy: Mlp::new(&sizes, Activation::ReLU, rng),
            optimizer: Adam::new(config.lr),
            config,
            baseline: 0.0,
            baseline_ready: false,
            pending: Vec::new(),
            episodes_seen: 0,
        }
    }

    /// The policy network.
    pub fn policy(&self) -> &Mlp {
        &self.policy
    }

    /// Episodes observed.
    pub fn episodes_seen(&self) -> usize {
        self.episodes_seen
    }

    /// A frozen, `Send + Sync` copy of the current policy for rollout
    /// workers.
    pub fn snapshot(&self) -> PolicySnapshot {
        PolicySnapshot::new(self.policy.clone())
    }

    /// Samples an action; returns `(action, probability)`.
    pub fn select_action(
        &self,
        features: &[f32],
        mask: &[bool],
        rng: &mut StdRng,
        greedy: bool,
    ) -> (usize, f32) {
        PolicySnapshot::select_with(&self.policy, features, mask, rng, greedy)
    }

    /// Rolls out one episode.
    pub fn run_episode<E: Environment>(
        &self,
        env: &mut E,
        rng: &mut StdRng,
        greedy: bool,
    ) -> Episode {
        PolicySnapshot::rollout_with(&self.policy, env, rng, greedy)
    }

    /// Buffers an episode; updates when the batch fills. Returns `true`
    /// when an update ran.
    pub fn observe(&mut self, episode: Episode) -> bool {
        self.episodes_seen += 1;
        self.pending.push(episode);
        if self.pending.len() >= self.config.batch_episodes {
            self.update();
            true
        } else {
            false
        }
    }

    /// Clipped-surrogate update over the pending batch.
    pub fn update(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let episodes = std::mem::take(&mut self.pending);
        // Flatten to (features, mask, action, old_prob, advantage).
        #[allow(clippy::type_complexity)]
        let mut steps: Vec<(&Vec<f32>, &Vec<bool>, usize, f32, f32)> = Vec::new();
        for ep in &episodes {
            let returns = ep.returns(self.config.gamma);
            for (t, g) in ep.transitions.iter().zip(returns) {
                let adv = if self.baseline_ready {
                    g - self.baseline
                } else {
                    g
                };
                steps.push((&t.features, &t.mask, t.action, t.action_prob.max(1e-8), adv));
            }
        }
        // Normalise advantages.
        if steps.len() > 1 {
            let mean = steps.iter().map(|s| s.4).sum::<f32>() / steps.len() as f32;
            let var = steps
                .iter()
                .map(|s| (s.4 - mean) * (s.4 - mean))
                .sum::<f32>()
                / steps.len() as f32;
            let std = var.sqrt().max(1e-6);
            for s in &mut steps {
                s.4 = (s.4 - mean) / std;
            }
        }
        for _ in 0..self.config.epochs {
            let mut grads = MlpGradients::zeros_like(&self.policy);
            for (features, mask, action, old_prob, adv) in &steps {
                let x = Matrix::row_vector((*features).clone());
                let cache = self.policy.forward(&x);
                let probs = loss::masked_softmax(cache.output().row(0), mask);
                let new_prob = probs[*action].max(1e-8);
                let ratio = new_prob / old_prob;
                // Clipped-objective gradient: zero where the min() selects
                // the clipped (constant) branch.
                let clipped_out = (*adv >= 0.0 && ratio > 1.0 + self.config.clip)
                    || (*adv < 0.0 && ratio < 1.0 - self.config.clip);
                if clipped_out {
                    continue;
                }
                let grad_row =
                    loss::policy_gradient(cache.output().row(0), mask, *action, adv * ratio);
                let g = self.policy.backward(&cache, Matrix::row_vector(grad_row));
                grads.add(&g);
            }
            grads.scale(1.0 / steps.len().max(1) as f32);
            grads.clip_global_norm(self.config.grad_clip);
            self.optimizer.step(&mut self.policy, &grads);
        }
        for ep in &episodes {
            let g0 = ep
                .returns(self.config.gamma)
                .first()
                .copied()
                .unwrap_or(0.0);
            if self.baseline_ready {
                self.baseline = self.config.baseline_decay * self.baseline
                    + (1.0 - self.config.baseline_decay) * g0;
            } else {
                self.baseline = g0;
                self.baseline_ready = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::toy::Bandit;
    use rand::SeedableRng;

    #[test]
    fn ppo_learns_bandit() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut env = Bandit::new(vec![0.2, 0.4, 1.0, 0.1]);
        let config = PpoConfig {
            hidden: vec![16],
            lr: 0.02,
            batch_episodes: 8,
            epochs: 3,
            ..Default::default()
        };
        let mut agent = PpoAgent::new(1, 4, config, &mut rng);
        for _ in 0..600 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        let (action, p) = agent.select_action(&[1.0], &[true; 4], &mut rng, true);
        assert_eq!(action, 2, "picked {action} at {p}");
        assert!(agent.episodes_seen() == 600);
    }

    #[test]
    fn clipping_bounds_policy_shift() {
        // After a single batch of extreme advantages, the policy must not
        // have collapsed to a deterministic distribution (the clip keeps
        // steps bounded).
        let mut rng = StdRng::seed_from_u64(11);
        let mut env = Bandit::new(vec![0.0, 10.0]);
        let config = PpoConfig {
            hidden: vec![8],
            lr: 0.05,
            batch_episodes: 4,
            epochs: 8,
            ..Default::default()
        };
        let mut agent = PpoAgent::new(1, 2, config, &mut rng);
        for _ in 0..4 {
            let ep = agent.run_episode(&mut env, &mut rng, false);
            agent.observe(ep);
        }
        let logits = agent.policy().predict(&Matrix::row_vector(vec![1.0]));
        let probs = loss::masked_softmax(logits.row(0), &[true, true]);
        assert!(probs[0] > 0.01, "policy collapsed: {probs:?}");
    }
}
