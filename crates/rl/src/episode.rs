//! Episode buffers and return computation.

/// One step of an episode.
#[derive(Debug, Clone)]
pub struct Transition {
    /// State features at decision time.
    pub features: Vec<f32>,
    /// Valid-action mask at decision time.
    pub mask: Vec<bool>,
    /// Action taken.
    pub action: usize,
    /// Probability the policy assigned to the action (used by PPO's
    /// importance ratios).
    pub action_prob: f32,
    /// Immediate reward.
    pub reward: f32,
}

/// A completed episode.
#[derive(Debug, Clone, Default)]
pub struct Episode {
    /// Steps in order.
    pub transitions: Vec<Transition>,
}

impl Episode {
    /// An empty episode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of rewards.
    pub fn total_reward(&self) -> f32 {
        self.transitions.iter().map(|t| t.reward).sum()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the episode has no steps.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Discounted return from each step (`G_t`).
    pub fn returns(&self, gamma: f32) -> Vec<f32> {
        discounted_returns(
            &self
                .transitions
                .iter()
                .map(|t| t.reward)
                .collect::<Vec<_>>(),
            gamma,
        )
    }
}

/// Computes discounted returns `G_t = r_t + γ G_{t+1}`.
pub fn discounted_returns(rewards: &[f32], gamma: f32) -> Vec<f32> {
    let mut out = vec![0.0; rewards.len()];
    let mut acc = 0.0f32;
    for i in (0..rewards.len()).rev() {
        acc = rewards[i] + gamma * acc;
        out[i] = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_with_gamma_one() {
        assert_eq!(
            discounted_returns(&[0.0, 0.0, 5.0], 1.0),
            vec![5.0, 5.0, 5.0]
        );
    }

    #[test]
    fn returns_with_discount() {
        let r = discounted_returns(&[1.0, 1.0], 0.5);
        assert_eq!(r, vec![1.5, 1.0]);
    }

    #[test]
    fn sparse_terminal_reward_propagates() {
        // The query-optimization shape: zeros until the terminal reward.
        let r = discounted_returns(&[0.0, 0.0, 0.0, 2.0], 0.9);
        assert!((r[0] - 2.0 * 0.9f32.powi(3)).abs() < 1e-6);
        assert_eq!(r[3], 2.0);
    }

    #[test]
    fn episode_accessors() {
        let mut e = Episode::new();
        assert!(e.is_empty());
        e.transitions.push(Transition {
            features: vec![1.0],
            mask: vec![true],
            action: 0,
            action_prob: 1.0,
            reward: 3.0,
        });
        assert_eq!(e.len(), 1);
        assert_eq!(e.total_reward(), 3.0);
        assert_eq!(e.returns(0.9), vec![3.0]);
    }
}
