//! A bounded replay buffer.

use rand::rngs::StdRng;
use rand::Rng;

/// A fixed-capacity ring buffer with uniform random sampling. Used to mix
/// expert demonstrations with fresh experience during learning from
/// demonstration (re-training on slips, §5.1 step 5).
#[derive(Debug, Clone)]
pub struct ReplayBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    next: usize,
}

impl<T: Clone> ReplayBuffer<T> {
    /// A buffer holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
            next: 0,
        }
    }

    /// Current item count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum item count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an item, evicting the oldest once full.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.next] = item;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Samples `n` items uniformly with replacement (empty result when
    /// the buffer is empty).
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<T> {
        if self.items.is_empty() {
            return Vec::new();
        }
        (0..n)
            .map(|_| self.items[rng.gen_range(0..self.items.len())].clone())
            .collect()
    }

    /// All items, oldest eviction order not guaranteed.
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn push_and_evict() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..5 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.capacity(), 3);
        // 0 and 1 were evicted.
        assert!(!buf.items().contains(&0));
        assert!(!buf.items().contains(&1));
        assert!(buf.items().contains(&4));
    }

    #[test]
    fn sampling() {
        let mut buf = ReplayBuffer::new(10);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(buf.sample(5, &mut rng).is_empty());
        assert!(buf.is_empty());
        for i in 0..10 {
            buf.push(i);
        }
        let sample = buf.sample(100, &mut rng);
        assert_eq!(sample.len(), 100);
        assert!(sample.iter().all(|x| (0..10).contains(x)));
        // With 100 draws from 10 items, we expect decent coverage.
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        assert!(distinct.len() >= 7);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::<u8>::new(0);
    }
}
