//! The environment abstraction.

use rand::rngs::StdRng;

/// Result of applying one action.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Reward for the transition (0 for non-terminal query-optimization
    /// steps — the sparse-reward property §4 discusses).
    pub reward: f32,
    /// Whether the episode reached a terminal state.
    pub done: bool,
}

/// An episodic environment with a *fixed-width* action space and
/// per-state action masks.
///
/// Fixed width plus masking is how ReJOIN handles the shrinking pair
/// action set: the network always has `action_dim` outputs, and the mask
/// marks which are valid in the current state.
pub trait Environment {
    /// Dimensionality of state feature vectors.
    fn state_dim(&self) -> usize;

    /// Total number of actions (valid and invalid).
    fn action_dim(&self) -> usize;

    /// Starts a new episode. Environments that iterate over a workload
    /// advance to the next query here.
    fn reset(&mut self, rng: &mut StdRng);

    /// Writes the current state's features into `out` (cleared first,
    /// always `state_dim` long).
    fn state_features(&self, out: &mut Vec<f32>);

    /// Writes the current valid-action mask into `out` (cleared first,
    /// always `action_dim` long, at least one `true` in non-terminal
    /// states).
    fn action_mask(&self, out: &mut Vec<bool>);

    /// Applies an action. Must only be called with a currently-valid
    /// action on a non-terminal state.
    fn step(&mut self, action: usize, rng: &mut StdRng) -> StepResult;

    /// Whether the current state is terminal.
    fn is_terminal(&self) -> bool;
}

#[cfg(test)]
pub(crate) mod toy {
    //! Small test environments used across this crate's unit tests.

    use super::*;
    use rand::Rng;

    /// A k-armed bandit: one step per episode, arm `i` pays
    /// `means[i] + noise`.
    pub struct Bandit {
        /// Expected payout per arm.
        pub means: Vec<f32>,
        done: bool,
    }

    impl Bandit {
        pub fn new(means: Vec<f32>) -> Self {
            Self { means, done: false }
        }
    }

    impl Environment for Bandit {
        fn state_dim(&self) -> usize {
            1
        }

        fn action_dim(&self) -> usize {
            self.means.len()
        }

        fn reset(&mut self, _rng: &mut StdRng) {
            self.done = false;
        }

        fn state_features(&self, out: &mut Vec<f32>) {
            out.clear();
            out.push(1.0);
        }

        fn action_mask(&self, out: &mut Vec<bool>) {
            out.clear();
            out.resize(self.means.len(), true);
        }

        fn step(&mut self, action: usize, rng: &mut StdRng) -> StepResult {
            self.done = true;
            let noise: f32 = rng.gen_range(-0.05..0.05);
            StepResult {
                reward: self.means[action] + noise,
                done: true,
            }
        }

        fn is_terminal(&self) -> bool {
            self.done
        }
    }

    /// A corridor of `len` cells; the agent starts at 0, action 0 moves
    /// left, action 1 moves right; reaching the right end pays 1.0, every
    /// step costs 0.01, episodes cap at `3 * len` steps. Tests multi-step
    /// credit assignment.
    pub struct Corridor {
        pub len: usize,
        pos: usize,
        steps: usize,
    }

    impl Corridor {
        pub fn new(len: usize) -> Self {
            Self {
                len,
                pos: 0,
                steps: 0,
            }
        }
    }

    impl Environment for Corridor {
        fn state_dim(&self) -> usize {
            self.len + 1
        }

        fn action_dim(&self) -> usize {
            2
        }

        fn reset(&mut self, _rng: &mut StdRng) {
            self.pos = 0;
            self.steps = 0;
        }

        fn state_features(&self, out: &mut Vec<f32>) {
            out.clear();
            out.resize(self.len + 1, 0.0);
            out[self.pos] = 1.0;
        }

        fn action_mask(&self, out: &mut Vec<bool>) {
            out.clear();
            out.push(self.pos > 0); // left only when not at the start
            out.push(true);
        }

        fn step(&mut self, action: usize, _rng: &mut StdRng) -> StepResult {
            self.steps += 1;
            if action == 1 {
                self.pos += 1;
            } else {
                self.pos = self.pos.saturating_sub(1);
            }
            if self.pos == self.len {
                StepResult {
                    reward: 1.0,
                    done: true,
                }
            } else {
                StepResult {
                    reward: -0.01,
                    done: self.steps >= 3 * self.len,
                }
            }
        }

        fn is_terminal(&self) -> bool {
            self.pos == self.len || self.steps >= 3 * self.len
        }
    }
}

#[cfg(test)]
mod tests {
    use super::toy::*;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bandit_shapes() {
        let mut env = Bandit::new(vec![0.0, 1.0, 0.5]);
        let mut rng = StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        assert_eq!(env.action_dim(), 3);
        let mut mask = Vec::new();
        env.action_mask(&mut mask);
        assert_eq!(mask, vec![true; 3]);
        let r = env.step(1, &mut rng);
        assert!(r.done);
        assert!((r.reward - 1.0).abs() < 0.1);
        assert!(env.is_terminal());
    }

    #[test]
    fn corridor_walk() {
        let mut env = Corridor::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        env.reset(&mut rng);
        let mut mask = Vec::new();
        env.action_mask(&mut mask);
        assert_eq!(mask, vec![false, true]); // cannot move left at start
        assert!(!env.step(1, &mut rng).done);
        assert!(!env.step(1, &mut rng).done);
        let last = env.step(1, &mut rng);
        assert!(last.done);
        assert_eq!(last.reward, 1.0);
    }
}
