//! Policy snapshots: the rollout-only view of a policy-gradient agent.
//!
//! Parallel episode collection (Balsa-style simultaneous agents) needs
//! worker threads that *act* with a frozen copy of the policy while the
//! learner thread keeps the mutable optimizer state. [`PolicySnapshot`]
//! is that frozen copy: plain owned weights (`Send + Sync`), masked
//! softmax action selection, and the episode rollout loop. Both
//! [`ReinforceAgent`](crate::ReinforceAgent) and
//! [`PpoAgent`](crate::PpoAgent) delegate their own action selection and
//! rollouts here, so a snapshot consumes the RNG stream *identically* to
//! the live agent — the property the `workers = 1` determinism-parity
//! contract rests on.

use crate::env::Environment;
use crate::episode::{Episode, Transition};
use hfqo_nn::{loss, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::Rng;

/// A frozen, shareable copy of a policy network.
///
/// Cloning the weights is the only cost; everything else is read-only,
/// so one snapshot can be shared across worker threads behind an `Arc`.
#[derive(Debug, Clone)]
pub struct PolicySnapshot {
    policy: Mlp,
}

// Snapshots cross thread boundaries by design; `Mlp` is plain owned
// data, so this holds structurally — the assertion makes the contract
// explicit and breaks the build if interior mutability ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PolicySnapshot>();
};

impl PolicySnapshot {
    /// Wraps a copy of `policy`.
    pub fn new(policy: Mlp) -> Self {
        Self { policy }
    }

    /// The frozen policy network.
    pub fn policy(&self) -> &Mlp {
        &self.policy
    }

    /// Samples an action from the masked softmax over the policy's
    /// logits (or takes the mode when `greedy`). Returns the action and
    /// its probability under the policy.
    pub fn select_action(
        &self,
        features: &[f32],
        mask: &[bool],
        rng: &mut StdRng,
        greedy: bool,
    ) -> (usize, f32) {
        Self::select_with(&self.policy, features, mask, rng, greedy)
    }

    /// Action selection against a borrowed policy — the shared
    /// implementation the live agents delegate to, so live and snapshot
    /// action streams cannot drift.
    pub fn select_with(
        policy: &Mlp,
        features: &[f32],
        mask: &[bool],
        rng: &mut StdRng,
        greedy: bool,
    ) -> (usize, f32) {
        // Fail at the root cause: an all-masked row used to crawl
        // through the softmax as zeros and only blow up in the sampling
        // fallback below.
        let first_valid = mask
            .iter()
            .position(|&m| m)
            .expect("action mask has no valid action");
        let x = Matrix::row_vector(features.to_vec());
        let logits = policy.predict(&x);
        let row = logits.row(0);
        let probs = loss::masked_softmax(row, mask);
        // A NaN logit would poison every `partial_cmp` below: `max_by`
        // treats incomparable pairs as Equal and silently picks an
        // arbitrary — possibly masked — action. Detect it and fall back
        // deterministically to the first valid action (whose uniform
        // probability the degenerate softmax provides).
        if row.iter().zip(mask).any(|(l, &m)| m && l.is_nan()) {
            return (first_valid, probs[first_valid]);
        }
        if greedy {
            let (best, p) = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty action space");
            return (best, *p);
        }
        let draw: f32 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            acc += p;
            if draw <= acc {
                return (i, p);
            }
        }
        // Floating-point round-off can leave acc slightly below 1.
        let a = probs
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("mask has a valid action");
        (a, probs[a])
    }

    /// Rolls out one episode in `env` with the frozen policy.
    pub fn run_episode<E: Environment>(
        &self,
        env: &mut E,
        rng: &mut StdRng,
        greedy: bool,
    ) -> Episode {
        Self::rollout_with(&self.policy, env, rng, greedy)
    }

    /// Episode rollout against a borrowed policy (shared by the live
    /// agents and snapshots).
    pub fn rollout_with<E: Environment>(
        policy: &Mlp,
        env: &mut E,
        rng: &mut StdRng,
        greedy: bool,
    ) -> Episode {
        env.reset(rng);
        let mut episode = Episode::new();
        let mut features = Vec::with_capacity(env.state_dim());
        let mut mask = Vec::with_capacity(env.action_dim());
        while !env.is_terminal() {
            env.state_features(&mut features);
            env.action_mask(&mut mask);
            let (action, prob) = Self::select_with(policy, &features, &mask, rng, greedy);
            let result = env.step(action, rng);
            episode.transitions.push(Transition {
                features: features.clone(),
                mask: mask.clone(),
                action,
                action_prob: prob,
                reward: result.reward,
            });
            if result.done {
                break;
            }
        }
        episode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::toy::Bandit;
    use crate::{ReinforceAgent, ReinforceConfig};
    use rand::SeedableRng;

    #[test]
    fn snapshot_matches_live_agent_action_stream() {
        let mut rng = StdRng::seed_from_u64(0);
        let agent = ReinforceAgent::new(
            1,
            3,
            ReinforceConfig {
                hidden: vec![8],
                ..Default::default()
            },
            &mut rng,
        );
        let snapshot = agent.snapshot();
        let mask = [true; 3];
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let a = agent.select_action(&[1.0], &mask, &mut rng_a, false);
            let b = snapshot.select_action(&[1.0], &mask, &mut rng_b, false);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn snapshot_rollout_matches_live_agent() {
        let mut rng = StdRng::seed_from_u64(1);
        let agent = ReinforceAgent::new(
            1,
            2,
            ReinforceConfig {
                hidden: vec![8],
                ..Default::default()
            },
            &mut rng,
        );
        let snapshot = agent.snapshot();
        let mut env_a = Bandit::new(vec![0.3, 0.7]);
        let mut env_b = Bandit::new(vec![0.3, 0.7]);
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let ea = agent.run_episode(&mut env_a, &mut rng_a, false);
        let eb = snapshot.run_episode(&mut env_b, &mut rng_b, false);
        assert_eq!(ea.transitions.len(), eb.transitions.len());
        for (a, b) in ea.transitions.iter().zip(&eb.transitions) {
            assert_eq!(a.action, b.action);
            assert_eq!(a.reward, b.reward);
        }
    }

    /// Regression (NaN-unsafe greedy selection bugfix): a NaN logit
    /// used to propagate through `masked_softmax` and
    /// `max_by(partial_cmp…unwrap_or(Equal))`, silently picking an
    /// arbitrary — possibly masked — action. Selection must now fall
    /// back deterministically to the first valid action, greedy or
    /// sampled.
    #[test]
    fn nan_logits_fall_back_to_first_valid_action() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut policy = Mlp::new(&[2, 4, 4], hfqo_nn::Activation::ReLU, &mut rng);
        // Poison the network: every logit becomes NaN for any input.
        for w in policy.layers_mut()[0].w.data_mut() {
            *w = f32::NAN;
        }
        let mask = [false, true, true, false];
        for greedy in [false, true] {
            for _ in 0..10 {
                let (a, p) =
                    PolicySnapshot::select_with(&policy, &[0.5, -0.5], &mask, &mut rng, greedy);
                assert_eq!(a, 1, "greedy={greedy}: must pick the first valid action");
                assert!(mask[a], "greedy={greedy}: picked a masked action");
                assert_eq!(p, 0.5, "uniform-over-valid probability");
            }
        }
    }

    /// Regression companion: an all-masked action space now panics at
    /// the selection site with a root-cause message instead of the old
    /// far-from-root-cause sampler panic.
    #[test]
    #[should_panic(expected = "action mask has no valid action")]
    fn all_masked_action_space_panics_with_clear_message() {
        let mut rng = StdRng::seed_from_u64(4);
        let agent = ReinforceAgent::new(
            2,
            3,
            ReinforceConfig {
                hidden: vec![4],
                ..Default::default()
            },
            &mut rng,
        );
        let _ = agent.select_action(&[0.0, 1.0], &[false, false, false], &mut rng, false);
    }

    #[test]
    fn greedy_selection_is_the_mode() {
        let mut rng = StdRng::seed_from_u64(2);
        let agent = ReinforceAgent::new(2, 4, ReinforceConfig::default(), &mut rng);
        let snapshot = agent.snapshot();
        let mask = [true, false, true, true];
        let (a, p) = snapshot.select_action(&[0.5, -0.5], &mask, &mut rng, true);
        assert!(mask[a]);
        assert!(p > 0.0);
        // Greedy ignores the RNG: the same call returns the same action.
        let (b, _) = snapshot.select_action(&[0.5, -0.5], &mask, &mut rng, true);
        assert_eq!(a, b);
    }
}
