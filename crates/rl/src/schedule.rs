//! Exploration schedules.

/// Linearly-decaying epsilon: `start` at episode 0, `end` from
/// `decay_episodes` onwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonSchedule {
    /// Initial epsilon.
    pub start: f32,
    /// Final epsilon.
    pub end: f32,
    /// Episodes over which to decay.
    pub decay_episodes: usize,
}

impl EpsilonSchedule {
    /// A constant schedule.
    pub fn constant(value: f32) -> Self {
        Self {
            start: value,
            end: value,
            decay_episodes: 1,
        }
    }

    /// The epsilon at `episode`.
    pub fn value(&self, episode: usize) -> f32 {
        if self.decay_episodes == 0 || episode >= self.decay_episodes {
            return self.end;
        }
        let frac = episode as f32 / self.decay_episodes as f32;
        self.start + (self.end - self.start) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay() {
        let s = EpsilonSchedule {
            start: 1.0,
            end: 0.0,
            decay_episodes: 100,
        };
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.5).abs() < 1e-6);
        assert_eq!(s.value(100), 0.0);
        assert_eq!(s.value(10_000), 0.0);
    }

    #[test]
    fn constant_schedule() {
        let s = EpsilonSchedule::constant(0.1);
        assert_eq!(s.value(0), 0.1);
        assert_eq!(s.value(999), 0.1);
    }

    #[test]
    fn increasing_schedule_supported() {
        let s = EpsilonSchedule {
            start: 0.0,
            end: 1.0,
            decay_episodes: 10,
        };
        assert!(s.value(5) > s.value(1));
    }
}
