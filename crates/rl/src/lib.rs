//! # hfqo-rl
//!
//! Reinforcement-learning machinery: the [`Environment`] abstraction the
//! query-optimization environments implement, episode rollouts, REINFORCE
//! with a moving baseline (the policy-gradient family ReJOIN used), a
//! PPO-style clipped-surrogate variant, an epsilon-greedy **reward
//! prediction** learner (the function §5.1's learning-from-demonstration
//! trains on expert histories), a replay buffer, and exploration
//! schedules.
//!
//! Everything is driven by seeded RNGs and the pure-Rust `hfqo-nn`
//! networks, so training runs are exactly reproducible.

pub mod env;
pub mod episode;
pub mod ppo;
pub mod reinforce;
pub mod replay;
pub mod reward_model;
pub mod rollout;
pub mod schedule;

pub use env::{Environment, StepResult};
pub use episode::{discounted_returns, Episode, Transition};
pub use ppo::{PpoAgent, PpoConfig};
pub use reinforce::{ReinforceAgent, ReinforceConfig, UpdatePath};
pub use replay::ReplayBuffer;
pub use reward_model::{RewardModel, RewardModelConfig};
pub use rollout::PolicySnapshot;
pub use schedule::EpsilonSchedule;
