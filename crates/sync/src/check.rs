//! Debug-build lock checker: a global site-level lock-order graph plus
//! a per-thread held-lock chain. Compiled only under
//! `cfg(debug_assertions)`; the public wrappers in `lib.rs` call in
//! before every acquisition.
//!
//! Design notes:
//!
//! * Nodes in the order graph are **sites** (static labels passed to
//!   `Mutex::new`/`RwLock::new`), not lock instances. Two locks of the
//!   same site share ordering constraints — which is what makes the
//!   checker flag same-site nesting (two cache shards taken by two
//!   threads in opposite order is a deadlock even though the edges are
//!   instance-distinct).
//! * Cycles are detected **before blocking** on the underlying lock, so
//!   an inversion panics deterministically on first occurrence instead
//!   of deadlocking only under the losing interleaving.
//! * Re-entrancy is tracked by **instance id** (a process-unique u64
//!   per lock), since re-acquiring a *different* instance of the same
//!   site is an ordering hazard, not re-entrancy.
//! * The graph is cumulative for the process lifetime and edges are
//!   never removed: an order once established is a contract.
//!
//! This module is the one place in the workspace allowed to use
//! `std::sync` lock types directly (lint rule L1 exempts `crates/sync`):
//! the checker's own registry lock is deliberately *not* instrumented.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Runtime kill-switch: `HFQO_LOCKCHECK=0` (or `off`/`false`) disables
/// checking in debug builds, e.g. for debug-profile benchmarking. Read
/// once; checking is on by default.
fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        !matches!(
            std::env::var("HFQO_LOCKCHECK").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        )
    })
}

/// Interned sites and the directed order graph over them.
struct Registry {
    /// Site label → node id.
    ids: HashMap<&'static str, usize>,
    /// Node id → site label (reverse of `ids`).
    labels: Vec<&'static str>,
    /// `edges[a]` holds every `b` such that some thread acquired a lock
    /// of site `b` while holding a lock of site `a`.
    edges: Vec<Vec<usize>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            ids: HashMap::new(),
            labels: Vec::new(),
            edges: Vec::new(),
        })
    })
}

impl Registry {
    fn intern(&mut self, site: &'static str) -> usize {
        if let Some(&id) = self.ids.get(site) {
            return id;
        }
        let id = self.labels.len();
        self.ids.insert(site, id);
        self.labels.push(site);
        self.edges.push(Vec::new());
        id
    }

    /// Is `to` reachable from `from` along established edges? If so,
    /// returns the path as site labels (`from … to`), used to print the
    /// established order that a new inverse edge would contradict.
    fn path(&self, from: usize, to: usize) -> Option<Vec<&'static str>> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut stack = vec![from];
        parent.insert(from, from);
        while let Some(n) = stack.pop() {
            if n == to {
                let mut path = vec![self.labels[to]];
                let mut cur = to;
                while cur != from {
                    cur = parent[&cur];
                    path.push(self.labels[cur]);
                }
                path.reverse();
                return Some(path);
            }
            for &next in &self.edges[n] {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(next) {
                    e.insert(n);
                    stack.push(next);
                }
            }
        }
        None
    }
}

thread_local! {
    /// The chain of instrumented locks this thread currently holds, in
    /// acquisition order: `(instance id, site id, site label)`.
    static HELD: RefCell<Vec<(u64, usize, &'static str)>> =
        const { RefCell::new(Vec::new()) };
}

fn held_chain() -> Vec<&'static str> {
    HELD.with(|h| h.borrow().iter().map(|&(_, _, site)| site).collect())
}

/// Per-lock checker state, embedded in each `Mutex`/`RwLock` in debug
/// builds.
pub(crate) struct LockMeta {
    site: &'static str,
    site_id: usize,
    /// Process-unique instance id, for re-entrancy detection.
    instance: u64,
}

impl LockMeta {
    pub(crate) fn register(site: &'static str) -> Self {
        static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);
        let site_id = if enabled() {
            registry().lock().expect("lockcheck registry").intern(site)
        } else {
            0
        };
        Self {
            site,
            site_id,
            // ordering: Relaxed — a process-unique counter; uniqueness is
            // all that matters, no other memory depends on it.
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
        }
    }

    pub(crate) fn site(&self) -> &'static str {
        self.site
    }

    /// Checks an acquisition of this lock against the thread's held
    /// chain and the global order graph. Panics on re-entrancy,
    /// same-site nesting, or a lock-order cycle; otherwise records the
    /// new edges and returns a pending token to complete once the
    /// underlying lock is actually held.
    pub(crate) fn before_acquire(&self) -> PendingAcquire {
        if !enabled() {
            return PendingAcquire {
                instance: self.instance,
                site_id: self.site_id,
                site: self.site,
                registered: false,
            };
        }
        let held: Vec<(u64, usize, &'static str)> = HELD.with(|h| h.borrow().clone());
        // Deadlock-on-self checks first: they need no graph.
        for &(instance, site_id, site) in &held {
            if instance == self.instance {
                panic!(
                    "re-entrant lock acquisition: \"{}\" is already held by this thread \
                     (held chain: {:?})",
                    self.site,
                    held_chain(),
                );
            }
            if site_id == self.site_id {
                panic!(
                    "lock-order hazard: acquiring \"{}\" while holding another lock of the \
                     same site \"{site}\" — two threads taking same-site locks in opposite \
                     order deadlock (held chain: {:?})",
                    self.site,
                    held_chain(),
                );
            }
        }
        if !held.is_empty() {
            // The panic message is assembled while the registry guard is
            // held, but the panic itself fires after releasing it — so a
            // `should_panic` test does not poison the registry for every
            // later test in the binary.
            let mut cycle: Option<String> = None;
            {
                let mut reg = registry().lock().expect("lockcheck registry");
                for &(_, held_site_id, held_site) in &held {
                    if reg.edges[held_site_id].contains(&self.site_id) {
                        continue; // established edge, already validated
                    }
                    if let Some(path) = reg.path(self.site_id, held_site_id) {
                        cycle = Some(format!(
                            "lock-order cycle: acquiring \"{}\" while holding \"{held_site}\" \
                             inverts the established order {} -> \"{held_site}\"; a deadlock \
                             is possible (held chain: {:?})",
                            self.site,
                            path.iter()
                                .map(|s| format!("\"{s}\""))
                                .collect::<Vec<_>>()
                                .join(" -> "),
                            held.iter().map(|&(_, _, s)| s).collect::<Vec<_>>(),
                        ));
                        break;
                    }
                    reg.edges[held_site_id].push(self.site_id);
                }
            }
            if let Some(msg) = cycle {
                panic!("{msg}");
            }
        }
        PendingAcquire {
            instance: self.instance,
            site_id: self.site_id,
            site: self.site,
            registered: true,
        }
    }
}

/// Result of a passed pre-acquisition check; turned into a
/// [`HeldToken`] once the underlying lock is held. Split so that a
/// poison panic between check and acquisition never leaves a stale
/// held-chain entry.
pub(crate) struct PendingAcquire {
    instance: u64,
    site_id: usize,
    site: &'static str,
    registered: bool,
}

impl PendingAcquire {
    pub(crate) fn site(&self) -> &'static str {
        self.site
    }

    /// The underlying lock is now held: push it onto the thread's chain.
    pub(crate) fn acquired(self) -> HeldToken {
        if self.registered {
            HELD.with(|h| {
                h.borrow_mut()
                    .push((self.instance, self.site_id, self.site))
            });
        }
        HeldToken {
            instance: self.instance,
            site_id: self.site_id,
            site: self.site,
            registered: self.registered,
        }
    }

    /// Re-entry after a condvar wait: the mutex is held again. No order
    /// checks are needed — the wait discipline guarantees the chain was
    /// empty while blocked (this thread could not have acquired
    /// anything while parked).
    pub(crate) fn reacquired(self) -> HeldToken {
        self.acquired()
    }
}

/// Registration of one held lock; embedded in each guard. Dropping the
/// token (when the guard drops) removes the lock from the thread's
/// held chain.
pub(crate) struct HeldToken {
    instance: u64,
    site_id: usize,
    site: &'static str,
    registered: bool,
}

impl HeldToken {
    /// Condvar wait: the mutex is about to be released for the duration
    /// of the block. Enforces the sole-lock discipline (waiting while
    /// holding anything else parks that lock unboundedly), then removes
    /// this entry from the chain and hands back a `PendingAcquire` for
    /// re-registration on wakeup.
    pub(crate) fn release_for_wait(self) -> PendingAcquire {
        if self.registered {
            let others: Vec<&'static str> = HELD.with(|h| {
                h.borrow()
                    .iter()
                    .filter(|&&(instance, _, _)| instance != self.instance)
                    .map(|&(_, _, site)| site)
                    .collect()
            });
            if !others.is_empty() {
                // The token's own Drop will unregister when this panic
                // unwinds the guard.
                panic!(
                    "condvar wait while holding other locks: waiting on \"{}\" would keep \
                     {others:?} held for an unbounded time",
                    self.site,
                );
            }
        }
        let pending = PendingAcquire {
            instance: self.instance,
            site_id: self.site_id,
            site: self.site,
            registered: self.registered,
        };
        // `self` is consumed; suppress its Drop-time unregistration in
        // favor of doing it here, exactly once.
        unregister(self.instance, self.registered);
        std::mem::forget(self);
        pending
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        unregister(self.instance, self.registered);
    }
}

fn unregister(instance: u64, registered: bool) {
    if !registered {
        return;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        // Guards are usually dropped LIFO; search from the back.
        if let Some(pos) = held.iter().rposition(|&(i, _, _)| i == instance) {
            held.remove(pos);
        }
    });
}
