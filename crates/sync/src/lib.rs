//! # hfqo-sync
//!
//! Site-labelled synchronization primitives with built-in lock-order
//! deadlock detection.
//!
//! Every concurrent crate in this workspace takes its `Mutex`,
//! `RwLock`, and `Condvar` from here instead of `std::sync` (enforced
//! by lint rule L1 in `hfqo_lint`). The wrappers are **zero-cost
//! pass-throughs in release builds** — same size as the `std` types,
//! compile-time asserted below — and in debug builds every lock is
//! registered under a static *site label* and checked on each
//! acquisition:
//!
//! * **Lock-order cycles.** Acquiring a lock while holding another adds
//!   a site-level edge `held → acquired` to a global order graph. An
//!   acquisition that would close a cycle (`A → B` established, `B → A`
//!   attempted) panics *immediately* — naming both sites and the held
//!   chain — instead of deadlocking some run later under the right
//!   interleaving. Holding one lock of a site while acquiring another
//!   lock of the *same* site (e.g. two cache shards) is flagged the
//!   same way: with many instances per site there is always an
//!   interleaving where two threads take them in opposite order.
//! * **Re-entrant acquisition.** Locking a lock this thread already
//!   holds panics at the root cause (std's behavior is a guaranteed
//!   deadlock for `Mutex` and unspecified for `RwLock`).
//! * **Condvar discipline.** Waiting while holding any lock other than
//!   the one being released panics: the held lock would stay held for
//!   the whole (unbounded) wait, the classic lost-progress deadlock.
//! * **Unified poison handling.** Guards are returned directly, not
//!   `Result`-wrapped; a poisoned lock panics through one path that
//!   names the lock's site label, replacing per-call-site
//!   `expect("… poisoned")` strings.
//!
//! Checking is compiled in under `cfg(debug_assertions)` (so every
//! `cargo test` run is a lockcheck run) and can be disabled at runtime
//! with `HFQO_LOCKCHECK=0` for debug-profile benchmarking. Release
//! builds compile the checks out entirely.
//!
//! The lock-order graph is **global and cumulative** over the process
//! lifetime: orders established anywhere (including other tests in the
//! same test binary) constrain later acquisitions, which is exactly
//! what makes the check catch inversions that never actually race in a
//! given run. Use distinct site labels per logical lock; labels are the
//! graph's nodes.

use std::fmt;

#[cfg(debug_assertions)]
mod check;

/// In release builds the wrappers must cost nothing: same size as the
/// `std` primitives they wrap (the site label and check state are
/// compiled out). Evaluated at compile time by `cargo build --release`.
#[cfg(not(debug_assertions))]
const _: () = {
    assert!(
        std::mem::size_of::<Mutex<u64>>() == std::mem::size_of::<std::sync::Mutex<u64>>(),
        "release-mode Mutex must be a zero-cost pass-through"
    );
    assert!(
        std::mem::size_of::<RwLock<u64>>() == std::mem::size_of::<std::sync::RwLock<u64>>(),
        "release-mode RwLock must be a zero-cost pass-through"
    );
    assert!(
        std::mem::size_of::<Condvar>() == std::mem::size_of::<std::sync::Condvar>(),
        "release-mode Condvar must be a zero-cost pass-through"
    );
};

/// A site-labelled mutual-exclusion lock. See the [module docs](self).
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    meta: check::LockMeta,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`]; releases the lock (and, in debug
/// builds, its held-chain registration) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // Field order matters for drop order only in so far as both drops
    // are independent; the inner guard releases the lock, the token
    // unregisters the hold.
    inner: std::sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    token: check::HeldToken,
}

impl<T> Mutex<T> {
    /// A new lock registered under `site` — a static label naming the
    /// lock in panics and in the lock-order graph. Use one label per
    /// logical lock (many instances may share a label, e.g. the shards
    /// of one sharded structure; they then share ordering constraints).
    pub fn new(site: &'static str, value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            meta: check::LockMeta::register(site),
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, panicking (with the site label) on poison —
    /// the unified replacement for scattered `.lock().expect(…)`
    /// call sites. In debug builds, first checks the acquisition
    /// against the global lock-order graph and the thread's held chain.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let pending = self.meta.before_acquire();
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(_) => poisoned(self.site()),
        };
        MutexGuard {
            inner,
            #[cfg(debug_assertions)]
            token: pending.acquired(),
        }
    }

    /// The lock's site label (`"<release>"` in release builds, where
    /// labels are compiled out).
    pub fn site(&self) -> &'static str {
        #[cfg(debug_assertions)]
        {
            self.meta.site()
        }
        #[cfg(not(debug_assertions))]
        {
            "<release>"
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("site", &self.site())
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A site-labelled reader-writer lock. Read and write acquisitions are
/// ordered identically in the lock-order graph (a read can deadlock
/// against a queued writer exactly like a write can).
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    meta: check::LockMeta,
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    // Held for its Drop (unregisters from the held chain), never read.
    #[cfg(debug_assertions)]
    _token: check::HeldToken,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    // Held for its Drop (unregisters from the held chain), never read.
    #[cfg(debug_assertions)]
    _token: check::HeldToken,
}

impl<T> RwLock<T> {
    /// A new lock registered under `site`; see [`Mutex::new`].
    pub fn new(site: &'static str, value: T) -> Self {
        Self {
            #[cfg(debug_assertions)]
            meta: check::LockMeta::register(site),
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access; panics with the site label on
    /// poison. Checked against the lock-order graph like a write.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let pending = self.meta.before_acquire();
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(_) => poisoned(self.site()),
        };
        RwLockReadGuard {
            inner,
            #[cfg(debug_assertions)]
            _token: pending.acquired(),
        }
    }

    /// Acquires exclusive write access; panics with the site label on
    /// poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let pending = self.meta.before_acquire();
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(_) => poisoned(self.site()),
        };
        RwLockWriteGuard {
            inner,
            #[cfg(debug_assertions)]
            _token: pending.acquired(),
        }
    }

    /// The lock's site label (see [`Mutex::site`]).
    pub fn site(&self) -> &'static str {
        #[cfg(debug_assertions)]
        {
            self.meta.site()
        }
        #[cfg(not(debug_assertions))]
        {
            "<release>"
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("site", &self.site())
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`] guards. In debug builds,
/// [`wait`](Condvar::wait) enforces that the released mutex is the only
/// instrumented lock the thread holds — waiting while holding anything
/// else parks the held lock for an unbounded time, the classic
/// lost-progress deadlock.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically releases `guard`'s mutex and blocks until notified,
    /// then re-acquires and returns the guard. Panics with the mutex's
    /// site label on poison. Spurious wakeups are possible, exactly as
    /// with `std`: re-check the condition in a loop.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        #[cfg(debug_assertions)]
        {
            let MutexGuard { inner, token } = guard;
            let pending = token.release_for_wait();
            let inner = match self.inner.wait(inner) {
                Ok(g) => g,
                Err(_) => poisoned(pending.site()),
            };
            MutexGuard {
                inner,
                token: pending.reacquired(),
            }
        }
        #[cfg(not(debug_assertions))]
        {
            let MutexGuard { inner } = guard;
            let inner = match self.inner.wait(inner) {
                Ok(g) => g,
                Err(_) => poisoned("<release>"),
            };
            MutexGuard { inner }
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// The single poison path every wrapper funnels through: one message
/// shape, always naming the lock's site. Poison means another thread
/// panicked while holding this lock; the state behind it cannot be
/// trusted, so serving threads fail fast at the lock instead of
/// propagating `Result`s nobody can recover from.
#[cold]
#[inline(never)]
fn poisoned(site: &'static str) -> ! {
    panic!("lock poisoned: a thread panicked while holding \"{site}\"");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let m = Mutex::new("sync-test.basic", 1);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 2);
        assert_eq!(
            m.site(),
            if cfg!(debug_assertions) {
                "sync-test.basic"
            } else {
                "<release>"
            }
        );
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new("sync-test.rw", vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn consistent_nesting_order_is_allowed() {
        // A → B in both acquisitions: no cycle, no panic. Repeated to
        // show the established edge stays satisfied.
        let a = Mutex::new("sync-test.order-a", ());
        let b = Mutex::new("sync-test.order-b", ());
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
    }

    #[test]
    fn condvar_roundtrip() {
        let m = Mutex::new("sync-test.cv", false);
        let cv = Condvar::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                *m.lock() = true;
                cv.notify_all();
            });
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
        });
    }

    #[test]
    fn guards_deref_debug() {
        let m = Mutex::new("sync-test.debug", 7usize);
        let g = m.lock();
        assert_eq!(format!("{g:?}"), "7");
        drop(g);
        assert!(format!("{m:?}").contains("Mutex"));
    }

    /// Threads see each other's writes through the wrapper exactly as
    /// through `std::sync::Mutex` — the wrapper adds checks, not
    /// semantics.
    #[test]
    fn mutex_is_a_real_lock_across_threads() {
        let m = Mutex::new("sync-test.contended", 0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
