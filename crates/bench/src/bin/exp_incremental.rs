//! §5.3 incremental-learning curricula experiment.

use hfqo_bench::experiments::{common, incremental_exp};
use hfqo_bench::report::{render_table, write_json};
use hfqo_bench::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    args.warn_if_sequential("exp_incremental");
    let scale = common::Scale::from_args(args);
    eprintln!(
        "exp_incremental: four curricula × {} episodes ...",
        scale.episodes
    );
    let result = incremental_exp::run(scale, args.seed);

    println!("# §5.3 Incremental Learning — full-task cost ratio after equal budgets");
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.curriculum.clone(),
                r.phases.to_string(),
                format!("{:.2}", r.full_task_ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["curriculum", "phases", "full_task_ratio"], &rows)
    );
    println!(
        "({} queries, {} episodes per curriculum)",
        result.queries, result.total_episodes
    );
    write_json("exp_incremental", &result);
}
