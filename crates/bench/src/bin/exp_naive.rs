//! §4 search-space experiment: naive full-space DRL vs random vs join-order-only.

use hfqo_bench::experiments::{common, naive};
use hfqo_bench::report::{pct, render_table, write_json};
use hfqo_bench::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let scale = common::Scale::from_args(args);
    eprintln!(
        "exp_naive: training two agents for {} episodes each ...",
        scale.episodes
    );
    let bundle = common::imdb_bundle(scale, args.seed);
    let result = naive::run(&bundle, scale, args.seed, args.workers);

    println!(
        "# §4 Search Space Size — final cost relative to expert after {} episodes",
        result.episodes
    );
    let rows = vec![
        vec![
            "join-order only (ReJOIN)".to_string(),
            pct(result.join_order_ratio),
        ],
        vec![
            "full plan space (naive)".to_string(),
            pct(result.full_space_ratio),
        ],
        vec!["random plans".to_string(), pct(result.random_ratio)],
    ];
    println!("{}", render_table(&["approach", "cost_rel_expert"], &rows));
    write_json("exp_naive", &result);
}
