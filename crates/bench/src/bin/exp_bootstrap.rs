//! §5.2 cost-model bootstrapping experiment (+ scaling ablation).

use hfqo_bench::experiments::{bootstrap_exp, common};
use hfqo_bench::report::{render_table, write_json};
use hfqo_bench::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    args.warn_if_sequential("exp_bootstrap");
    let scale = common::Scale::from_args(args);
    eprintln!("exp_bootstrap: two bootstrapped runs (scaled / unscaled) ...");
    let bundle = common::imdb_bundle(scale, args.seed);
    // Latency simulation is the bottleneck; cap query size in quick mode.
    let bundle = if args.full {
        bundle
    } else {
        common::cap_query_size(bundle, 8)
    };
    let result = bootstrap_exp::run(&bundle, scale, args.seed);

    println!(
        "# §5.2 Cost-Model Bootstrapping — phase switch at episode {}",
        result.phase1_episodes
    );
    let row = |r: &bootstrap_exp::BootstrapRun| {
        vec![
            if r.scaled {
                "scaled (r_l formula)"
            } else {
                "raw latency"
            }
            .to_string(),
            format!("{:.2}", r.ratio_before_switch),
            format!("{:.2}", r.worst_ratio_after_switch),
            format!("{:.2}", r.final_ratio),
        ]
    };
    let rows = vec![row(&result.scaled), row(&result.unscaled)];
    println!(
        "{}",
        render_table(
            &[
                "phase-2 reward",
                "ratio_before",
                "worst_after_switch",
                "final"
            ],
            &rows
        )
    );
    let (c_min, c_max) = result.scaled.cost_range;
    let (l_min, l_max) = result.scaled.latency_range;
    println!(
        "observed phase-1 ranges: cost {c_min:.1}..{c_max:.1}, latency {l_min:.2}..{l_max:.2} ms"
    );
    write_json("exp_bootstrap", &result);
}
