//! Regenerates Figure 3b — cost of generated plans (10 JOB-like queries).

use hfqo_bench::experiments::{common, fig3a, fig3b};
use hfqo_bench::report::{render_table, write_json};
use hfqo_bench::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let scale = common::Scale::from_args(args);
    eprintln!("fig3b: building workload + training (fig3a protocol) ...");
    let bundle = common::imdb_bundle(scale, args.seed);
    let (_conv, agent) = fig3a::run(&bundle, scale, args.seed, args.workers);
    let result = fig3b::run(&bundle, &agent);

    println!("# Figure 3b — optimizer cost of final plans (expert vs trained ReJOIN)");
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.1}", r.expert_cost),
                format!("{:.1}", r.rejoin_cost),
                format!("{:.3}", r.rejoin_cost / r.expert_cost),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["query", "expert_cost", "rejoin_cost", "ratio"], &rows)
    );
    println!(
        "ReJOIN at-or-below expert on {}/{} queries",
        result.wins_or_ties,
        result.rows.len()
    );
    write_json("fig3b", &result);
}
