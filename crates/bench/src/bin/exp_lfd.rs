//! §5.1 learning-from-demonstration experiment.

use hfqo_bench::experiments::{common, lfd};
use hfqo_bench::report::{render_table, write_json};
use hfqo_bench::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    args.warn_if_sequential("exp_lfd");
    let scale = common::Scale::from_args(args);
    eprintln!("exp_lfd: demonstration vs tabula rasa ...");
    let bundle = common::imdb_bundle(scale, args.seed);
    // Latency simulation is the bottleneck; cap query size in quick mode.
    let bundle = if args.full {
        bundle
    } else {
        common::cap_query_size(bundle, 8)
    };
    let result = lfd::run(&bundle, scale, args.seed);

    println!(
        "# §5.1 Learning from Demonstration — {} fine-tuning episodes",
        result.lfd_episodes
    );
    let rows = vec![
        vec![
            "LfD final cost ratio".into(),
            format!("{:.2}", result.lfd_final_ratio),
        ],
        vec![
            "tabula-rasa final cost ratio".into(),
            format!("{:.2}", result.tabula_final_ratio),
        ],
        vec![
            "LfD worst latency".into(),
            format!("{:.1} ms", result.lfd_worst_ms),
        ],
        vec![
            "tabula-rasa worst latency".into(),
            format!("{:.1} ms", result.tabula_worst_ms),
        ],
        vec![
            "LfD slip re-trainings".into(),
            result.lfd_retrains.to_string(),
        ],
        vec![
            "expert mean latency".into(),
            format!("{:.2} ms", result.expert_mean_ms),
        ],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
    write_json("exp_lfd", &result);
}
