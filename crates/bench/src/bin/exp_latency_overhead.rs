//! §4 performance-evaluation-overhead experiment.

use hfqo_bench::experiments::{common, latency_overhead};
use hfqo_bench::report::{render_table, write_json};
use hfqo_bench::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let scale = common::Scale::from_args(args);
    eprintln!(
        "exp_latency_overhead: training on latency rewards ({} episodes) ...",
        scale.episodes
    );
    let bundle = common::imdb_bundle(scale, args.seed);
    // Latency simulation is the bottleneck; cap query size in quick mode.
    let bundle = if args.full {
        bundle
    } else {
        common::cap_query_size(bundle, 8)
    };
    let result = latency_overhead::run(&bundle, scale, args.seed, args.workers);

    println!("# §4 Performance Evaluation Overhead — latency-as-reward training bill");
    let rows = vec![
        vec![
            "total simulated execution".into(),
            format!("{:.1} s", result.latency_training_exec_s),
        ],
        vec![
            "first training quarter".into(),
            format!("{:.1} s", result.first_quarter_exec_s),
        ],
        vec![
            "last training quarter".into(),
            format!("{:.1} s", result.last_quarter_exec_s),
        ],
        vec![
            "catastrophic episodes (>100× expert)".into(),
            result.catastrophic_episodes.to_string(),
        ],
        vec![
            "worst single plan".into(),
            format!("{:.1} ms", result.worst_ms),
        ],
        vec![
            "expert mean latency".into(),
            format!("{:.2} ms", result.expert_mean_ms),
        ],
        vec![
            "final cost ratio".into(),
            format!("{:.2}", result.final_ratio),
        ],
    ];
    println!("{}", render_table(&["metric", "value"], &rows));
    write_json("exp_latency_overhead", &result);
}
