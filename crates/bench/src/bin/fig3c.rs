//! Regenerates Figure 3c — planning time vs number of relations.

use hfqo_bench::report::{render_table, write_json};
use hfqo_bench::{experiments::fig3c, RunArgs};

fn main() {
    let args = RunArgs::from_env();
    let (rows_per_table, train_episodes) = if args.full {
        (2_000, 3_000)
    } else {
        (500, 600)
    };
    eprintln!("fig3c: sweep over 4..=17 relations (rows/table {rows_per_table}) ...");
    let result = fig3c::run(rows_per_table, train_episodes, args.seed, args.workers);

    println!("# Figure 3c — planning time (µs) vs number of relations");
    let rows: Vec<Vec<String>> = result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.relations.to_string(),
                format!("{:.1}", r.expert_us),
                format!("{:.1}", r.rejoin_us),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["relations", "expert_us", "rejoin_us"], &rows)
    );
    match result.crossover {
        Some(n) => println!("ReJOIN plans faster than the expert from {n} relations on"),
        None => println!("no crossover observed in this range"),
    }
    write_json("fig3c", &result);
}
