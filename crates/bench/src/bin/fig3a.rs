//! Regenerates Figure 3a — ReJOIN convergence.

use hfqo_bench::experiments::{common, fig3a};
use hfqo_bench::report::{pct, render_table, write_json};
use hfqo_bench::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let scale = common::Scale::from_args(args);
    eprintln!(
        "fig3a: building IMDB-like workload (base_rows={}) ...",
        scale.base_rows
    );
    let bundle = common::imdb_bundle(scale, args.seed);
    eprintln!(
        "fig3a: training {} episodes over {} queries ...",
        scale.episodes,
        bundle.queries.len()
    );
    let (result, _agent) = fig3a::run(&bundle, scale, args.seed, args.workers);

    println!(
        "# Figure 3a — ReJOIN convergence (cost relative to expert, MA window {})",
        scale.ma_window
    );
    let rows: Vec<Vec<String>> = result
        .series
        .iter()
        .map(|(ep, r)| vec![ep.to_string(), pct(*r)])
        .collect();
    println!(
        "{}",
        render_table(&["episode", "ma_cost_rel_expert"], &rows)
    );
    println!("initial ratio : {}", pct(result.initial_ratio));
    println!("final ratio   : {}", pct(result.final_ratio));
    match result.convergence_episode {
        Some(ep) => println!("reached expert parity at episode {ep}"),
        None => println!(
            "did not reach expert parity within {} episodes",
            result.episodes
        ),
    }
    write_json("fig3a", &result);
}
