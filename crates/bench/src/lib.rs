//! # hfqo-bench
//!
//! The experiment harness: one module (and one binary) per figure or
//! experimental claim of the paper, plus Criterion micro-benchmarks.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig3a` | Figure 3a — ReJOIN convergence vs episodes |
//! | `fig3b` | Figure 3b — per-query plan cost, expert vs trained ReJOIN |
//! | `fig3c` | Figure 3c — planning time vs relation count |
//! | `exp_naive` | §4 "Search Space Size" — full-space tabula rasa ≈ random |
//! | `exp_latency_overhead` | §4 "Performance Evaluation Overhead" |
//! | `exp_lfd` | §5.1 learning from demonstration |
//! | `exp_bootstrap` | §5.2 cost-model bootstrapping (+ scaling ablation) |
//! | `exp_incremental` | §5.3 pipeline / relations / hybrid curricula |
//!
//! Every binary accepts `--seed N`, `--quick` (small workload, short
//! training; the default) or `--full` (paper-scale), and writes a JSON
//! result next to its stdout table into `results/`.

pub mod args;
pub mod experiments;
pub mod report;

pub use args::RunArgs;
