//! Minimal command-line handling shared by the experiment binaries.

/// Common run arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunArgs {
    /// Master seed.
    pub seed: u64,
    /// Paper-scale run (`--full`) vs quick run (default).
    pub full: bool,
    /// Episode-collection worker threads (`--workers N`; 1 = the
    /// legacy sequential trainer). Honored by the experiments built on
    /// the plain training loop; phase-interleaved trainers
    /// (bootstrap/LfD/incremental) stay sequential and say so.
    pub workers: usize,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            seed: 42,
            full: false,
            workers: 1,
        }
    }
}

impl RunArgs {
    /// Parses `--seed N` and `--quick`/`--full` from an argument
    /// iterator; unknown arguments abort with a usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut out = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--seed" => {
                    let v = args
                        .next()
                        .ok_or_else(|| "--seed requires a value".to_string())?;
                    out.seed = v.parse().map_err(|_| format!("invalid seed `{v}`"))?;
                }
                "--full" => out.full = true,
                "--quick" => out.full = false,
                "--workers" => {
                    let v = args
                        .next()
                        .ok_or_else(|| "--workers requires a value".to_string())?;
                    out.workers = v
                        .parse::<usize>()
                        .map_err(|_| format!("invalid worker count `{v}`"))?
                        .max(1);
                }
                "--help" | "-h" => {
                    return Err("usage: [--seed N] [--quick|--full] [--workers N]".to_string())
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(out)
    }

    /// Warns (once, to stderr) that `binary` collects episodes
    /// sequentially when `--workers > 1` was passed — for the
    /// phase-interleaved experiments the parallel trainer doesn't
    /// cover.
    pub fn warn_if_sequential(&self, binary: &str) {
        if self.workers > 1 {
            eprintln!(
                "{binary}: the phase-interleaved trainer collects sequentially; \
                 --workers {} ignored",
                self.workers
            );
        }
    }

    /// Parses from the process environment (skipping `argv[0]`).
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<RunArgs, String> {
        RunArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.seed, 42);
        assert!(!a.full);
    }

    #[test]
    fn seed_and_full() {
        let a = parse(&["--seed", "7", "--full"]).unwrap();
        assert_eq!(a.seed, 7);
        assert!(a.full);
        let b = parse(&["--full", "--quick"]).unwrap();
        assert!(!b.full);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "x"]).is_err());
        assert!(parse(&["--wat"]).is_err());
        assert!(parse(&["--help"]).is_err());
        assert!(parse(&["--workers"]).is_err());
        assert!(parse(&["--workers", "x"]).is_err());
    }

    #[test]
    fn workers() {
        assert_eq!(parse(&[]).unwrap().workers, 1);
        assert_eq!(parse(&["--workers", "4"]).unwrap().workers, 4);
        // Zero coerces to the sequential trainer.
        assert_eq!(parse(&["--workers", "0"]).unwrap().workers, 1);
    }
}
