//! Result rendering: stdout tables and JSON files.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Renders a two-column-plus table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "{cell:<w$}  ");
        }
        out.push('\n');
    };
    write_row(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().map(|w| w + 2).sum();
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Serialises a result to `results/<name>.json` (best effort: failures
/// are reported to stderr, not fatal — the stdout table is the primary
/// artifact).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("(wrote {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialise {name}: {e}"),
    }
}

/// Formats a fraction as a percentage string (Figure 3a's y-axis).
pub fn pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["query", "cost"],
            &[
                vec!["1a".into(), "123.4".into()],
                vec!["22c".into(), "9.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("query"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("1a"));
        assert!(lines[3].contains("22c"));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(5.4), "540.0%");
        assert_eq!(pct(0.985), "98.5%");
    }
}
