//! §4 "Performance Evaluation Overhead" — what latency-as-reward costs.
//!
//! The paper's footnote 2: using query latency as the reward signal from
//! scratch produced initial plans that "could not be executed in any
//! reasonable amount of time". Here we train (a) a tabula-rasa agent on
//! the latency reward — every episode *executes* (simulates) its plan,
//! so the training bill is the sum of all those latencies — and (b) a
//! cost-reward agent that never executes during training. We report the
//! cumulative simulated execution time, its distribution over the first
//! vs last training quarter, and the count of catastrophic episodes.

use super::common::{agent_for, default_policy, join_env, planner_context, Scale};
use hfqo_opt::{Planner, TraditionalPlanner};
use hfqo_rejoin::{train_parallel, QueryOrder, RewardMode, TrainerConfig};
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Result of the evaluation-overhead experiment.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyOverheadResult {
    /// Total simulated execution time spent training on latency rewards
    /// (seconds).
    pub latency_training_exec_s: f64,
    /// Execution time of the first training quarter (seconds) — where
    /// the random-policy catastrophes live.
    pub first_quarter_exec_s: f64,
    /// Execution time of the last training quarter (seconds).
    pub last_quarter_exec_s: f64,
    /// Episodes whose latency exceeded 100× the expert mean.
    pub catastrophic_episodes: usize,
    /// Mean expert latency over the workload (milliseconds).
    pub expert_mean_ms: f64,
    /// Worst single episode latency (milliseconds).
    pub worst_ms: f64,
    /// Final cost ratio of the latency-trained agent.
    pub final_ratio: f64,
    /// Episodes trained.
    pub episodes: usize,
}

/// Runs the experiment, collecting episodes on `workers` threads.
pub fn run(
    bundle: &WorkloadBundle,
    scale: Scale,
    seed: u64,
    workers: usize,
) -> LatencyOverheadResult {
    let mut rng = StdRng::seed_from_u64(seed);

    // Expert latency baseline, planned through the unified trait.
    let ctx = planner_context(bundle);
    let expert: &dyn Planner = &TraditionalPlanner::new();
    let mut env = join_env(bundle, QueryOrder::Shuffle, RewardMode::InverseLatency);
    let mut expert_sum = 0.0;
    for (i, q) in bundle.queries.iter().enumerate() {
        let planned = expert.plan(&ctx, q).expect("plannable");
        expert_sum += env.simulate_latency(i, &planned.plan, &mut rng);
    }
    let expert_mean_ms = expert_sum / bundle.queries.len().max(1) as f64;

    // Tabula-rasa latency-reward training.
    let mut agent = agent_for(&env, default_policy(), &mut rng);
    drop(env);
    let log = train_parallel(
        |_w| join_env(bundle, QueryOrder::Shuffle, RewardMode::InverseLatency),
        &mut agent,
        TrainerConfig::new(scale.episodes).with_workers(workers),
        &mut rng,
    );
    let latencies: Vec<f64> = log.records.iter().filter_map(|r| r.latency_ms).collect();
    let total_ms: f64 = latencies.iter().sum();
    let quarter = latencies.len() / 4;
    let first_quarter_ms: f64 = latencies.iter().take(quarter).sum();
    let last_quarter_ms: f64 = latencies.iter().rev().take(quarter).sum();
    let catastrophic = latencies
        .iter()
        .filter(|&&l| l > 100.0 * expert_mean_ms)
        .count();

    LatencyOverheadResult {
        latency_training_exec_s: total_ms / 1e3,
        first_quarter_exec_s: first_quarter_ms / 1e3,
        last_quarter_exec_s: last_quarter_ms / 1e3,
        catastrophic_episodes: catastrophic,
        expert_mean_ms,
        worst_ms: log.worst_latency_ms().unwrap_or(0.0),
        final_ratio: log.final_geo_ratio(scale.ma_window).unwrap_or(f64::NAN),
        episodes: scale.episodes,
    }
}

#[cfg(test)]
mod tests {
    use super::super::common::imdb_bundle;
    use super::*;

    #[test]
    fn overhead_is_front_loaded() {
        let scale = Scale {
            base_rows: 250,
            episodes: 160,
            ma_window: 40,
        };
        let bundle = imdb_bundle(scale, 8);
        let queries: Vec<_> = bundle
            .queries
            .iter()
            .filter(|q| q.relation_count() <= 6)
            .take(8)
            .cloned()
            .collect();
        let small = WorkloadBundle {
            db: bundle.db,
            stats: bundle.stats,
            queries,
        };
        let result = run(&small, scale, 8, 1);
        assert!(result.expert_mean_ms > 0.0);
        assert!(result.latency_training_exec_s > 0.0);
        assert!(result.worst_ms >= result.expert_mean_ms);
        // The untrained first quarter should be at least as expensive to
        // execute as the trained last quarter.
        assert!(
            result.first_quarter_exec_s >= result.last_quarter_exec_s * 0.8,
            "first {} vs last {}",
            result.first_quarter_exec_s,
            result.last_quarter_exec_s
        );
    }
}
