//! §4 "Search Space Size" — the naive full-space agent.
//!
//! The paper reports that a naive extension of ReJOIN to the entire
//! execution-plan search space "did not out-perform random choice even
//! with 72 hours of training", while join-order-only learning became
//! competitive within ~9 000 episodes. This experiment trains (a) a
//! join-order-only agent and (b) a flat full-space agent for the *same*
//! episode budget and compares both against (c) the random planner.

use super::common::{agent_for, default_policy, join_env, planner_context, Scale};
use hfqo_opt::{Planner, RandomPlanner, TraditionalPlanner};
use hfqo_rejoin::{
    train_parallel, EnvContext, FullPlanEnv, QueryOrder, RewardMode, StageSet, TrainerConfig,
};
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Result of the search-space experiment.
#[derive(Debug, Clone, Serialize)]
pub struct NaiveResult {
    /// Final moving-average cost ratio of the join-order-only agent.
    pub join_order_ratio: f64,
    /// Final moving-average cost ratio of the flat full-space agent.
    pub full_space_ratio: f64,
    /// Mean cost ratio of uniformly random plans.
    pub random_ratio: f64,
    /// Episodes trained (each agent).
    pub episodes: usize,
}

/// Runs the experiment, collecting episodes on `workers` threads.
pub fn run(bundle: &WorkloadBundle, scale: Scale, seed: u64, workers: usize) -> NaiveResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = TrainerConfig::new(scale.episodes).with_workers(workers);

    // (a) Join-order-only agent.
    let mut agent = agent_for(
        &join_env(bundle, QueryOrder::Shuffle, RewardMode::LogRelative),
        default_policy(),
        &mut rng,
    );
    let join_log = train_parallel(
        |_w| join_env(bundle, QueryOrder::Shuffle, RewardMode::LogRelative),
        &mut agent,
        config,
        &mut rng,
    );

    // (b) Flat full-space agent, identical budget.
    let make_full_env = |_w: usize| {
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        let mut full_env = FullPlanEnv::new(
            ctx,
            &bundle.queries,
            bundle.max_rels().max(2),
            QueryOrder::Shuffle,
            RewardMode::LogRelative,
            StageSet::full(),
        );
        full_env.require_connected = true;
        full_env
    };
    let mut full_agent = agent_for(&make_full_env(0), default_policy(), &mut rng);
    let full_log = train_parallel(make_full_env, &mut full_agent, config, &mut rng);

    // (c) Random plans, drawn through the unified `Planner` trait (the
    // same floor baseline the serving layer can mount).
    let ctx = planner_context(bundle);
    let expert: &dyn Planner = &TraditionalPlanner::new();
    let random: &dyn Planner = &RandomPlanner::new(seed ^ 0xF100);
    // Geometric mean, matching the agents' reporting metric.
    let mut random_ln_sum = 0.0f64;
    let mut random_n = 0usize;
    for q in &bundle.queries {
        let expert_cost = expert.plan(&ctx, q).expect("plannable").cost;
        for _ in 0..3 {
            let drawn = random.plan(&ctx, q).expect("plannable").cost;
            random_ln_sum += (drawn / expert_cost).max(1e-12).ln();
            random_n += 1;
        }
    }

    NaiveResult {
        join_order_ratio: join_log
            .final_geo_ratio(scale.ma_window)
            .unwrap_or(f64::NAN),
        full_space_ratio: full_log
            .final_geo_ratio(scale.ma_window)
            .unwrap_or(f64::NAN),
        random_ratio: (random_ln_sum / random_n.max(1) as f64).exp(),
        episodes: scale.episodes,
    }
}

#[cfg(test)]
mod tests {
    use super::super::common::imdb_bundle;
    use super::*;

    #[test]
    fn smoke_runs_and_orders_sanely() {
        let scale = Scale {
            base_rows: 250,
            episodes: 120,
            ma_window: 40,
        };
        let bundle = imdb_bundle(scale, 6);
        let queries: Vec<_> = bundle
            .queries
            .iter()
            .filter(|q| q.relation_count() <= 6)
            .take(10)
            .cloned()
            .collect();
        let small = WorkloadBundle {
            db: bundle.db,
            stats: bundle.stats,
            queries,
        };
        let result = run(&small, scale, 6, 2);
        assert!(result.join_order_ratio.is_finite());
        assert!(result.full_space_ratio.is_finite());
        assert!(
            result.random_ratio > 1.0,
            "random should be worse than expert"
        );
        // Even at this tiny budget, the smaller search space should not
        // be *worse* than the bigger one by a large factor.
        assert!(result.join_order_ratio < result.full_space_ratio * 5.0);
    }
}
