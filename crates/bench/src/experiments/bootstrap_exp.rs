//! §5.2 — cost-model bootstrapping and the reward-scaling ablation.
//!
//! Phase 1 trains on the cost model ("training wheels"), Phase 2
//! switches to latency. The paper predicts that switching to *raw*
//! latency shifts the reward range and destabilises the converged
//! policy, while mapping latency into the observed cost range (the
//! `r_l` formula) keeps it stable. We run both variants and report the
//! post-switch disturbance.

use super::common::{agent_for, default_policy, join_env, Scale};
use hfqo_rejoin::{cost_bootstrap, BootstrapConfig, QueryOrder, RewardMode};
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One bootstrapping run's summary.
#[derive(Debug, Clone, Serialize)]
pub struct BootstrapRun {
    /// Whether Phase 2 scaled latency into the cost range.
    pub scaled: bool,
    /// Moving-average cost ratio just before the phase switch.
    pub ratio_before_switch: f64,
    /// Worst moving-average cost ratio within the window after the
    /// switch (the "disturbance").
    pub worst_ratio_after_switch: f64,
    /// Final cost ratio at the end of Phase 2.
    pub final_ratio: f64,
    /// Observed Phase-1 cost range.
    pub cost_range: (f64, f64),
    /// Observed Phase-1 latency range (ms).
    pub latency_range: (f64, f64),
}

/// Result of the bootstrapping experiment.
#[derive(Debug, Clone, Serialize)]
pub struct BootstrapResult {
    /// The scaled (paper-proposal) run.
    pub scaled: BootstrapRun,
    /// The unscaled ablation.
    pub unscaled: BootstrapRun,
    /// Episodes per phase.
    pub phase1_episodes: usize,
    /// Phase-2 episodes.
    pub phase2_episodes: usize,
}

fn one_run(bundle: &WorkloadBundle, scale: Scale, seed: u64, scale_rewards: bool) -> BootstrapRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = join_env(bundle, QueryOrder::Shuffle, RewardMode::NegLogCost);
    let mut agent = agent_for(&env, default_policy(), &mut rng);
    let config = BootstrapConfig {
        phase1_episodes: scale.episodes / 2,
        observe_episodes: (scale.episodes / 10).max(20),
        phase2_episodes: scale.episodes / 2,
        scale_rewards,
        ..Default::default()
    };
    let outcome = cost_bootstrap(&mut env, &mut agent, &config, &mut rng);
    let window = scale.ma_window.min(config.phase1_episodes / 2).max(10);
    let ma = outcome.log.moving_geo_ratio(window);
    let before = ma
        .iter()
        .rfind(|(ep, _)| *ep < outcome.phase_boundary)
        .map(|(_, r)| *r)
        .unwrap_or(f64::NAN);
    let after_window = outcome.phase_boundary + scale.episodes / 4;
    let worst_after = ma
        .iter()
        .filter(|(ep, _)| *ep >= outcome.phase_boundary && *ep < after_window)
        .map(|(_, r)| *r)
        .fold(f64::NAN, f64::max);
    BootstrapRun {
        scaled: scale_rewards,
        ratio_before_switch: before,
        worst_ratio_after_switch: worst_after,
        final_ratio: outcome.log.final_geo_ratio(window).unwrap_or(f64::NAN),
        cost_range: outcome.scaler.cost_range(),
        latency_range: outcome.scaler.latency_range(),
    }
}

/// Runs both variants.
pub fn run(bundle: &WorkloadBundle, scale: Scale, seed: u64) -> BootstrapResult {
    BootstrapResult {
        scaled: one_run(bundle, scale, seed, true),
        unscaled: one_run(bundle, scale, seed, false),
        phase1_episodes: scale.episodes / 2,
        phase2_episodes: scale.episodes / 2,
    }
}

#[cfg(test)]
mod tests {
    use super::super::common::imdb_bundle;
    use super::*;

    #[test]
    fn both_variants_run_and_report_ranges() {
        let scale = Scale {
            base_rows: 250,
            episodes: 240,
            ma_window: 40,
        };
        let bundle = imdb_bundle(scale, 13);
        let queries: Vec<_> = bundle
            .queries
            .iter()
            .filter(|q| q.relation_count() <= 6)
            .take(8)
            .cloned()
            .collect();
        let small = WorkloadBundle {
            db: bundle.db,
            stats: bundle.stats,
            queries,
        };
        let result = run(&small, scale, 13);
        assert!(result.scaled.scaled);
        assert!(!result.unscaled.scaled);
        for run in [&result.scaled, &result.unscaled] {
            assert!(run.final_ratio.is_finite());
            let (c_min, c_max) = run.cost_range;
            let (l_min, l_max) = run.latency_range;
            assert!(c_min <= c_max);
            assert!(l_min <= l_max);
            assert!(l_min > 0.0);
        }
    }
}
