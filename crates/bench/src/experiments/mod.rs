//! Experiment implementations, one module per paper artifact.

pub mod bootstrap_exp;
pub mod common;
pub mod fig3a;
pub mod fig3b;
pub mod fig3c;
pub mod incremental_exp;
pub mod latency_overhead;
pub mod lfd;
pub mod naive;

pub use common::Scale;
