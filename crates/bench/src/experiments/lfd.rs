//! §5.1 — learning from demonstration vs tabula rasa.
//!
//! The claim: an agent that first learns to predict the expert's
//! outcomes (and then fine-tunes on its own latencies) masters the task
//! with far less training and — critically — without ever executing the
//! catastrophic plans a tabula-rasa latency learner stumbles through.

use super::common::{agent_for, default_policy, join_env, Scale};
use hfqo_rejoin::{
    learn_from_demonstration, train, DemonstrationConfig, QueryOrder, RewardMode, TrainerConfig,
};
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Result of the learning-from-demonstration comparison.
#[derive(Debug, Clone, Serialize)]
pub struct LfdResult {
    /// Fine-tuning episodes the LfD agent ran.
    pub lfd_episodes: usize,
    /// Final cost ratio of the LfD agent.
    pub lfd_final_ratio: f64,
    /// Worst latency the LfD agent caused (ms).
    pub lfd_worst_ms: f64,
    /// Slip re-training events.
    pub lfd_retrains: usize,
    /// Final cost ratio of the tabula-rasa agent (same episode budget,
    /// including the LfD pretraining budget converted to episodes).
    pub tabula_final_ratio: f64,
    /// Worst latency the tabula-rasa agent caused (ms).
    pub tabula_worst_ms: f64,
    /// Mean expert latency (ms).
    pub expert_mean_ms: f64,
}

/// Runs the comparison.
pub fn run(bundle: &WorkloadBundle, scale: Scale, seed: u64) -> LfdResult {
    let episodes = (scale.episodes / 4).max(100);
    let mut rng = StdRng::seed_from_u64(seed);

    // Learning from demonstration.
    let mut env = join_env(bundle, QueryOrder::Cycle, RewardMode::InverseLatency);
    let config = DemonstrationConfig {
        finetune_episodes: episodes,
        pretrain_steps: 600,
        ..Default::default()
    };
    let lfd = learn_from_demonstration(&mut env, &config, &mut rng);

    // Tabula rasa on the same reward with the same episode budget.
    let mut env2 = join_env(bundle, QueryOrder::Cycle, RewardMode::InverseLatency);
    let mut agent = agent_for(&env2, default_policy(), &mut rng);
    let tabula_log = train(
        &mut env2,
        &mut agent,
        TrainerConfig::new(episodes),
        &mut rng,
    );

    let expert_mean_ms =
        lfd.expert_latency_ms.iter().sum::<f64>() / lfd.expert_latency_ms.len().max(1) as f64;
    LfdResult {
        lfd_episodes: episodes,
        lfd_final_ratio: lfd.log.final_geo_ratio(scale.ma_window).unwrap_or(f64::NAN),
        lfd_worst_ms: lfd.worst_latency_ms,
        lfd_retrains: lfd.retrain_events.len(),
        tabula_final_ratio: tabula_log
            .final_geo_ratio(scale.ma_window)
            .unwrap_or(f64::NAN),
        tabula_worst_ms: tabula_log.worst_latency_ms().unwrap_or(0.0),
        expert_mean_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::super::common::imdb_bundle;
    use super::*;

    #[test]
    fn lfd_avoids_the_worst_plans() {
        let scale = Scale {
            base_rows: 250,
            episodes: 320,
            ma_window: 40,
        };
        let bundle = imdb_bundle(scale, 12);
        let queries: Vec<_> = bundle
            .queries
            .iter()
            .filter(|q| q.relation_count() <= 6)
            .take(8)
            .cloned()
            .collect();
        let small = WorkloadBundle {
            db: bundle.db,
            stats: bundle.stats,
            queries,
        };
        let result = run(&small, scale, 12);
        assert!(result.lfd_final_ratio.is_finite());
        assert!(result.tabula_final_ratio.is_finite());
        assert!(result.expert_mean_ms > 0.0);
        // The demonstration-guided agent's worst plan should be no worse
        // than the tabula-rasa agent's worst (usually far better).
        assert!(
            result.lfd_worst_ms <= result.tabula_worst_ms * 1.5,
            "lfd worst {} vs tabula worst {}",
            result.lfd_worst_ms,
            result.tabula_worst_ms
        );
    }
}
