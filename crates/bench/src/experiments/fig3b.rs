//! Figure 3b — cost of generated plans for the ten reported queries.
//!
//! After Figure 3a's training protocol, the trained agent plans each of
//! the queries `1a, 1b, 1c, 1d, 8c, 12b, 13c, 15a, 16b, 22c` greedily;
//! the figure compares the optimizer cost of its plan with the expert's.
//! Expected shape: ReJOIN's cost is at or below the expert's on most
//! queries (the trained policy exploits cost-model structure the DP
//! search prices identically but weights differently).

use super::common::join_env;
use hfqo_rejoin::{evaluate_per_query, QueryOrder, ReJoinAgent, RewardMode};
use hfqo_workload::job::FIGURE3B_LABELS;
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One row of Figure 3b.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bRow {
    /// Query label.
    pub label: String,
    /// Expert plan cost.
    pub expert_cost: f64,
    /// Trained ReJOIN plan cost.
    pub rejoin_cost: f64,
}

/// Figure 3b result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bResult {
    /// One row per reported query.
    pub rows: Vec<Fig3bRow>,
    /// Number of queries where ReJOIN's plan costs at most the expert's
    /// (within 0.1 % tolerance).
    pub wins_or_ties: usize,
}

/// Evaluates a trained agent on the Figure 3b queries.
pub fn run(bundle: &WorkloadBundle, agent: &ReJoinAgent, seed: u64) -> Fig3bResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = join_env(bundle, QueryOrder::Cycle, RewardMode::RelativeToExpert);
    let records = evaluate_per_query(&mut env, agent, QueryOrder::Cycle, &mut rng);
    let rows: Vec<Fig3bRow> = FIGURE3B_LABELS
        .iter()
        .filter_map(|&label| {
            records
                .iter()
                .find(|r| r.label.as_deref() == Some(label))
                .map(|r| Fig3bRow {
                    label: label.to_string(),
                    expert_cost: r.expert_cost,
                    rejoin_cost: r.agent_cost,
                })
        })
        .collect();
    let wins_or_ties = rows
        .iter()
        .filter(|r| r.rejoin_cost <= r.expert_cost * 1.001)
        .count();
    Fig3bResult { rows, wins_or_ties }
}

#[cfg(test)]
mod tests {
    use super::super::common::{agent_for, default_policy, imdb_bundle, Scale};
    use super::*;
    use hfqo_rl::Environment as _;

    #[test]
    fn produces_all_ten_rows() {
        let scale = Scale {
            base_rows: 250,
            episodes: 0,
            ma_window: 10,
        };
        let bundle = imdb_bundle(scale, 9);
        let mut rng = StdRng::seed_from_u64(0);
        let env = join_env(&bundle, QueryOrder::Cycle, RewardMode::RelativeToExpert);
        let state_dim = env.state_dim();
        drop(env);
        let env = join_env(&bundle, QueryOrder::Cycle, RewardMode::RelativeToExpert);
        assert_eq!(env.state_dim(), state_dim);
        let agent = agent_for(&env, default_policy(), &mut rng);
        drop(env);
        let result = run(&bundle, &agent, 1);
        assert_eq!(result.rows.len(), 10);
        assert!(result.rows.iter().all(|r| r.expert_cost > 0.0));
        assert!(result.rows.iter().all(|r| r.rejoin_cost > 0.0));
        assert_eq!(result.rows[0].label, "1a");
    }
}
