//! Figure 3b — cost of generated plans for the ten reported queries.
//!
//! After Figure 3a's training protocol, the trained agent — frozen into
//! a [`LearnedPlanner`] — plans each of the queries `1a, 1b, 1c, 1d,
//! 8c, 12b, 13c, 15a, 16b, 22c` through the unified [`Planner`] trait,
//! against the traditional expert planning the same queries through the
//! same trait. (The learned planner reproduces a greedy evaluation
//! episode exactly, so this is the same measurement the env-based
//! harness used to make, minus the hand-rolled episode loop.) Expected
//! shape: ReJOIN's cost is at or below the expert's on most queries.

use super::common::{learned_planner, planner_context};
use hfqo_opt::{Planner, TraditionalPlanner};
use hfqo_rejoin::{LearnedPlanner, ReJoinAgent};
use hfqo_workload::job::FIGURE3B_LABELS;
use hfqo_workload::WorkloadBundle;
use serde::Serialize;

/// One row of Figure 3b.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bRow {
    /// Query label.
    pub label: String,
    /// Expert plan cost.
    pub expert_cost: f64,
    /// Trained ReJOIN plan cost.
    pub rejoin_cost: f64,
}

/// Figure 3b result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3bResult {
    /// One row per reported query.
    pub rows: Vec<Fig3bRow>,
    /// Number of queries where ReJOIN's plan costs at most the expert's
    /// (within 0.1 % tolerance).
    pub wins_or_ties: usize,
}

/// Evaluates a trained agent on the Figure 3b queries through the
/// [`Planner`] trait.
pub fn run(bundle: &WorkloadBundle, agent: &ReJoinAgent) -> Fig3bResult {
    let ctx = planner_context(bundle);
    let expert = TraditionalPlanner::new();
    let rejoin: LearnedPlanner = learned_planner(bundle, agent);
    let rows: Vec<Fig3bRow> = FIGURE3B_LABELS
        .iter()
        .filter_map(|&label| {
            let query = bundle
                .queries
                .iter()
                .find(|q| q.label.as_deref() == Some(label))?;
            let cost = |p: &dyn Planner| p.plan(&ctx, query).expect("plannable").cost;
            Some(Fig3bRow {
                label: label.to_string(),
                expert_cost: cost(&expert),
                rejoin_cost: cost(&rejoin),
            })
        })
        .collect();
    let wins_or_ties = rows
        .iter()
        .filter(|r| r.rejoin_cost <= r.expert_cost * 1.001)
        .count();
    Fig3bResult { rows, wins_or_ties }
}

#[cfg(test)]
mod tests {
    use super::super::common::{agent_for, default_policy, imdb_bundle, join_env, Scale};
    use super::*;
    use hfqo_rejoin::{evaluate_per_query, QueryOrder, RewardMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_all_ten_rows() {
        let scale = Scale {
            base_rows: 250,
            episodes: 0,
            ma_window: 10,
        };
        let bundle = imdb_bundle(scale, 9);
        let mut rng = StdRng::seed_from_u64(0);
        let env = join_env(&bundle, QueryOrder::Cycle, RewardMode::RelativeToExpert);
        let agent = agent_for(&env, default_policy(), &mut rng);
        drop(env);
        let result = run(&bundle, &agent);
        assert_eq!(result.rows.len(), 10);
        assert!(result.rows.iter().all(|r| r.expert_cost > 0.0));
        assert!(result.rows.iter().all(|r| r.rejoin_cost > 0.0));
        assert_eq!(result.rows[0].label, "1a");
    }

    /// The planner-trait evaluation must agree with the legacy env-based
    /// greedy evaluation it replaced.
    #[test]
    fn matches_env_based_evaluation() {
        let scale = Scale {
            base_rows: 250,
            episodes: 0,
            ma_window: 10,
        };
        let bundle = imdb_bundle(scale, 13);
        let mut rng = StdRng::seed_from_u64(1);
        let mut env = join_env(&bundle, QueryOrder::Cycle, RewardMode::RelativeToExpert);
        let agent = agent_for(&env, default_policy(), &mut rng);
        let records = evaluate_per_query(&mut env, &agent, QueryOrder::Cycle, &mut rng);
        let result = run(&bundle, &agent);
        for row in &result.rows {
            let record = records
                .iter()
                .find(|r| r.label.as_deref() == Some(row.label.as_str()))
                .expect("label evaluated");
            assert!(
                (row.rejoin_cost - record.agent_cost).abs() < 1e-6,
                "{}: planner {} vs env {}",
                row.label,
                row.rejoin_cost,
                record.agent_cost
            );
            assert!((row.expert_cost - record.expert_cost).abs() < 1e-6);
        }
    }
}
