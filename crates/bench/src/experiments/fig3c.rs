//! Figure 3c — optimization (planning) time vs relation count.
//!
//! For each query size 4–17, measures the traditional planner's
//! planning time (DP below its threshold, greedy above — like
//! PostgreSQL's exhaustive search switching to GEQO at 12) against a
//! trained [`LearnedPlanner`]'s inference time (one greedy-argmax
//! episode, including featurisation and the operator-selection
//! hand-off). Both strategies are timed through the same `&dyn
//! Planner` call, so the comparison measures exactly what the serving
//! layer pays. The paper's counter-intuitive shape: the learned
//! enumerator's O(n) episodes beat the optimizer's super-linear search
//! once queries grow past a crossover.

use super::common::{agent_for, default_policy};
use hfqo_opt::{Planner, PlannerContext, TraditionalPlanner};
use hfqo_rejoin::{
    train_parallel, EnvContext, JoinOrderEnv, LearnedPlanner, QueryOrder, RewardMode, TrainerConfig,
};
use hfqo_workload::synth::SynthConfig;
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// One row of Figure 3c.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3cRow {
    /// Relation count.
    pub relations: usize,
    /// Expert planning time, microseconds (mean over repeats).
    pub expert_us: f64,
    /// Trained-ReJOIN planning time, microseconds (mean over repeats).
    pub rejoin_us: f64,
}

/// Figure 3c result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3cResult {
    /// One row per relation count.
    pub rows: Vec<Fig3cRow>,
    /// First relation count where ReJOIN plans faster than the expert.
    pub crossover: Option<usize>,
}

/// Runs the sweep, warming the policy on `workers` episode-collection
/// threads. `train_episodes` warms the policy first (planning time is
/// independent of policy quality, but the protocol measures a
/// *trained* agent, as the paper does).
pub fn run(rows_per_table: usize, train_episodes: usize, seed: u64, workers: usize) -> Fig3cResult {
    let sizes: Vec<usize> = (4..=17).collect();
    let bundle = WorkloadBundle::synthetic(
        SynthConfig {
            tables: 17,
            rows: rows_per_table,
            seed,
        },
        &sizes,
        3,
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3C);
    let make_env = |_w: usize| {
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &bundle.queries,
            17,
            QueryOrder::Shuffle,
            RewardMode::LogRelative,
        );
        env.require_connected = true;
        env
    };
    let env = make_env(0);
    let featurizer = env.featurizer();
    let mut agent = agent_for(&env, default_policy(), &mut rng);
    drop(env);
    let _ = train_parallel(
        make_env,
        &mut agent,
        TrainerConfig::new(train_episodes).with_workers(workers),
        &mut rng,
    );

    // Both strategies behind the unified trait: the timings below
    // measure exactly the `Planner::plan` call the serving layer makes.
    let expert = TraditionalPlanner::new();
    let rejoin = LearnedPlanner::freeze(&agent, featurizer).with_require_connected(true);
    let planners: [&dyn Planner; 2] = [&expert, &rejoin];
    let ctx = PlannerContext::new(bundle.db.catalog(), &bundle.stats);
    const REPEATS: usize = 15;
    let mut out_rows = Vec::new();
    for &n in &sizes {
        // All workload queries of this size.
        let indices: Vec<usize> = bundle
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| q.relation_count() == n)
            .map(|(i, _)| i)
            .collect();
        // Mean planning time per strategy, one warm-up per query.
        let mut mean_us = [0.0f64; 2];
        for (pi, planner) in planners.iter().enumerate() {
            let mut total = 0.0f64;
            let mut count = 0usize;
            for &qi in &indices {
                let query = &bundle.queries[qi];
                let _ = planner.plan(&ctx, query).expect("plannable");
                for _ in 0..REPEATS {
                    let start = Instant::now();
                    let planned = planner.plan(&ctx, query).expect("plannable");
                    total += start.elapsed().as_secs_f64() * 1e6;
                    count += 1;
                    std::hint::black_box(planned.cost);
                }
            }
            mean_us[pi] = total / count.max(1) as f64;
        }
        out_rows.push(Fig3cRow {
            relations: n,
            expert_us: mean_us[0],
            rejoin_us: mean_us[1],
        });
    }
    let crossover = out_rows
        .iter()
        .find(|r| r.rejoin_us < r.expert_us)
        .map(|r| r.relations);
    Fig3cResult {
        rows: out_rows,
        crossover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_sizes_and_superlinear_expert() {
        let result = run(300, 40, 3, 1);
        assert_eq!(result.rows.len(), 14);
        assert_eq!(result.rows[0].relations, 4);
        assert_eq!(result.rows[13].relations, 17);
        assert!(result.rows.iter().all(|r| r.expert_us > 0.0));
        assert!(result.rows.iter().all(|r| r.rejoin_us > 0.0));
        // The expert's planning time must grow clearly with query size
        // (Figure 3c's PostgreSQL curve).
        let small = result.rows[0].expert_us;
        let large = result.rows[13].expert_us;
        assert!(
            large > 2.0 * small,
            "expert time not growing: {small:.1}µs → {large:.1}µs"
        );
    }
}
