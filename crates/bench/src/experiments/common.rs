//! Shared experiment plumbing: scales, bundles, agents, environments,
//! and the planner-trait adapters the unified pipeline runs on.

use crate::args::RunArgs;
use hfqo_opt::PlannerContext;
use hfqo_rejoin::{
    EnvContext, Featurizer, JoinOrderEnv, LearnedPlanner, PolicyKind, QueryOrder, ReJoinAgent,
    RewardMode,
};
use hfqo_rl::{Environment, ReinforceConfig};
use hfqo_workload::imdb::ImdbConfig;
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// `title` rows of the IMDB-like database.
    pub base_rows: usize,
    /// Training episodes for convergence experiments.
    pub episodes: usize,
    /// Moving-average window for convergence curves.
    pub ma_window: usize,
}

impl Scale {
    /// Small workload, short training — minutes, suitable for CI.
    pub fn quick() -> Self {
        Self {
            base_rows: 1_500,
            episodes: 3_000,
            ma_window: 100,
        }
    }

    /// Paper-scale: the full 15 000-episode protocol of Figure 3a.
    pub fn full() -> Self {
        Self {
            base_rows: 8_000,
            episodes: 15_000,
            ma_window: 200,
        }
    }

    /// From parsed arguments.
    pub fn from_args(args: RunArgs) -> Self {
        if args.full {
            Self::full()
        } else {
            Self::quick()
        }
    }
}

/// Builds the IMDB + JOB-like bundle at the given scale.
pub fn imdb_bundle(scale: Scale, seed: u64) -> WorkloadBundle {
    WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: scale.base_rows,
            seed,
        },
        seed ^ 0x10B,
    )
}

/// Restricts a bundle to queries of at most `max_rels` relations —
/// used by the latency-reward experiments, whose per-episode latency
/// simulation must count true sub-join cardinalities: beyond ~8
/// relations the counting work dominates a quick run (full-scale runs
/// lift the cap).
pub fn cap_query_size(bundle: WorkloadBundle, max_rels: usize) -> WorkloadBundle {
    let queries = bundle
        .queries
        .into_iter()
        .filter(|q| q.relation_count() <= max_rels)
        .collect();
    WorkloadBundle {
        db: bundle.db,
        stats: bundle.stats,
        queries,
    }
}

/// The default ReJOIN policy configuration: two 128-unit hidden layers
/// (as in the ReJOIN prototype), REINFORCE with baseline.
pub fn default_policy() -> PolicyKind {
    PolicyKind::Reinforce(ReinforceConfig {
        hidden: vec![128, 128],
        lr: 1e-3,
        entropy_coef: 0.01,
        batch_episodes: 8,
        ..Default::default()
    })
}

/// Builds a join-order environment over a bundle.
pub fn join_env<'a>(
    bundle: &'a WorkloadBundle,
    order: QueryOrder,
    reward: RewardMode,
) -> JoinOrderEnv<'a> {
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &bundle.queries,
        bundle.max_rels().max(2),
        order,
        reward,
    );
    // ReJOIN's implementation only offered pairs connected by a join
    // predicate (no cross products), which is why the paper's Figure 3a
    // starts at ~800% rather than the astronomic ratios unrestricted
    // random orders produce. Match it.
    env.require_connected = true;
    env
}

/// Builds an agent shaped to an environment.
pub fn agent_for<E: Environment>(env: &E, kind: PolicyKind, rng: &mut StdRng) -> ReJoinAgent {
    ReJoinAgent::new(env.state_dim(), env.action_dim(), kind, rng)
}

/// The planner-trait context over a bundle, with the same
/// PostgreSQL-like cost parameters the environments reward against.
pub fn planner_context(bundle: &WorkloadBundle) -> PlannerContext<'_> {
    PlannerContext::new(bundle.db.catalog(), &bundle.stats)
}

/// Freezes a trained agent into a [`LearnedPlanner`] shaped exactly
/// like [`join_env`]'s environments: same featurizer width, same
/// connected-pair masking. Plans it produces are identical to the
/// environment's greedy evaluation episodes.
pub fn learned_planner(bundle: &WorkloadBundle, agent: &ReJoinAgent) -> LearnedPlanner {
    LearnedPlanner::freeze(agent, Featurizer::new(bundle.max_rels().max(2)))
        .with_require_connected(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn scales() {
        assert!(Scale::full().episodes > Scale::quick().episodes);
        let args = RunArgs {
            seed: 1,
            full: true,
            workers: 1,
        };
        assert_eq!(Scale::from_args(args), Scale::full());
    }

    #[test]
    fn env_and_agent_shapes_match() {
        let scale = Scale {
            base_rows: 200,
            episodes: 10,
            ma_window: 5,
        };
        let bundle = imdb_bundle(scale, 3);
        let env = join_env(&bundle, QueryOrder::Cycle, RewardMode::RelativeToExpert);
        let mut rng = StdRng::seed_from_u64(0);
        let agent = agent_for(&env, default_policy(), &mut rng);
        let mut features = Vec::new();
        let mut mask = Vec::new();
        let mut env = env;
        env.reset(&mut rng);
        env.state_features(&mut features);
        env.action_mask(&mut mask);
        let (a, p) = agent.select_action(&features, &mask, &mut rng, false);
        assert!(mask[a]);
        assert!(p > 0.0);
    }
}
