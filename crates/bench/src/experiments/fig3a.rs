//! Figure 3a — ReJOIN convergence.
//!
//! Trains ReJOIN on the JOB-like workload with the cost-model reward and
//! reports the moving-average plan cost relative to the expert (the
//! paper's y-axis, in %) against the episode count. The expected shape:
//! starts at several hundred percent, decays over thousands of episodes,
//! and settles at or below 100 %.

use super::common::{agent_for, default_policy, join_env, Scale};
use hfqo_rejoin::{train_parallel, QueryOrder, RewardMode, TrainerConfig};
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// Figure 3a result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3aResult {
    /// `(episode, moving-average cost / expert cost)` series.
    pub series: Vec<(usize, f64)>,
    /// First episode where the moving average reaches expert parity.
    pub convergence_episode: Option<usize>,
    /// Mean ratio over the final window.
    pub final_ratio: f64,
    /// Mean ratio over the first window (the starting point).
    pub initial_ratio: f64,
    /// Episodes trained.
    pub episodes: usize,
}

/// Runs the experiment, collecting episodes on `workers` threads
/// (1 = the exact legacy sequential run). Also returns the trained
/// agent and its environment workload via the bundle, so `fig3b` can
/// reuse the run.
pub fn run(
    bundle: &WorkloadBundle,
    scale: Scale,
    seed: u64,
    workers: usize,
) -> (Fig3aResult, hfqo_rejoin::ReJoinAgent) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut agent = agent_for(
        &join_env(bundle, QueryOrder::Shuffle, RewardMode::LogRelative),
        default_policy(),
        &mut rng,
    );
    let log = train_parallel(
        |_w| join_env(bundle, QueryOrder::Shuffle, RewardMode::LogRelative),
        &mut agent,
        TrainerConfig::new(scale.episodes).with_workers(workers),
        &mut rng,
    );
    let ma = log.moving_geo_ratio(scale.ma_window);
    // Thin the series for reporting: every ~1% of episodes.
    let stride = (scale.episodes / 100).max(1);
    let series: Vec<(usize, f64)> = ma
        .iter()
        .filter(|(ep, _)| ep % stride == 0 || *ep + 1 == scale.episodes)
        .cloned()
        .collect();
    let initial_ratio = log.initial_geo_ratio(scale.ma_window).unwrap_or(f64::NAN);
    let result = Fig3aResult {
        convergence_episode: log.convergence_episode_geo(1.0, scale.ma_window),
        final_ratio: log.final_geo_ratio(scale.ma_window).unwrap_or(f64::NAN),
        initial_ratio,
        episodes: scale.episodes,
        series,
    };
    (result, agent)
}

#[cfg(test)]
mod tests {
    use super::super::common::imdb_bundle;
    use super::*;

    /// A miniature end-to-end convergence check: on a small workload the
    /// agent must improve substantially from its random start.
    #[test]
    fn miniature_convergence() {
        let scale = Scale {
            base_rows: 300,
            episodes: 400,
            ma_window: 50,
        };
        let bundle = imdb_bundle(scale, 5);
        // Restrict to small queries so 400 episodes suffice.
        let queries: Vec<_> = bundle
            .queries
            .iter()
            .filter(|q| q.relation_count() <= 6)
            .cloned()
            .collect();
        let small = WorkloadBundle {
            db: bundle.db,
            stats: bundle.stats,
            queries,
        };
        let (result, _) = run(&small, scale, 5, 1);
        assert_eq!(result.episodes, 400);
        assert!(!result.series.is_empty());
        assert!(result.final_ratio.is_finite());
        assert!(
            result.final_ratio <= result.initial_ratio * 1.1,
            "no improvement: {} → {}",
            result.initial_ratio,
            result.final_ratio
        );
    }
}
