//! §5.3 — the three incremental-learning curricula vs flat training.
//!
//! One agent per curriculum walks its phase sequence (growing pipeline
//! stages, growing relation counts, or both); after every curriculum we
//! evaluate the agent greedily on the *full* task — every query, every
//! pipeline stage — and compare against flat full-space training with
//! the same total episode budget.

use super::common::{agent_for, default_policy, Scale};
use hfqo_rejoin::incremental::admitted_queries;
use hfqo_rejoin::{
    evaluate_per_query, train, Curriculum, EnvContext, FullPlanEnv, QueryOrder, ReJoinAgent,
    RewardMode, StageSet, TrainerConfig,
};
use hfqo_workload::synth::SynthConfig;
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One curriculum's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CurriculumRow {
    /// Curriculum name.
    pub curriculum: String,
    /// Number of phases.
    pub phases: usize,
    /// Mean greedy cost ratio on the full task after training.
    pub full_task_ratio: f64,
}

/// Result of the incremental-learning experiment.
#[derive(Debug, Clone, Serialize)]
pub struct IncrementalResult {
    /// One row per curriculum.
    pub rows: Vec<CurriculumRow>,
    /// Total training episodes per curriculum.
    pub total_episodes: usize,
    /// Workload size.
    pub queries: usize,
}

fn train_curriculum(
    bundle: &WorkloadBundle,
    curriculum: Curriculum,
    total_episodes: usize,
    seed: u64,
) -> (ReJoinAgent, usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let max_rels = bundle.max_rels().max(2);
    let phases = curriculum.phases(max_rels, total_episodes);
    // Shape the agent to the full-plan environment (constant across
    // phases by construction).
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let probe = FullPlanEnv::new(
        ctx,
        &bundle.queries,
        max_rels,
        QueryOrder::Shuffle,
        RewardMode::LogRelative,
        StageSet::full(),
    );
    let mut agent = agent_for(&probe, default_policy(), &mut rng);
    drop(probe);
    let n_phases = phases.len();
    for phase in phases {
        let admitted = admitted_queries(&bundle.queries, phase.max_rels);
        if admitted.is_empty() || phase.episodes == 0 {
            continue;
        }
        let phase_queries: Vec<_> = admitted
            .iter()
            .map(|&i| bundle.queries[i].clone())
            .collect();
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        let mut env = FullPlanEnv::new(
            ctx,
            &phase_queries,
            max_rels,
            QueryOrder::Shuffle,
            RewardMode::LogRelative,
            phase.stages,
        );
        env.require_connected = true;
        let _ = train(
            &mut env,
            &mut agent,
            TrainerConfig::new(phase.episodes),
            &mut rng,
        );
    }
    (agent, n_phases)
}

fn full_task_ratio(bundle: &WorkloadBundle, agent: &ReJoinAgent, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed ^ EVAL_SEED);
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = FullPlanEnv::new(
        ctx,
        &bundle.queries,
        bundle.max_rels().max(2),
        QueryOrder::Cycle,
        RewardMode::LogRelative,
        StageSet::full(),
    );
    env.require_connected = true;
    let records = evaluate_per_query(&mut env, agent, QueryOrder::Cycle, &mut rng);
    records.iter().map(|r| r.cost_ratio()).sum::<f64>() / records.len().max(1) as f64
}

const EVAL_SEED: u64 = 0x9A7;

/// Runs all four curricula on a synthetic workload of 2–8-relation
/// queries (the relations curriculum needs small queries, which real
/// suites lack — the §5.3.2 observation).
pub fn run(scale: Scale, seed: u64) -> IncrementalResult {
    let sizes: Vec<usize> = (2..=8).collect();
    let bundle = WorkloadBundle::synthetic(
        SynthConfig {
            tables: 8,
            rows: scale.base_rows.min(2000),
            seed,
        },
        &sizes,
        4,
    );
    let total_episodes = scale.episodes;
    let mut rows = Vec::new();
    for curriculum in [
        Curriculum::Flat,
        Curriculum::Pipeline,
        Curriculum::Relations,
        Curriculum::Hybrid,
    ] {
        let (agent, phases) = train_curriculum(
            &bundle,
            curriculum,
            total_episodes,
            seed ^ phases_seed(curriculum),
        );
        let ratio = full_task_ratio(&bundle, &agent, seed);
        rows.push(CurriculumRow {
            curriculum: format!("{curriculum:?}"),
            phases,
            full_task_ratio: ratio,
        });
    }
    IncrementalResult {
        rows,
        total_episodes,
        queries: bundle.queries.len(),
    }
}

fn phases_seed(c: Curriculum) -> u64 {
    match c {
        Curriculum::Flat => 1,
        Curriculum::Pipeline => 2,
        Curriculum::Relations => 3,
        Curriculum::Hybrid => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_curricula_produce_finite_ratios() {
        let scale = Scale {
            base_rows: 200,
            episodes: 160,
            ma_window: 40,
        };
        let result = run(scale, 14);
        assert_eq!(result.rows.len(), 4);
        for row in &result.rows {
            assert!(
                row.full_task_ratio.is_finite() && row.full_task_ratio > 0.0,
                "{}: {}",
                row.curriculum,
                row.full_task_ratio
            );
        }
        assert_eq!(result.rows[0].curriculum, "Flat");
        assert!(result.rows[1].phases >= 4);
    }
}
