//! Episode-collection throughput: sequential vs parallel trainer.
//!
//! Trains on a synthetic hash-join workload with *executed* latency
//! rewards — every episode runs its plan through the batch engine, the
//! expensive-episode regime parallel collection exists for — and
//! reports episodes/sec at 1, 2, 4, and 8 workers. On a single-core
//! host the round-barrier overhead makes the multi-worker
//! configurations a measured cost, not a speedup; the scaling claim
//! needs cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfqo_exec::ExecConfig;
use hfqo_rejoin::{
    EnvContext, JoinOrderEnv, ParallelTrainer, PolicyKind, QueryOrder, ReJoinAgent, RewardMode,
    TrainerConfig,
};
use hfqo_rl::{Environment, ReinforceConfig, UpdatePath};
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPISODES: usize = 48;

fn bench_episode_collection(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 6,
        rows: 1_500,
        seed: 5,
    });
    let queries = vec![
        db.query(Shape::Chain, 5, 2, 0).with_label("chain5"),
        db.query(Shape::Star, 5, 1, 1).with_label("star5"),
        db.query(Shape::Chain, 4, 2, 2).with_label("chain4"),
        db.query(Shape::Cycle, 5, 0, 3).with_label("cycle5"),
    ];
    let make_env = |_w: usize| {
        let ctx = EnvContext::new(&db.db, &db.stats)
            .with_executed_latency(ExecConfig::with_budget(2_000_000));
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            5,
            QueryOrder::Cycle,
            RewardMode::InverseLatency,
        );
        env.require_connected = true;
        env
    };

    // Each iteration collects EPISODES episodes: episodes/sec =
    // EPISODES / iteration time.
    let mut group = c.benchmark_group("episode_collection");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("synth_hash_join_48ep", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(11);
                    let env = make_env(0);
                    let mut agent = ReJoinAgent::new(
                        env.state_dim(),
                        env.action_dim(),
                        PolicyKind::Reinforce(ReinforceConfig {
                            hidden: vec![64, 64],
                            batch_episodes: 8,
                            ..Default::default()
                        }),
                        &mut rng,
                    );
                    let trainer =
                        ParallelTrainer::new(TrainerConfig::new(EPISODES).with_workers(workers));
                    let log = trainer.train(make_env, &mut agent, &mut rng);
                    assert_eq!(log.len(), EPISODES);
                    log.len()
                })
            },
        );
    }
    group.finish();
}

/// End-to-end episodes/sec of the sequential trainer with the batched
/// vs per-row network-update path. The two paths are bit-identical in
/// results (parity tests in `hfqo_rl` and the golden log), so the
/// delta here is the wall-clock the mini-batched NN path buys on the
/// full training loop — episode rollout cost included.
fn bench_update_path(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 6,
        rows: 1_500,
        seed: 5,
    });
    let queries = vec![
        db.query(Shape::Chain, 5, 2, 0).with_label("chain5"),
        db.query(Shape::Star, 5, 1, 1).with_label("star5"),
        db.query(Shape::Chain, 4, 2, 2).with_label("chain4"),
        db.query(Shape::Cycle, 5, 0, 3).with_label("cycle5"),
    ];
    let mut group = c.benchmark_group("update_path");
    group.sample_size(10);
    for (label, path) in [
        ("batched", UpdatePath::Batched),
        ("per_row", UpdatePath::PerRow),
    ] {
        group.bench_with_input(
            BenchmarkId::new("synth_48ep_eps_per_sec", label),
            &path,
            |b, &path| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(11);
                    let ctx = EnvContext::new(&db.db, &db.stats);
                    let mut env = JoinOrderEnv::new(
                        ctx,
                        &queries,
                        5,
                        QueryOrder::Cycle,
                        RewardMode::LogRelative,
                    );
                    env.require_connected = true;
                    let mut agent = ReJoinAgent::new(
                        env.state_dim(),
                        env.action_dim(),
                        PolicyKind::Reinforce(ReinforceConfig {
                            hidden: vec![128, 128],
                            batch_episodes: 8,
                            ..Default::default()
                        }),
                        &mut rng,
                    );
                    let config = TrainerConfig::new(EPISODES).with_update_path(path);
                    let log = hfqo_rejoin::train(&mut env, &mut agent, config, &mut rng);
                    assert_eq!(log.len(), EPISODES);
                    log.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_episode_collection, bench_update_path);
criterion_main!(benches);
