//! Serving-layer benchmarks: end-to-end `QuerySession` throughput with
//! the plan cache cold vs warm, and planner-vs-planner (traditional DP
//! vs learned) planning latency, on JOB-like and synthetic workloads.
//!
//! The cold/warm pair is the tentpole claim: with the cache warm, the
//! per-query planning cost collapses to a fingerprint lookup, so
//! serving latency drops to execution cost alone — with identical
//! results either way (asserted below before any timing runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfqo_opt::{Planner, PlannerContext, TraditionalPlanner};
use hfqo_query::QueryGraph;
use hfqo_rejoin::{
    train_parallel, EnvContext, Featurizer, JoinOrderEnv, LearnedPlanner, PolicyKind, QueryOrder,
    ReJoinAgent, RewardMode, TrainerConfig,
};
use hfqo_rl::Environment as _;
use hfqo_serve::QuerySession;
use hfqo_workload::imdb::ImdbConfig;
use hfqo_workload::synth::SynthConfig;
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// DP-range queries (8–9 relations): planning is expensive, execution
/// on the small benchmark databases is not — the regime where a plan
/// cache pays. Queries whose expert plan exceeds the session's work
/// budget are skipped (a handful of synthetic shapes explode even at
/// 300-row tables).
fn serving_queries(
    bundle: &WorkloadBundle,
    session: &QuerySession,
    take: usize,
) -> Vec<QueryGraph> {
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| (8..=9).contains(&q.relation_count()))
        .filter(|q| session.serve_graph(q).is_ok())
        .take(take)
        .cloned()
        .collect();
    session.invalidate_cache();
    queries
}

/// Asserts cold and warm serving return identical rows and work, then
/// prints a one-shot qps summary (medians land in the criterion lines).
fn verify_and_report_qps(label: &str, session: &QuerySession, queries: &[QueryGraph]) {
    for q in queries {
        session.invalidate_cache();
        let cold = session.serve_graph(q).expect("cold serve");
        let warm = session.serve_graph(q).expect("warm serve");
        assert!(!cold.cache_hit && warm.cache_hit);
        let (mut a, mut b) = (cold.outcome.rows.clone(), warm.outcome.rows.clone());
        a.sort();
        b.sort();
        assert_eq!(a, b, "cache hit changed results");
        assert_eq!(cold.outcome.stats.work, warm.outcome.stats.work);
    }
    const ROUNDS: usize = 20;
    let cold_s = {
        let start = Instant::now();
        for _ in 0..ROUNDS {
            session.invalidate_cache();
            for q in queries {
                std::hint::black_box(session.serve_graph(q).expect("serves"));
            }
        }
        start.elapsed().as_secs_f64()
    };
    session.invalidate_cache();
    for q in queries {
        let _ = session.serve_graph(q).expect("warms");
    }
    let warm_s = {
        let start = Instant::now();
        for _ in 0..ROUNDS {
            for q in queries {
                std::hint::black_box(session.serve_graph(q).expect("serves"));
            }
        }
        start.elapsed().as_secs_f64()
    };
    let served = (ROUNDS * queries.len()) as f64;
    eprintln!(
        "serving/{label}: cache-cold {:.0} qps, cache-warm {:.0} qps ({:.1}x)",
        served / cold_s,
        served / warm_s,
        cold_s / warm_s
    );
}

fn bench_serving(c: &mut Criterion) {
    let job = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 300,
            seed: 21,
        },
        21,
    );
    let synth = WorkloadBundle::synthetic(
        SynthConfig {
            tables: 9,
            rows: 300,
            seed: 22,
        },
        &[8, 9],
        2,
    );

    let mut group = c.benchmark_group("serving");
    for (label, bundle) in [("job", &job), ("synth", &synth)] {
        let session = QuerySession::traditional(bundle.db.clone(), bundle.stats.clone());
        let queries = serving_queries(bundle, &session, 4);
        assert!(
            !queries.is_empty(),
            "{label}: no servable 8-9 relation queries"
        );
        verify_and_report_qps(label, &session, &queries);
        group.bench_with_input(
            BenchmarkId::new("cache_cold", label),
            &queries,
            |b, queries| {
                b.iter(|| {
                    session.invalidate_cache();
                    for q in queries {
                        std::hint::black_box(session.serve_graph(q).expect("serves"));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cache_warm", label),
            &queries,
            |b, queries| {
                // Warm every fingerprint once, then time hit-path serves.
                for q in queries {
                    let _ = session.serve_graph(q).expect("warms");
                }
                b.iter(|| {
                    for q in queries {
                        std::hint::black_box(session.serve_graph(q).expect("serves"));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 300,
            seed: 23,
        },
        23,
    );
    // A briefly-trained policy: planning *time* is independent of policy
    // quality, and the protocol measures a trained agent.
    let make_env = |_w: usize| {
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &bundle.queries,
            bundle.max_rels().max(2),
            QueryOrder::Shuffle,
            RewardMode::LogRelative,
        );
        env.require_connected = true;
        env
    };
    let mut rng = StdRng::seed_from_u64(7);
    let env = make_env(0);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    drop(env);
    let _ = train_parallel(make_env, &mut agent, TrainerConfig::new(60), &mut rng);

    let expert = TraditionalPlanner::new();
    let learned = LearnedPlanner::freeze(&agent, Featurizer::new(bundle.max_rels().max(2)))
        .with_require_connected(true);
    let ctx = PlannerContext::new(bundle.db.catalog(), &bundle.stats);

    let mut group = c.benchmark_group("planner_latency");
    for n in [6usize, 9, 12, 17] {
        let Some(query) = bundle.queries.iter().find(|q| q.relation_count() == n) else {
            continue;
        };
        for (name, planner) in [
            ("traditional", &expert as &dyn Planner),
            ("learned", &learned as &dyn Planner),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), query, |b, query| {
                b.iter(|| planner.plan(&ctx, query).expect("plannable").cost)
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serving, bench_planners);
criterion_main!(benches);
