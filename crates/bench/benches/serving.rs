//! Serving-layer benchmarks: end-to-end `QuerySession` throughput with
//! the plan cache cold vs warm, and planner-vs-planner (traditional DP
//! vs learned) planning latency, on JOB-like and synthetic workloads.
//!
//! The cold/warm pair is the tentpole claim: with the cache warm, the
//! per-query planning cost collapses to a fingerprint lookup, so
//! serving latency drops to execution cost alone — with identical
//! results either way (asserted below before any timing runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfqo_catalog::ColumnId;
use hfqo_opt::{Planner, PlannerContext, TraditionalPlanner};
use hfqo_query::{template_fingerprint, BoundColumn, Lit, QueryGraph, RelId, Selection};
use hfqo_rejoin::{
    train_parallel, EnvContext, Featurizer, JoinOrderEnv, LearnedPlanner, PolicyKind, QueryOrder,
    ReJoinAgent, RewardMode, TrainerConfig,
};
use hfqo_rl::Environment as _;
use hfqo_serve::QuerySession;
use hfqo_sql::CompareOp;
use hfqo_workload::imdb::ImdbConfig;
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// DP-range queries (8–9 relations): planning is expensive, execution
/// on the small benchmark databases is not — the regime where a plan
/// cache pays. Queries whose expert plan exceeds the session's work
/// budget are skipped (a handful of synthetic shapes explode even at
/// 300-row tables).
fn serving_queries(
    bundle: &WorkloadBundle,
    session: &QuerySession,
    take: usize,
) -> Vec<QueryGraph> {
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| (8..=9).contains(&q.relation_count()))
        .filter(|q| session.serve_graph(q).is_ok())
        .take(take)
        .cloned()
        .collect();
    session.invalidate_cache();
    queries
}

/// Asserts cold and warm serving return identical rows and work, then
/// prints a one-shot qps summary (medians land in the criterion lines).
fn verify_and_report_qps(label: &str, session: &QuerySession, queries: &[QueryGraph]) {
    for q in queries {
        session.invalidate_cache();
        let cold = session.serve_graph(q).expect("cold serve");
        let warm = session.serve_graph(q).expect("warm serve");
        assert!(!cold.cache_hit && warm.cache_hit);
        let (mut a, mut b) = (cold.outcome.rows.clone(), warm.outcome.rows.clone());
        a.sort();
        b.sort();
        assert_eq!(a, b, "cache hit changed results");
        assert_eq!(cold.outcome.stats.work, warm.outcome.stats.work);
    }
    const ROUNDS: usize = 20;
    let cold_s = {
        let start = Instant::now();
        for _ in 0..ROUNDS {
            session.invalidate_cache();
            for q in queries {
                std::hint::black_box(session.serve_graph(q).expect("serves"));
            }
        }
        start.elapsed().as_secs_f64()
    };
    session.invalidate_cache();
    for q in queries {
        let _ = session.serve_graph(q).expect("warms");
    }
    let warm_s = {
        let start = Instant::now();
        for _ in 0..ROUNDS {
            for q in queries {
                std::hint::black_box(session.serve_graph(q).expect("serves"));
            }
        }
        start.elapsed().as_secs_f64()
    };
    let served = (ROUNDS * queries.len()) as f64;
    eprintln!(
        "serving/{label}: cache-cold {:.0} qps, cache-warm {:.0} qps ({:.1}x)",
        served / cold_s,
        served / warm_s,
        cold_s / warm_s
    );
}

fn bench_serving(c: &mut Criterion) {
    let job = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 300,
            seed: 21,
        },
        21,
    );
    let synth = WorkloadBundle::synthetic(
        SynthConfig {
            tables: 9,
            rows: 300,
            seed: 22,
        },
        &[8, 9],
        2,
    );

    let mut group = c.benchmark_group("serving");
    for (label, bundle) in [("job", &job), ("synth", &synth)] {
        let session = QuerySession::traditional(bundle.db.clone(), bundle.stats.clone());
        let queries = serving_queries(bundle, &session, 4);
        assert!(
            !queries.is_empty(),
            "{label}: no servable 8-9 relation queries"
        );
        verify_and_report_qps(label, &session, &queries);
        group.bench_with_input(
            BenchmarkId::new("cache_cold", label),
            &queries,
            |b, queries| {
                b.iter(|| {
                    session.invalidate_cache();
                    for q in queries {
                        std::hint::black_box(session.serve_graph(q).expect("serves"));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cache_warm", label),
            &queries,
            |b, queries| {
                // Warm every fingerprint once, then time hit-path serves.
                for q in queries {
                    let _ = session.serve_graph(q).expect("warms");
                }
                b.iter(|| {
                    for q in queries {
                        std::hint::black_box(session.serve_graph(q).expect("serves"));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Inverse-CDF zipf sampler over `1..=n` (the vendored `rand` shim has
/// no zipf distribution).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> i64 {
        let u: f64 = rng.gen();
        (self.cdf.partition_point(|&c| c < u) + 1) as i64
    }
}

/// One parameterization of the single-template workload: an
/// 8-relation chain with an equality selection on the zipf-distributed
/// `s0.val` column — the structure is fixed, only the constant varies.
fn template_instance(base: &QueryGraph, value: i64) -> QueryGraph {
    QueryGraph::new(
        base.relations().to_vec(),
        base.joins().to_vec(),
        vec![Selection {
            column: BoundColumn::new(RelId(0), ColumnId(2)),
            op: CompareOp::Eq,
            value: Lit::Int(value),
        }],
        base.aggregates().to_vec(),
        base.group_by().to_vec(),
    )
}

/// The templated-workload benchmark the cache fix targets: every query
/// is the same 8-relation template, parameterized by zipf-sampled
/// constants. Before the (template, params) split this workload got
/// zero cache sharing — every new constant was a cold fingerprint and a
/// full DP plan. Asserts >90% sharing (hits + intra-template re-plans)
/// and cold/warm result identity, then reports qps at 1/8/32/64 serving
/// threads.
fn bench_template_serving(c: &mut Criterion) {
    let synth = SynthDb::build(SynthConfig {
        tables: 8,
        rows: 300,
        seed: 31,
    });
    let base = synth.query(Shape::Chain, 8, 0, 0);
    let zipf = ZipfSampler::new(200, 1.0);
    let mut rng = StdRng::seed_from_u64(13);
    const SERVES: usize = 1024;
    let workload: Vec<QueryGraph> = (0..SERVES)
        .map(|_| template_instance(&base, zipf.sample(&mut rng)))
        .collect();
    let template = template_fingerprint(&workload[0]).0;
    assert!(
        workload
            .iter()
            .all(|q| template_fingerprint(q).0 == template),
        "the whole workload must be one template"
    );

    let session = QuerySession::traditional(synth.db, synth.stats);
    // Correctness before any timing: for a sample of distinct
    // constants, the cold (freshly planned) and warm (cache-served)
    // serves must return identical rows and work.
    for value in [1, 2, 3, 17, 60, 180] {
        let q = template_instance(&base, value);
        session.invalidate_cache();
        let cold = session.serve_graph(&q).expect("cold serve");
        let warm = session.serve_graph(&q).expect("warm serve");
        assert!(!cold.cache_hit && warm.cache_hit);
        let (mut a, mut b) = (cold.outcome.rows.clone(), warm.outcome.rows.clone());
        a.sort();
        b.sort();
        assert_eq!(a, b, "cache hit changed results for val = {value}");
        assert_eq!(cold.outcome.stats.work, warm.outcome.stats.work);
    }

    // The headline number: sharing rate over the zipf workload from a
    // cold cache. Every serve after the first either hits (exact or
    // band-matched) or re-plans within the template — misses stay O(1).
    session.invalidate_cache();
    let before = session.cache_metrics();
    for q in &workload {
        std::hint::black_box(session.serve_graph(q).expect("serves"));
    }
    let m = session.cache_metrics();
    let (hits, replans, misses) = (
        m.hits - before.hits,
        m.replans - before.replans,
        m.misses - before.misses,
    );
    let sharing = (hits + replans) as f64 / (hits + replans + misses) as f64;
    eprintln!(
        "serving/template_zipf: sharing {:.1}% (hits {hits}, replans {replans}, \
         misses {misses}; {} plan buckets)",
        sharing * 100.0,
        m.plans,
    );
    assert!(
        sharing > 0.9,
        "templated workload must share >90% of probes, got {:.3}",
        sharing
    );

    // Throughput scaling: N threads serve disjoint slices of the warm
    // workload against the one shared session.
    for threads in [1usize, 8, 32, 64] {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let session = &session;
                let workload = &workload;
                scope.spawn(move || {
                    for q in workload.iter().skip(t).step_by(threads) {
                        std::hint::black_box(session.serve_graph(q).expect("serves"));
                    }
                });
            }
        });
        let qps = SERVES as f64 / start.elapsed().as_secs_f64();
        eprintln!("serving/template_zipf: {threads:>2} threads, {qps:.0} qps");
    }

    let mut group = c.benchmark_group("serving_template");
    group.bench_with_input(
        BenchmarkId::new("zipf_warm", 1),
        &workload,
        |b, workload| {
            b.iter(|| {
                for q in workload.iter().take(64) {
                    std::hint::black_box(session.serve_graph(q).expect("serves"));
                }
            })
        },
    );
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 300,
            seed: 23,
        },
        23,
    );
    // A briefly-trained policy: planning *time* is independent of policy
    // quality, and the protocol measures a trained agent.
    let make_env = |_w: usize| {
        let ctx = EnvContext::new(&bundle.db, &bundle.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &bundle.queries,
            bundle.max_rels().max(2),
            QueryOrder::Shuffle,
            RewardMode::LogRelative,
        );
        env.require_connected = true;
        env
    };
    let mut rng = StdRng::seed_from_u64(7);
    let env = make_env(0);
    let mut agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );
    drop(env);
    let _ = train_parallel(make_env, &mut agent, TrainerConfig::new(60), &mut rng);

    let expert = TraditionalPlanner::new();
    let learned = LearnedPlanner::freeze(&agent, Featurizer::new(bundle.max_rels().max(2)))
        .with_require_connected(true);
    let ctx = PlannerContext::new(bundle.db.catalog(), &bundle.stats);

    let mut group = c.benchmark_group("planner_latency");
    for n in [6usize, 9, 12, 17] {
        let Some(query) = bundle.queries.iter().find(|q| q.relation_count() == n) else {
            continue;
        };
        for (name, planner) in [
            ("traditional", &expert as &dyn Planner),
            ("learned", &learned as &dyn Planner),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), query, |b, query| {
                b.iter(|| planner.plan(&ctx, query).expect("plannable").cost)
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_template_serving,
    bench_serving,
    bench_planners
);
criterion_main!(benches);
