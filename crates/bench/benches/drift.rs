//! Drift experiment + micro-benchmarks: what does a changing world
//! cost the hands-free loop?
//!
//! The experiment runs the standard scripted drift scenario
//! ([`DriftScenario::imdb_job`]): JOB-like templates served under
//! online training, hit by the full shock battery — append growth,
//! skew shift, a new template arriving mid-run, and a bulk delete.
//! Per shock it reports the expert p95 on the post-shock world, the
//! shock's statistics-drift magnitude, and how many policy swap
//! generations and serves the learned planner needed to return to
//! expert p95 parity. Served-result identity against the freshly
//! planned expert reference is asserted inside the harness on every
//! single serve, before any latency is recorded or reported.
//!
//! The criterion group times the drift machinery in isolation: one
//! append-growth batch, one skew shift, one bulk delete (each on a
//! fresh clone, including the index rebuild), and one mid-traffic
//! statistics refresh (`refresh_after_mutation`).

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_catalog::{ColumnId, TableId};
use hfqo_serve::QuerySession;
use hfqo_workload::synth::{SynthConfig, SynthDb};
use hfqo_workload::{apply_mutation, DriftScenario, Mutation, RecoveryReport};

/// The shock→recovery experiment, printed round by round. Runs once —
/// the scenario is deterministic, so repetitions would report the
/// identical numbers the golden log already pins.
fn drift_recovery_experiment() {
    let scenario = DriftScenario::imdb_job();
    assert!(
        scenario.shocks.len() >= 3,
        "the battery must cover at least three shock kinds"
    );
    eprintln!(
        "drift/experiment: {} templates over the IMDB-like db ({} rows), {} shocks",
        scenario.queries.len(),
        scenario.db.total_rows(),
        scenario.shocks.len()
    );
    let outcome = scenario.run();
    let line = |r: &RecoveryReport| {
        eprintln!(
            "drift/{:<14} expert p95 {:>8.2} ms | drift {:>5.2} | serves {:>3} | {}",
            r.label,
            r.expert_p95_ms,
            r.drift.max_shift(),
            r.serves,
            match r.generations_to_parity {
                Some(g) => format!("recovered in {g} swap generation(s)"),
                None => format!("NOT recovered (last p95 {:.2} ms)", r.final_p95_ms()),
            }
        );
    };
    line(&outcome.warmup);
    for shock in &outcome.shocks {
        line(shock);
    }
    assert!(
        outcome.all_parity(),
        "every shock must recover to expert parity"
    );
}

fn bench_drift(c: &mut Criterion) {
    drift_recovery_experiment();

    let synth = SynthDb::build(SynthConfig {
        tables: 6,
        rows: 400,
        seed: 21,
    });
    let mut group = c.benchmark_group("drift");

    // Each mutation benches on a fresh clone: the timed region is the
    // full operator — value sampling, column rebuild, re-encode, and
    // the index rebuild that keeps scans correct.
    group.bench_function("append_200_rows", |b| {
        let m = Mutation::append(TableId(0), 200, 7);
        b.iter(|| {
            let mut db = synth.db.clone();
            std::hint::black_box(apply_mutation(&mut db, &m).expect("append applies"))
        })
    });
    group.bench_function("skew_shift_column", |b| {
        let m = Mutation::skew_shift(TableId(1), ColumnId(2), 0.6, 7);
        b.iter(|| {
            let mut db = synth.db.clone();
            std::hint::black_box(apply_mutation(&mut db, &m).expect("skew applies"))
        })
    });
    group.bench_function("bulk_delete_30pct", |b| {
        let m = Mutation::bulk_delete(TableId(2), 0.3, 7);
        b.iter(|| {
            let mut db = synth.db.clone();
            std::hint::black_box(apply_mutation(&mut db, &m).expect("delete applies"))
        })
    });
    // The mid-traffic refresh a serving session pays after a shock:
    // index rebuild + statistics rebuild + plan-cache epoch fence.
    group.bench_function("refresh_after_mutation", |b| {
        let mut session = QuerySession::traditional(synth.db.clone(), synth.stats.clone());
        b.iter(|| session.refresh_after_mutation().expect("refresh"))
    });
    group.finish();
}

criterion_group!(benches, bench_drift);
criterion_main!(benches);
