//! Online-learning serving experiment + micro-benchmarks: does closing
//! the loop pay under live traffic?
//!
//! The experiment serves a JOB workload in rounds from a random-init
//! learned policy, two ways:
//!
//! * **frozen** — the PR 4 path: the initial `PolicySnapshot` serves
//!   every round, unchanged;
//! * **online** — the same initial policy, but an [`OnlineTrainer`]
//!   drains the experience log after every round, rewards each served
//!   query on its observed executor work, and hot-swaps a retrained
//!   generation into the session (invalidating the plan cache).
//!
//! Per round it reports p50/p95 of the work-derived serving latency;
//! with learning enabled the tail should collapse toward the expert
//! across generations while the frozen arm stays flat. Result identity
//! against freshly-planned execution is asserted on every single serve
//! before anything is timed or reported.
//!
//! The criterion group times the loop's two moving parts in isolation:
//! one `OnlineTrainer::step` over a drained mini-batch, and one policy
//! hot-swap (freeze + publish + cache invalidation).

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_exec::ExecConfig;
use hfqo_query::QueryGraph;
use hfqo_rejoin::{Featurizer, LearnedPlanner, PolicyKind, ReJoinAgent};
use hfqo_serve::{OnlineConfig, OnlineTrainer, QuerySession, ServedQuery};
use hfqo_storage::Value;
use hfqo_workload::imdb::ImdbConfig;
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROUNDS: usize = 12;
const WORK_BUDGET: u64 = 50_000_000;

fn job_fixture() -> (WorkloadBundle, Vec<QueryGraph>, usize) {
    let bundle = WorkloadBundle::imdb_job(
        ImdbConfig {
            base_rows: 200,
            seed: 41,
        },
        41,
    );
    let queries: Vec<QueryGraph> = bundle
        .queries
        .iter()
        .filter(|q| (4..=7).contains(&q.relation_count()))
        .take(10)
        .cloned()
        .map(hfqo_opt::test_support::with_count)
        .collect();
    let max_rels = queries
        .iter()
        .map(QueryGraph::relation_count)
        .max()
        .unwrap_or(2);
    (bundle, queries, max_rels)
}

fn fresh_agent(featurizer: &Featurizer, seed: u64) -> ReJoinAgent {
    let mut rng = StdRng::seed_from_u64(seed);
    ReJoinAgent::new(
        featurizer.state_dim(),
        featurizer.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    )
}

fn sorted_rows(served: &ServedQuery) -> Vec<Vec<Value>> {
    let mut rows = served.outcome.rows.clone();
    rows.sort();
    rows
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Serves one round; asserts every result equals the freshly-planned
/// reference; returns per-query work-derived latency in ms.
fn serve_round(
    session: &QuerySession,
    queries: &[QueryGraph],
    reference: &[Vec<Vec<Value>>],
    ms_per_unit: f64,
) -> Vec<f64> {
    queries
        .iter()
        .zip(reference)
        .map(|(q, expected)| {
            let served = session.serve_graph(q).expect("serves within budget");
            assert_eq!(&sorted_rows(&served), expected, "results must never change");
            served.outcome.stats.work as f64 * ms_per_unit
        })
        .collect()
}

/// The experiment: frozen vs online tail latency across swap
/// generations. Prints one line per round; criterion's timing lines
/// follow from the group below.
fn online_vs_frozen_experiment() {
    let (bundle, queries, max_rels) = job_fixture();
    assert!(queries.len() >= 6, "JOB fixture must yield queries");
    let featurizer = Featurizer::new(max_rels);
    let config = OnlineConfig::default()
        .with_swap_every(queries.len())
        .with_drain_batch(queries.len());
    let ms_per_unit = config.ms_per_unit;

    // Freshly-planned reference results, once.
    let expert = QuerySession::traditional(bundle.db.clone(), bundle.stats.clone())
        .with_exec_config(ExecConfig::with_budget(WORK_BUDGET));
    let reference: Vec<_> = queries
        .iter()
        .map(|q| sorted_rows(&expert.serve_graph(q).expect("reference serve")))
        .collect();
    let expert_ms: Vec<f64> = queries
        .iter()
        .map(|q| {
            expert.invalidate_cache();
            expert
                .serve_graph(q)
                .expect("expert serve")
                .outcome
                .stats
                .work as f64
                * ms_per_unit
        })
        .collect();
    let mut expert_sorted = expert_ms.clone();
    expert_sorted.sort_by(f64::total_cmp);

    // Frozen arm: the initial policy serves every round unchanged.
    let mut frozen = QuerySession::traditional(bundle.db.clone(), bundle.stats.clone())
        .with_exec_config(ExecConfig::with_budget(WORK_BUDGET));
    frozen.set_planner(Box::new(
        LearnedPlanner::freeze(&fresh_agent(&featurizer, 13), featurizer)
            .with_require_connected(true),
    ));

    // Online arm: identical initial weights, trainer stepping per round.
    let mut online = QuerySession::traditional(bundle.db, bundle.stats)
        .with_exec_config(ExecConfig::with_budget(WORK_BUDGET));
    let mut trainer = OnlineTrainer::attach(
        &mut online,
        fresh_agent(&featurizer, 13),
        featurizer,
        true,
        config,
    );

    eprintln!(
        "online/experiment: {} JOB queries (4-7 relations), {} rounds, swap per round; \
         expert p50 {:.2} ms p95 {:.2} ms",
        queries.len(),
        ROUNDS,
        percentile(&expert_sorted, 0.50),
        percentile(&expert_sorted, 0.95),
    );
    for round in 0..ROUNDS {
        let mut frozen_ms = serve_round(&frozen, &queries, &reference, ms_per_unit);
        let mut online_ms = serve_round(&online, &queries, &reference, ms_per_unit);
        let step = trainer.step(&online);
        frozen_ms.sort_by(f64::total_cmp);
        online_ms.sort_by(f64::total_cmp);
        eprintln!(
            "online/round {round:2} (gen {}): frozen p50 {:8.2} p95 {:9.2} ms | \
             online p50 {:8.2} p95 {:9.2} ms{}",
            trainer.generation(),
            percentile(&frozen_ms, 0.50),
            percentile(&frozen_ms, 0.95),
            percentile(&online_ms, 0.50),
            percentile(&online_ms, 0.95),
            if step.swapped() { "  [swapped]" } else { "" },
        );
    }
    assert!(
        trainer.generation() >= 1,
        "the online arm must publish at least one generation"
    );
}

fn bench_online(c: &mut Criterion) {
    online_vs_frozen_experiment();

    let (bundle, queries, max_rels) = job_fixture();
    let featurizer = Featurizer::new(max_rels);
    let mut session = QuerySession::traditional(bundle.db, bundle.stats)
        .with_exec_config(ExecConfig::with_budget(WORK_BUDGET));
    let mut trainer = OnlineTrainer::attach(
        &mut session,
        fresh_agent(&featurizer, 29),
        featurizer,
        true,
        OnlineConfig::default()
            .with_swap_every(usize::MAX >> 1) // swaps timed separately below
            .with_drain_batch(8),
    );

    // Capture one real 8-experience mini-batch up front, outside any
    // timing: each iteration re-pushes clones (cheap — the graphs are
    // behind `Arc`s) so the timed region is the step alone, not the
    // serving that produced the experiences.
    for q in &queries {
        let _ = session.serve_graph(q).expect("serves");
    }
    let seed_batch = session.experience_log().expect("attached").drain(8);
    assert_eq!(seed_batch.len(), 8);
    session
        .experience_log()
        .expect("attached")
        .drain(usize::MAX);

    let mut group = c.benchmark_group("online");
    // One trainer step over a full 8-experience mini-batch: the
    // marginal cost of learning per 8 served queries.
    group.bench_function("step_8_experiences", |b| {
        b.iter(|| {
            for exp in &seed_batch {
                session
                    .experience_log()
                    .expect("attached")
                    .push(exp.clone());
            }
            std::hint::black_box(trainer.step(&session))
        })
    });
    // One policy hot-swap: flush + freeze + publish + invalidate — the
    // serving-side cost of publishing a generation.
    group.bench_function("hot_swap", |b| {
        b.iter(|| std::hint::black_box(trainer.swap(&session)))
    });
    group.finish();
}

criterion_group!(benches, bench_online);
criterion_main!(benches);
