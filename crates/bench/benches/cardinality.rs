//! Cardinality estimation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_query::RelSet;
use hfqo_stats::{CardinalitySource, EstimatedCardinality};
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};

fn bench_cardinality(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 17,
        rows: 2_000,
        seed: 5,
    });
    let graph = db.query(Shape::Chain, 17, 2, 0);
    let est = EstimatedCardinality::new(&db.stats);
    let mut group = c.benchmark_group("cardinality");
    group.bench_function("set_rows_17rel", |b| {
        b.iter(|| est.set_rows(&graph, RelSet::full(17)))
    });
    group.bench_function("edge_selectivity", |b| {
        b.iter(|| {
            (0..graph.joins().len())
                .map(|i| est.edge_selectivity(&graph, i))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cardinality);
criterion_main!(benches);
