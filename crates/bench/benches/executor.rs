//! Executor operator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_exec::{execute, ExecConfig};
use hfqo_query::{AccessPath, JoinAlgo, PhysicalPlan, PlanNode, RelId};
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};

fn bench_executor(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 3,
        rows: 20_000,
        seed: 11,
    });
    let graph = db.query(Shape::Chain, 2, 1, 0);
    let scan = |rel: u32| PlanNode::Scan {
        rel: RelId(rel),
        path: AccessPath::SeqScan,
    };
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    group.bench_function("seq_scan_20k", |b| {
        let single = db.query(Shape::Chain, 1, 1, 0);
        let plan = PhysicalPlan::new(scan(0));
        b.iter(|| {
            execute(&db.db, &single, &plan, ExecConfig::default())
                .expect("fits budget")
                .rows
                .len()
        })
    });
    for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
        group.bench_function(format!("{}_20k_x_20k", algo.name()), |b| {
            let plan = PhysicalPlan::new(PlanNode::Join {
                algo,
                conds: vec![0],
                left: Box::new(scan(0)),
                right: Box::new(scan(1)),
            });
            b.iter(|| {
                execute(&db.db, &graph, &plan, ExecConfig::default())
                    .expect("fits budget")
                    .rows
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
