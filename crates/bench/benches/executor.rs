//! Executor operator throughput: reference row engine vs vectorized
//! batch pipeline.
//!
//! The workloads mirror what training actually executes — `COUNT(*)`
//! joins (the paper's JOB-style queries) — plus a full-output join where
//! both engines must materialise every column, and a plain scan. Each
//! case runs through `execute_rows` (row-at-a-time reference) and
//! `execute` (batch pipeline) so the speedup is directly visible in one
//! report.

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_exec::{execute, execute_rows, ExecConfig};
use hfqo_opt::test_support::with_count;
use hfqo_query::{AccessPath, AggAlgo, JoinAlgo, PhysicalPlan, PlanNode, RelId};
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};

fn scan(rel: u32) -> PlanNode {
    PlanNode::Scan {
        rel: RelId(rel),
        path: AccessPath::SeqScan,
    }
}

fn join(algo: JoinAlgo, conds: Vec<usize>, left: PlanNode, right: PlanNode) -> PlanNode {
    PlanNode::Join {
        algo,
        conds,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn count(input: PlanNode) -> PlanNode {
    PlanNode::Aggregate {
        algo: AggAlgo::Hash,
        input: Box::new(input),
    }
}

fn bench_executor(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 3,
        rows: 20_000,
        seed: 11,
    });
    let budget = ExecConfig::with_budget(200_000_000);
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);

    // Plain scan, full output: both engines materialise 20k rows.
    {
        let single = db.query(Shape::Chain, 1, 1, 0);
        let plan = PhysicalPlan::new(scan(0));
        group.bench_function("seq_scan_20k/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &single, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("seq_scan_20k/batch", |b| {
            b.iter(|| {
                execute(&db.db, &single, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Hash-join-heavy counting query (the training workload shape):
    // 20k ⋈ 20k ⋈ 20k chain under COUNT(*). Early projection lets the
    // batch engine carry only join keys.
    {
        let graph = with_count(db.query(Shape::Chain, 3, 1, 0));
        let plan = PhysicalPlan::new(count(join(
            JoinAlgo::Hash,
            vec![1],
            join(JoinAlgo::Hash, vec![0], scan(0), scan(1)),
            scan(2),
        )));
        group.bench_function("hash_join_chain3_count/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("hash_join_chain3_count/batch", |b| {
            b.iter(|| {
                execute(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Two-way joins per algorithm, COUNT(*) root.
    let graph2 = with_count(db.query(Shape::Chain, 2, 1, 0));
    for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
        let plan = PhysicalPlan::new(count(join(algo, vec![0], scan(0), scan(1))));
        group.bench_function(format!("{}_20k_x_20k_count/row", algo.name()), |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph2, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function(format!("{}_20k_x_20k_count/batch", algo.name()), |b| {
            b.iter(|| {
                execute(&db.db, &graph2, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Full-output hash join: no projection win — both engines pay final
    // row materialisation; measures the vectorization floor.
    {
        let graph = db.query(Shape::Chain, 2, 1, 0);
        let plan = PhysicalPlan::new(join(JoinAlgo::Hash, vec![0], scan(0), scan(1)));
        group.bench_function("hash_join_20k_full_output/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("hash_join_20k_full_output/batch", |b| {
            b.iter(|| {
                execute(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
