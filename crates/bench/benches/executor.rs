//! Executor operator throughput: reference row engine vs vectorized
//! batch pipeline, plus intra-query parallel scaling and bulk-load
//! throughput.
//!
//! The workloads mirror what training actually executes — `COUNT(*)`
//! joins (the paper's JOB-style queries) — plus a full-output join where
//! both engines must materialise every column, and a plain scan. Each
//! case runs through `execute_rows` (row-at-a-time reference) and
//! `execute` (batch pipeline) so the speedup is directly visible in one
//! report.
//!
//! `parallel_scaling` times the morsel-driven evaluator at 1/2/4/8
//! threads on join-heavy queries, asserting result identity against the
//! serial engine before any timing. On single-CPU containers the
//! medians stay flat (there is nothing to scale onto) — the numbers are
//! only meaningful on multi-core hosts.

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_exec::{execute, execute_rows, ExecConfig};
use hfqo_opt::test_support::with_count;
use hfqo_query::{AccessPath, AggAlgo, JoinAlgo, PhysicalPlan, PlanNode, RelId};
use hfqo_workload::loader::{load_imdb_csv_dir, LoaderOptions};
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};
use std::path::Path;

fn scan(rel: u32) -> PlanNode {
    PlanNode::Scan {
        rel: RelId(rel),
        path: AccessPath::SeqScan,
    }
}

fn join(algo: JoinAlgo, conds: Vec<usize>, left: PlanNode, right: PlanNode) -> PlanNode {
    PlanNode::Join {
        algo,
        conds,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn count(input: PlanNode) -> PlanNode {
    PlanNode::Aggregate {
        algo: AggAlgo::Hash,
        input: Box::new(input),
    }
}

fn bench_executor(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 3,
        rows: 20_000,
        seed: 11,
    });
    let budget = ExecConfig::with_budget(200_000_000);
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);

    // Plain scan, full output: both engines materialise 20k rows.
    {
        let single = db.query(Shape::Chain, 1, 1, 0);
        let plan = PhysicalPlan::new(scan(0));
        group.bench_function("seq_scan_20k/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &single, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("seq_scan_20k/batch", |b| {
            b.iter(|| {
                execute(&db.db, &single, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Hash-join-heavy counting query (the training workload shape):
    // 20k ⋈ 20k ⋈ 20k chain under COUNT(*). Early projection lets the
    // batch engine carry only join keys.
    {
        let graph = with_count(db.query(Shape::Chain, 3, 1, 0));
        let plan = PhysicalPlan::new(count(join(
            JoinAlgo::Hash,
            vec![1],
            join(JoinAlgo::Hash, vec![0], scan(0), scan(1)),
            scan(2),
        )));
        group.bench_function("hash_join_chain3_count/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("hash_join_chain3_count/batch", |b| {
            b.iter(|| {
                execute(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Two-way joins per algorithm, COUNT(*) root.
    let graph2 = with_count(db.query(Shape::Chain, 2, 1, 0));
    for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
        let plan = PhysicalPlan::new(count(join(algo, vec![0], scan(0), scan(1))));
        group.bench_function(format!("{}_20k_x_20k_count/row", algo.name()), |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph2, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function(format!("{}_20k_x_20k_count/batch", algo.name()), |b| {
            b.iter(|| {
                execute(&db.db, &graph2, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Full-output hash join: no projection win — both engines pay final
    // row materialisation; measures the vectorization floor.
    {
        let graph = db.query(Shape::Chain, 2, 1, 0);
        let plan = PhysicalPlan::new(join(JoinAlgo::Hash, vec![0], scan(0), scan(1)));
        group.bench_function("hash_join_20k_full_output/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("hash_join_20k_full_output/batch", |b| {
            b.iter(|| {
                execute(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    group.finish();
}

/// Predicate-kernel throughput across the selectivity range: a 20k-row
/// table filtered at 1%/10%/50%/90% through an int column (plain
/// storage) and a text column (dictionary + run-length encoded), each
/// through the row engine, the batch pipeline's selection-vector
/// kernels, and the 4-thread parallel evaluator. Result identity (and
/// the expected survivor count) is asserted before any timing.
fn bench_filter_selectivity(c: &mut Criterion) {
    use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, TableSchema};
    use hfqo_query::{BoundColumn, Lit, QueryGraph, Relation, Selection};
    use hfqo_sql::CompareOp;
    use hfqo_storage::{Database, Value};

    const ROWS: i64 = 20_000;

    // `v` cycles 0..100 (uniform, no runs — stays plain); `s` holds 100
    // distinct tags in runs of 200 — the dictionary encodes it and RLE
    // stacks on the codes. `v < K` and `s < "sKK"` each pass exactly K%.
    let mut cat = Catalog::new();
    let t = cat
        .add_table(TableSchema::new(
            "f",
            vec![
                Column::new("v", ColumnType::Int),
                Column::new("s", ColumnType::Text),
            ],
        ))
        .expect("fresh catalog");
    let mut db = Database::new(cat);
    {
        let table = db.table_mut(t).expect("table exists");
        for i in 0..ROWS {
            table
                .append_row(&[
                    Value::Int(i % 100),
                    Value::str(format!("s{:02}", (i / 200) % 100)),
                ])
                .expect("schema matches");
        }
        assert_eq!(table.dictionary_encode_strings(4096), 1);
        assert_eq!(table.rle_encode_columns(2), 1);
    }

    let graph_with = |sel: Selection| {
        QueryGraph::new(
            vec![Relation {
                table: t,
                alias: "f".into(),
            }],
            vec![],
            vec![sel],
            vec![],
            vec![],
        )
    };
    let plan = PhysicalPlan::new(scan(0));
    let budget = ExecConfig::with_budget(200_000_000);

    let mut group = c.benchmark_group("filter_selectivity");
    group.sample_size(10);
    for pct in [1i64, 10, 50, 90] {
        let cases = [
            (
                "int",
                graph_with(Selection {
                    column: BoundColumn::new(RelId(0), ColumnId(0)),
                    op: CompareOp::Lt,
                    value: Lit::Int(pct),
                }),
            ),
            (
                "dict",
                graph_with(Selection {
                    column: BoundColumn::new(RelId(0), ColumnId(1)),
                    op: CompareOp::Lt,
                    value: Lit::Str(format!("s{pct:02}")),
                }),
            ),
        ];
        for (col, graph) in &cases {
            // Identity gate: all three engines agree, and the predicate
            // passes exactly pct% of the table.
            let batch = execute(&db, graph, &plan, budget).expect("fits");
            let row = execute_rows(&db, graph, &plan, budget).expect("fits");
            assert_eq!(
                batch.rows.len() as i64,
                ROWS * pct / 100,
                "{col} {pct}% survivor count"
            );
            assert_eq!(batch.rows, row.rows, "{col} {pct}% rows");
            assert_eq!(batch.stats.work, row.stats.work, "{col} {pct}% work");
            let par = execute(&db, graph, &plan, budget.threads(4)).expect("fits");
            assert_eq!(par.rows, batch.rows, "{col} {pct}% parallel rows");
            assert_eq!(
                par.stats.work, batch.stats.work,
                "{col} {pct}% parallel work"
            );

            group.bench_function(format!("{col}_{pct}pct/row"), |b| {
                b.iter(|| {
                    execute_rows(&db, graph, &plan, budget)
                        .expect("fits")
                        .rows
                        .len()
                })
            });
            group.bench_function(format!("{col}_{pct}pct/batch"), |b| {
                b.iter(|| execute(&db, graph, &plan, budget).expect("fits").rows.len())
            });
            group.bench_function(format!("{col}_{pct}pct/parallel4"), |b| {
                b.iter(|| {
                    execute(&db, graph, &plan, budget.threads(4))
                        .expect("fits")
                        .rows
                        .len()
                })
            });
        }
    }
    group.finish();
}

/// Morsel-driven parallel scaling on join-heavy queries. Before timing
/// anything, every (plan, threads) pair is executed once and checked
/// bit-identical to the serial result — a scaling number for a wrong
/// answer is worthless.
fn bench_parallel_scaling(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 3,
        rows: 20_000,
        seed: 11,
    });
    let budget = ExecConfig::with_budget(200_000_000);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let cases: Vec<(&str, _, PhysicalPlan)> = vec![
        (
            "hash_join_20k_x_20k_count",
            with_count(db.query(Shape::Chain, 2, 1, 0)),
            PhysicalPlan::new(count(join(JoinAlgo::Hash, vec![0], scan(0), scan(1)))),
        ),
        (
            "hash_join_chain3_count",
            with_count(db.query(Shape::Chain, 3, 1, 0)),
            PhysicalPlan::new(count(join(
                JoinAlgo::Hash,
                vec![1],
                join(JoinAlgo::Hash, vec![0], scan(0), scan(1)),
                scan(2),
            ))),
        ),
        (
            "hash_join_20k_full_output",
            db.query(Shape::Chain, 2, 1, 0),
            PhysicalPlan::new(join(JoinAlgo::Hash, vec![0], scan(0), scan(1))),
        ),
    ];

    for (name, graph, plan) in &cases {
        let serial = execute(&db.db, graph, plan, budget).expect("fits");
        for threads in [1usize, 2, 4, 8] {
            let cfg = budget.threads(threads);
            // Result identity gate: same rows in the same order, same
            // work total, at every thread count.
            let par = execute(&db.db, graph, plan, cfg).expect("fits");
            assert_eq!(par.rows, serial.rows, "{name} t={threads}");
            assert_eq!(par.stats.work, serial.stats.work, "{name} t={threads}");
            group.bench_function(format!("{name}/t{threads}"), |b| {
                b.iter(|| execute(&db.db, graph, plan, cfg).expect("fits").rows.len())
            });
        }
    }

    group.finish();
}

/// Bulk CSV ingest throughput over the checked-in IMDB sample (rows/s
/// reported via the loader's own wall-clock; the bench measures the
/// whole load including dictionary encoding, indexes, and statistics).
fn bench_loader(c: &mut Criterion) {
    let dir = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/imdb_sample"
    ));
    if !dir.exists() {
        return;
    }
    let opts = LoaderOptions::default();
    let (_, _, report) = load_imdb_csv_dir(dir, &opts).expect("sample loads");
    let rows = report.total_rows();
    assert_eq!(rows, 1437, "checked-in sample size");
    println!(
        "loader: {} rows, {} bytes, {:.0} rows/s (parse+insert only)",
        rows,
        report.total_bytes(),
        report.rows_per_sec()
    );

    let mut group = c.benchmark_group("loader");
    group.sample_size(10);
    group.bench_function("imdb_sample_1k", |b| {
        b.iter(|| {
            load_imdb_csv_dir(dir, &opts)
                .expect("sample loads")
                .2
                .total_rows()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor,
    bench_filter_selectivity,
    bench_parallel_scaling,
    bench_loader
);
criterion_main!(benches);
