//! Executor operator throughput: reference row engine vs vectorized
//! batch pipeline, plus intra-query parallel scaling and bulk-load
//! throughput.
//!
//! The workloads mirror what training actually executes — `COUNT(*)`
//! joins (the paper's JOB-style queries) — plus a full-output join where
//! both engines must materialise every column, and a plain scan. Each
//! case runs through `execute_rows` (row-at-a-time reference) and
//! `execute` (batch pipeline) so the speedup is directly visible in one
//! report.
//!
//! `parallel_scaling` times the morsel-driven evaluator at 1/2/4/8
//! threads on join-heavy queries, asserting result identity against the
//! serial engine before any timing. On single-CPU containers the
//! medians stay flat (there is nothing to scale onto) — the numbers are
//! only meaningful on multi-core hosts.

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_exec::{execute, execute_rows, ExecConfig};
use hfqo_opt::test_support::with_count;
use hfqo_query::{AccessPath, AggAlgo, JoinAlgo, PhysicalPlan, PlanNode, RelId};
use hfqo_workload::loader::{load_imdb_csv_dir, LoaderOptions};
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};
use std::path::Path;

fn scan(rel: u32) -> PlanNode {
    PlanNode::Scan {
        rel: RelId(rel),
        path: AccessPath::SeqScan,
    }
}

fn join(algo: JoinAlgo, conds: Vec<usize>, left: PlanNode, right: PlanNode) -> PlanNode {
    PlanNode::Join {
        algo,
        conds,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn count(input: PlanNode) -> PlanNode {
    PlanNode::Aggregate {
        algo: AggAlgo::Hash,
        input: Box::new(input),
    }
}

fn bench_executor(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 3,
        rows: 20_000,
        seed: 11,
    });
    let budget = ExecConfig::with_budget(200_000_000);
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);

    // Plain scan, full output: both engines materialise 20k rows.
    {
        let single = db.query(Shape::Chain, 1, 1, 0);
        let plan = PhysicalPlan::new(scan(0));
        group.bench_function("seq_scan_20k/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &single, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("seq_scan_20k/batch", |b| {
            b.iter(|| {
                execute(&db.db, &single, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Hash-join-heavy counting query (the training workload shape):
    // 20k ⋈ 20k ⋈ 20k chain under COUNT(*). Early projection lets the
    // batch engine carry only join keys.
    {
        let graph = with_count(db.query(Shape::Chain, 3, 1, 0));
        let plan = PhysicalPlan::new(count(join(
            JoinAlgo::Hash,
            vec![1],
            join(JoinAlgo::Hash, vec![0], scan(0), scan(1)),
            scan(2),
        )));
        group.bench_function("hash_join_chain3_count/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("hash_join_chain3_count/batch", |b| {
            b.iter(|| {
                execute(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Two-way joins per algorithm, COUNT(*) root.
    let graph2 = with_count(db.query(Shape::Chain, 2, 1, 0));
    for algo in [JoinAlgo::Hash, JoinAlgo::Merge] {
        let plan = PhysicalPlan::new(count(join(algo, vec![0], scan(0), scan(1))));
        group.bench_function(format!("{}_20k_x_20k_count/row", algo.name()), |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph2, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function(format!("{}_20k_x_20k_count/batch", algo.name()), |b| {
            b.iter(|| {
                execute(&db.db, &graph2, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    // Full-output hash join: no projection win — both engines pay final
    // row materialisation; measures the vectorization floor.
    {
        let graph = db.query(Shape::Chain, 2, 1, 0);
        let plan = PhysicalPlan::new(join(JoinAlgo::Hash, vec![0], scan(0), scan(1)));
        group.bench_function("hash_join_20k_full_output/row", |b| {
            b.iter(|| {
                execute_rows(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
        group.bench_function("hash_join_20k_full_output/batch", |b| {
            b.iter(|| {
                execute(&db.db, &graph, &plan, budget)
                    .expect("fits")
                    .rows
                    .len()
            })
        });
    }

    group.finish();
}

/// Morsel-driven parallel scaling on join-heavy queries. Before timing
/// anything, every (plan, threads) pair is executed once and checked
/// bit-identical to the serial result — a scaling number for a wrong
/// answer is worthless.
fn bench_parallel_scaling(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 3,
        rows: 20_000,
        seed: 11,
    });
    let budget = ExecConfig::with_budget(200_000_000);
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let cases: Vec<(&str, _, PhysicalPlan)> = vec![
        (
            "hash_join_20k_x_20k_count",
            with_count(db.query(Shape::Chain, 2, 1, 0)),
            PhysicalPlan::new(count(join(JoinAlgo::Hash, vec![0], scan(0), scan(1)))),
        ),
        (
            "hash_join_chain3_count",
            with_count(db.query(Shape::Chain, 3, 1, 0)),
            PhysicalPlan::new(count(join(
                JoinAlgo::Hash,
                vec![1],
                join(JoinAlgo::Hash, vec![0], scan(0), scan(1)),
                scan(2),
            ))),
        ),
        (
            "hash_join_20k_full_output",
            db.query(Shape::Chain, 2, 1, 0),
            PhysicalPlan::new(join(JoinAlgo::Hash, vec![0], scan(0), scan(1))),
        ),
    ];

    for (name, graph, plan) in &cases {
        let serial = execute(&db.db, graph, plan, budget).expect("fits");
        for threads in [1usize, 2, 4, 8] {
            let cfg = budget.threads(threads);
            // Result identity gate: same rows in the same order, same
            // work total, at every thread count.
            let par = execute(&db.db, graph, plan, cfg).expect("fits");
            assert_eq!(par.rows, serial.rows, "{name} t={threads}");
            assert_eq!(par.stats.work, serial.stats.work, "{name} t={threads}");
            group.bench_function(format!("{name}/t{threads}"), |b| {
                b.iter(|| execute(&db.db, graph, plan, cfg).expect("fits").rows.len())
            });
        }
    }

    group.finish();
}

/// Bulk CSV ingest throughput over the checked-in IMDB sample (rows/s
/// reported via the loader's own wall-clock; the bench measures the
/// whole load including dictionary encoding, indexes, and statistics).
fn bench_loader(c: &mut Criterion) {
    let dir = Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/data/imdb_sample"
    ));
    if !dir.exists() {
        return;
    }
    let opts = LoaderOptions::default();
    let (_, _, report) = load_imdb_csv_dir(dir, &opts).expect("sample loads");
    let rows = report.total_rows();
    assert_eq!(rows, 1007, "checked-in sample size");
    println!(
        "loader: {} rows, {} bytes, {:.0} rows/s (parse+insert only)",
        rows,
        report.total_bytes(),
        report.rows_per_sec()
    );

    let mut group = c.benchmark_group("loader");
    group.sample_size(10);
    group.bench_function("imdb_sample_1k", |b| {
        b.iter(|| {
            load_imdb_csv_dir(dir, &opts)
                .expect("sample loads")
                .2
                .total_rows()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_executor,
    bench_parallel_scaling,
    bench_loader
);
criterion_main!(benches);
