//! Neural-network forward/backward at ReJOIN scale (612 → 128 → 128 → 289).

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_nn::{Activation, Matrix, Mlp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mlp = Mlp::new(&[612, 128, 128, 289], Activation::ReLU, &mut rng);
    let x = Matrix::from_vec(1, 612, (0..612).map(|i| (i % 7) as f32 * 0.1).collect());
    let mut group = c.benchmark_group("nn");
    group.bench_function("forward_1x612", |b| b.iter(|| mlp.predict(&x).rows()));
    group.bench_function("forward_backward_1x612", |b| {
        b.iter(|| {
            let cache = mlp.forward(&x);
            let grad = Matrix::from_vec(1, 289, vec![0.01; 289]);
            mlp.backward(&cache, grad).l2_norm()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
