//! State featurisation throughput (the per-step cost of the RL loop).

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_query::Forest;
use hfqo_rejoin::Featurizer;
use hfqo_stats::EstimatedCardinality;
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};

fn bench_featurize(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 17,
        rows: 500,
        seed: 9,
    });
    let graph = db.query(Shape::Chain, 17, 2, 0);
    let est = EstimatedCardinality::new(&db.stats);
    let featurizer = Featurizer::new(17);
    let mut forest = Forest::initial(17);
    forest.merge(0, 1);
    forest.merge(0, 1);
    let mut out = Vec::new();
    let mut mask = Vec::new();
    let mut group = c.benchmark_group("featurize");
    group.bench_function("state_17rel", |b| {
        b.iter(|| {
            featurizer.featurize(&graph, &forest, &est, &mut out);
            out.len()
        })
    });
    group.bench_function("mask_17rel", |b| {
        b.iter(|| {
            featurizer.action_mask(&graph, &forest, false, &mut mask);
            mask.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_featurize);
criterion_main!(benches);
