//! Per-update wall-clock of the NN training path: batched vs per-row.
//!
//! One REINFORCE policy update over B transitions at ReJOIN scale
//! (612 → 128 → 128 → 289 with masked logits), for B ∈ {1, 8, 32,
//! 128}. The batched path assembles the update's transitions into one
//! B×612 matrix and runs a single forward + single backward; the
//! per-row reference runs one forward/backward per transition and
//! accumulates. The two are bit-identical (see the parity tests in
//! `hfqo_rl`), so the delta here is pure wall-clock. An imitation
//! (cross-entropy) group covers the supervised path the same way.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfqo_rl::{Episode, ReinforceAgent, ReinforceConfig, Transition, UpdatePath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STATE_DIM: usize = 612;
const ACTION_DIM: usize = 289;
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

/// A deterministic synthetic episode with `b` transitions at ReJOIN
/// feature/action widths, with a realistically sparse action mask.
fn synthetic_episode(b: usize, rng: &mut StdRng) -> Episode {
    let mut episode = Episode::new();
    for _ in 0..b {
        let features: Vec<f32> = (0..STATE_DIM).map(|_| rng.gen::<f32>() - 0.5).collect();
        let mask: Vec<bool> = (0..ACTION_DIM).map(|i| i % 3 != 1).collect();
        let action = 3 * (rng.gen_range(0..ACTION_DIM / 3));
        episode.transitions.push(Transition {
            features,
            mask,
            action,
            action_prob: 0.1,
            reward: rng.gen::<f32>(),
        });
    }
    episode
}

fn agent_for(path: UpdatePath, rng: &mut StdRng) -> ReinforceAgent {
    let mut agent = ReinforceAgent::new(
        STATE_DIM,
        ACTION_DIM,
        ReinforceConfig {
            hidden: vec![128, 128],
            // One episode per update: iteration time == per-update time.
            batch_episodes: 1,
            ..Default::default()
        },
        rng,
    );
    agent.set_update_path(path);
    agent
}

fn bench_policy_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_policy_update");
    group.sample_size(20);
    for b in BATCH_SIZES {
        let mut rng = StdRng::seed_from_u64(7);
        let episode = synthetic_episode(b, &mut rng);
        for (label, path) in [
            ("batched", UpdatePath::Batched),
            ("per_row", UpdatePath::PerRow),
        ] {
            let mut agent = agent_for(path, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("reinforce_{label}"), b),
                &b,
                |bench, _| {
                    bench.iter(|| {
                        agent.observe(episode.clone());
                        agent.updates()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_imitation_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn_imitation_update");
    group.sample_size(20);
    for b in BATCH_SIZES {
        let mut rng = StdRng::seed_from_u64(11);
        let batch: Vec<(Vec<f32>, Vec<bool>, usize)> = synthetic_episode(b, &mut rng)
            .transitions
            .into_iter()
            .map(|t| (t.features, t.mask, t.action))
            .collect();
        for (label, path) in [
            ("batched", UpdatePath::Batched),
            ("per_row", UpdatePath::PerRow),
        ] {
            let mut agent = agent_for(path, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("imitate_{label}"), b),
                &b,
                |bench, _| bench.iter(|| agent.imitate_step(&batch)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_policy_update, bench_imitation_update);
criterion_main!(benches);
