//! Criterion micro-version of Figure 3c: traditional planning vs ReJOIN
//! inference at several query sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfqo_opt::TraditionalOptimizer;
use hfqo_rejoin::{EnvContext, JoinOrderEnv, PolicyKind, QueryOrder, ReJoinAgent, RewardMode};
use hfqo_rl::Environment as _;
use hfqo_workload::synth::SynthConfig;
use hfqo_workload::WorkloadBundle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_planning(c: &mut Criterion) {
    let sizes = [4usize, 8, 12, 17];
    let bundle = WorkloadBundle::synthetic(
        SynthConfig {
            tables: 17,
            rows: 500,
            seed: 42,
        },
        &sizes,
        1,
    );
    let optimizer = TraditionalOptimizer::new(bundle.db.catalog(), &bundle.stats);
    let mut rng = StdRng::seed_from_u64(0);
    let ctx = EnvContext::new(&bundle.db, &bundle.stats);
    let mut env = JoinOrderEnv::new(
        ctx,
        &bundle.queries,
        17,
        QueryOrder::Fixed(0),
        RewardMode::RelativeToExpert,
    );
    let agent = ReJoinAgent::new(
        env.state_dim(),
        env.action_dim(),
        PolicyKind::default_reinforce(),
        &mut rng,
    );

    let mut group = c.benchmark_group("planning_time");
    for (qi, &n) in sizes.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("expert", n), &qi, |b, &qi| {
            b.iter(|| optimizer.plan(&bundle.queries[qi]).expect("plannable").cost)
        });
        group.bench_with_input(BenchmarkId::new("rejoin", n), &qi, |b, &qi| {
            env.set_order(QueryOrder::Fixed(qi));
            let _ = agent.run_episode(&mut env, &mut rng, true); // warm caches
            b.iter(|| agent.run_episode(&mut env, &mut rng, true).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
