//! Join enumeration strategies: DP vs greedy vs random.

use criterion::{criterion_group, criterion_main, Criterion};
use hfqo_cost::{CostModel, CostParams};
use hfqo_opt::{dp::dp_plan, greedy::greedy_plan, random_plan};
use hfqo_stats::EstimatedCardinality;
use hfqo_workload::synth::{Shape, SynthConfig, SynthDb};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_enumerators(c: &mut Criterion) {
    let db = SynthDb::build(SynthConfig {
        tables: 9,
        rows: 500,
        seed: 7,
    });
    let graph = db.query(Shape::Chain, 8, 2, 0);
    let params = CostParams::default();
    let model = CostModel::new(&params, &db.stats);
    let cards = EstimatedCardinality::new(&db.stats);
    let mut group = c.benchmark_group("join_enum_8rel");
    group.bench_function("dp", |b| {
        b.iter(|| dp_plan(&graph, db.db.catalog(), &model, &cards))
    });
    group.bench_function("greedy", |b| {
        b.iter(|| greedy_plan(&graph, db.db.catalog(), &model, &cards))
    });
    let mut rng = StdRng::seed_from_u64(1);
    group.bench_function("random", |b| {
        b.iter(|| random_plan(&graph, db.db.catalog(), &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_enumerators);
criterion_main!(benches);
