//! The database container: catalog + materialised tables + built indexes.

use crate::btree::BTreeIndex;
use crate::error::StorageError;
use crate::hash_index::HashIndex;
use crate::table::Table;
use hfqo_catalog::{Catalog, IndexId, IndexKind, TableId};

/// Materialised data structure backing a catalog index.
#[derive(Debug, Clone)]
pub enum IndexStorage {
    /// Ordered index.
    BTree(BTreeIndex),
    /// Hash index.
    Hash(HashIndex),
}

/// An in-memory database: one [`Table`] per catalog table, one
/// [`IndexStorage`] per catalog index.
#[derive(Debug, Clone)]
pub struct Database {
    catalog: Catalog,
    tables: Vec<Table>,
    indexes: Vec<Option<IndexStorage>>,
}

impl Database {
    /// Creates a database with empty tables shaped to `catalog`.
    pub fn new(catalog: Catalog) -> Self {
        let tables = catalog
            .tables()
            .map(|(_, schema)| Table::new(schema.clone()))
            .collect();
        let indexes = vec![None; catalog.index_count()];
        Self {
            catalog,
            tables,
            indexes,
        }
    }

    /// The catalog this database is shaped to.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The table with the given id.
    pub fn table(&self, id: TableId) -> Result<&Table, StorageError> {
        self.tables
            .get(id.index())
            .ok_or_else(|| StorageError::MissingTable(format!("{id}")))
    }

    /// Mutable access to the table with the given id.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(id.index())
            .ok_or_else(|| StorageError::MissingTable(format!("{id}")))
    }

    /// Replaces the data of a table wholesale (used by bulk loaders).
    pub fn load_table(&mut self, id: TableId, table: Table) -> Result<(), StorageError> {
        let slot = self
            .tables
            .get_mut(id.index())
            .ok_or_else(|| StorageError::MissingTable(format!("{id}")))?;
        if slot.schema() != table.schema() {
            return Err(StorageError::SchemaMismatch(format!(
                "loaded table schema does not match catalog entry `{}`",
                slot.schema().name()
            )));
        }
        *slot = table;
        Ok(())
    }

    /// Builds (or rebuilds) every index declared in the catalog from the
    /// current table data. Call once after bulk loading.
    pub fn build_indexes(&mut self) -> Result<(), StorageError> {
        self.indexes = vec![None; self.catalog.index_count()];
        for i in 0..self.catalog.index_count() {
            let id = IndexId(i as u32);
            let def = self.catalog.index(id)?.clone();
            let table = self.table(def.table())?;
            let col = table
                .column(def.column())
                .ok_or_else(|| StorageError::SchemaMismatch(format!("index `{}`", def.name())))?;
            let pairs = (0..table.row_count()).map(|r| (r, col.get(r)));
            let storage = match def.kind() {
                IndexKind::BTree => IndexStorage::BTree(BTreeIndex::build(pairs)),
                IndexKind::Hash => IndexStorage::Hash(HashIndex::build(pairs)),
            };
            self.indexes[i] = Some(storage);
        }
        Ok(())
    }

    /// The built data structure for an index, if [`build_indexes`] ran.
    ///
    /// [`build_indexes`]: Self::build_indexes
    pub fn index_storage(&self, id: IndexId) -> Option<&IndexStorage> {
        self.indexes.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use hfqo_catalog::{Column, ColumnId, ColumnType, TableSchema};

    fn db() -> (Database, TableId) {
        let mut c = Catalog::new();
        let t = c
            .add_table(TableSchema::new(
                "t",
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("grp", ColumnType::Int),
                ],
            ))
            .unwrap();
        c.add_index("t_id", t, ColumnId(0), IndexKind::BTree, true)
            .unwrap();
        c.add_index("t_grp", t, ColumnId(1), IndexKind::Hash, false)
            .unwrap();
        let mut db = Database::new(c);
        for i in 0..10i64 {
            db.table_mut(t)
                .unwrap()
                .append_row(&[Value::Int(i), Value::Int(i % 3)])
                .unwrap();
        }
        (db, t)
    }

    #[test]
    fn build_and_probe_indexes() {
        let (mut db, _) = db();
        db.build_indexes().unwrap();
        match db.index_storage(IndexId(0)).unwrap() {
            IndexStorage::BTree(b) => {
                assert_eq!(b.lookup_eq(&Value::Int(7)), &[7]);
            }
            _ => panic!("expected btree"),
        }
        match db.index_storage(IndexId(1)).unwrap() {
            IndexStorage::Hash(h) => {
                assert_eq!(h.lookup_eq(&Value::Int(0)), &[0, 3, 6, 9]);
            }
            _ => panic!("expected hash"),
        }
    }

    #[test]
    fn indexes_absent_before_build() {
        let (db, _) = db();
        assert!(db.index_storage(IndexId(0)).is_none());
        assert_eq!(db.total_rows(), 10);
    }

    #[test]
    fn load_table_checks_schema() {
        let (mut db, t) = db();
        let wrong = Table::new(TableSchema::new(
            "t",
            vec![Column::new("other", ColumnType::Text)],
        ));
        assert!(db.load_table(t, wrong).is_err());
        let right = Table::new(db.table(t).unwrap().schema().clone());
        db.load_table(t, right).unwrap();
        assert_eq!(db.table(t).unwrap().row_count(), 0);
    }

    #[test]
    fn missing_table_errors() {
        let (db, _) = db();
        assert!(db.table(TableId(99)).is_err());
    }
}
