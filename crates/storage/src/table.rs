//! In-memory tables.

use crate::column::{ColumnVector, Encoding};
use crate::error::StorageError;
use crate::value::Value;
use hfqo_catalog::{ColumnId, TableSchema};

/// An in-memory columnar table instance.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    columns: Vec<ColumnVector>,
}

impl Table {
    /// An empty table shaped to `schema`.
    pub fn new(schema: TableSchema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnVector::new(c.ty()))
            .collect();
        Self { schema, columns }
    }

    /// An empty table with reserved capacity for `rows` rows.
    pub fn with_capacity(schema: TableSchema, rows: usize) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnVector::with_capacity(c.ty(), rows))
            .collect();
        Self { schema, columns }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// The column vector at `col`.
    pub fn column(&self, col: ColumnId) -> Option<&ColumnVector> {
        self.columns.get(col.index())
    }

    /// Appends one row. The row must match the schema's arity and types
    /// (integers widen into float columns), and NULLs are rejected in
    /// non-nullable columns.
    pub fn append_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        if row.len() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "table `{}` expects {} columns, got {}",
                self.schema.name(),
                self.schema.arity(),
                row.len()
            )));
        }
        for (i, value) in row.iter().enumerate() {
            let col_def = &self.schema.columns()[i];
            if value.is_null() && !col_def.is_nullable() {
                return Err(StorageError::NullViolation {
                    table: self.schema.name().to_string(),
                    column: col_def.name().to_string(),
                });
            }
        }
        // Validation passed; now mutate. A type mismatch mid-row would leave
        // ragged columns, so check types up front too.
        for (i, value) in row.iter().enumerate() {
            let ok = type_matches(self.schema.columns()[i].ty(), value);
            if !ok {
                return Err(StorageError::SchemaMismatch(format!(
                    "value {value} does not fit column `{}.{}` of type {}",
                    self.schema.name(),
                    self.schema.columns()[i].name(),
                    self.schema.columns()[i].ty().name()
                )));
            }
        }
        for (i, value) in row.iter().enumerate() {
            let pushed = self.columns[i].push(value);
            debug_assert!(pushed, "type checked above");
        }
        Ok(())
    }

    /// Materialises the row at `row_id` into `out` (cleared first).
    pub fn read_row_into(&self, row_id: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.get(row_id)));
    }

    /// The value at (`row_id`, `col`).
    #[inline]
    pub fn value_at(&self, row_id: usize, col: ColumnId) -> Value {
        self.columns[col.index()].get(row_id)
    }

    /// All column vectors, in schema order — the batch executor scans
    /// these directly instead of materialising rows.
    #[inline]
    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    /// Appends a batch of pre-built column chunks — the bulk-loader path.
    /// Each chunk must match the schema column's type, all chunks must
    /// have the same length, and non-nullable columns reject chunks
    /// containing NULLs. Validation happens before any mutation, so a
    /// failed append leaves the table unchanged.
    pub fn append_batch(&mut self, chunk: &[ColumnVector]) -> Result<usize, StorageError> {
        if chunk.len() != self.schema.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "table `{}` expects {} columns, got a {}-column batch",
                self.schema.name(),
                self.schema.arity(),
                chunk.len()
            )));
        }
        let rows = chunk.first().map_or(0, |c| c.len());
        for (i, col) in chunk.iter().enumerate() {
            let col_def = &self.schema.columns()[i];
            if col.len() != rows {
                return Err(StorageError::SchemaMismatch(format!(
                    "ragged batch for table `{}`: column `{}` has {} rows, expected {rows}",
                    self.schema.name(),
                    col_def.name(),
                    col.len()
                )));
            }
            if col.ty() != col_def.ty() {
                return Err(StorageError::SchemaMismatch(format!(
                    "batch column `{}.{}` is {}, expected {}",
                    self.schema.name(),
                    col_def.name(),
                    col.ty().name(),
                    col_def.ty().name()
                )));
            }
            if !col_def.is_nullable() && (0..rows).any(|r| col.is_null(r)) {
                return Err(StorageError::NullViolation {
                    table: self.schema.name().to_string(),
                    column: col_def.name().to_string(),
                });
            }
        }
        for (dst, src) in self.columns.iter_mut().zip(chunk) {
            dst.append_column(src);
        }
        Ok(rows)
    }

    /// Dictionary-encodes every plain text column whose cardinality is at
    /// most `max_distinct`, returning how many columns were converted.
    /// Queries see identical values either way (the equivalence suite
    /// pins this); the win is memory and scan locality at IMDB scale.
    pub fn dictionary_encode_strings(&mut self, max_distinct: usize) -> usize {
        let mut converted = 0;
        for col in &mut self.columns {
            if let Some(dict) = col.dictionary_encoded(max_distinct) {
                *col = dict;
                converted += 1;
            }
        }
        converted
    }

    /// Run-length-encodes every integer or dictionary-coded column whose
    /// average run length is at least `min_avg_run` (see
    /// [`ColumnVector::rle_encoded`]). Returns the number of columns
    /// converted. Call after [`Table::dictionary_encode_strings`] so text
    /// columns are code-backed and eligible.
    pub fn rle_encode_columns(&mut self, min_avg_run: usize) -> usize {
        let mut converted = 0;
        for col in &mut self.columns {
            if let Some(rle) = col.rle_encoded(min_avg_run) {
                *col = rle;
                converted += 1;
            }
        }
        converted
    }

    /// Decodes every column back to its plain representation
    /// (dictionary → strings, RLE → dense rows) — the test-path inverse
    /// of the two encode passes.
    pub fn decode_columns(&mut self) {
        for col in &mut self.columns {
            *col = col.decoded();
        }
    }

    /// Per-column physical encodings, in schema order.
    pub fn encodings(&self) -> Vec<Encoding> {
        self.columns.iter().map(ColumnVector::encoding).collect()
    }

    /// Keeps only the rows where `keep` is `true`, rebuilding every
    /// column and re-encoding it to the physical layout it had before
    /// the call — the bulk-delete path of the drift harness. `keep`
    /// must hold exactly one entry per row; on error the table is
    /// unchanged. Returns the surviving row count. Indexes built over
    /// this table refer to the *old* row ids afterwards; callers must
    /// rebuild them (`Database::build_indexes`).
    pub fn retain_rows(&mut self, keep: &[bool]) -> Result<usize, StorageError> {
        if keep.len() != self.row_count() {
            return Err(StorageError::SchemaMismatch(format!(
                "retain mask for table `{}` has {} entries, expected {}",
                self.schema.name(),
                keep.len(),
                self.row_count()
            )));
        }
        let sel: Vec<u32> = keep
            .iter()
            .enumerate()
            .filter_map(|(i, &k)| k.then_some(i as u32))
            .collect();
        for col in &mut self.columns {
            let mut out = ColumnVector::with_capacity(col.ty(), sel.len());
            col.append_selected(&sel, &mut out);
            *col = out.reencoded(col.encoding());
        }
        Ok(sel.len())
    }

    /// Rewrites one column by mapping every row's current value through
    /// `f`, with the same type/nullability validation as
    /// [`Table::append_row`], then re-encodes the result to the
    /// column's previous physical layout — the skew-shift path of the
    /// drift harness. On error the table is unchanged.
    pub fn rebuild_column(
        &mut self,
        col: ColumnId,
        mut f: impl FnMut(usize, Value) -> Value,
    ) -> Result<(), StorageError> {
        let col_def = self.schema.columns().get(col.index()).ok_or_else(|| {
            StorageError::SchemaMismatch(format!(
                "table `{}` has no column #{}",
                self.schema.name(),
                col.index()
            ))
        })?;
        let src = &self.columns[col.index()];
        let mut out = ColumnVector::with_capacity(col_def.ty(), src.len());
        for row in 0..src.len() {
            let value = f(row, src.get(row));
            if value.is_null() && !col_def.is_nullable() {
                return Err(StorageError::NullViolation {
                    table: self.schema.name().to_string(),
                    column: col_def.name().to_string(),
                });
            }
            if !out.push(&value) {
                return Err(StorageError::SchemaMismatch(format!(
                    "value {value} does not fit column `{}.{}` of type {}",
                    self.schema.name(),
                    col_def.name(),
                    col_def.ty().name()
                )));
            }
        }
        self.columns[col.index()] = out.reencoded(src.encoding());
        Ok(())
    }
}

fn type_matches(ty: hfqo_catalog::ColumnType, v: &Value) -> bool {
    use hfqo_catalog::ColumnType::*;
    matches!(
        (ty, v),
        (_, Value::Null)
            | (Int, Value::Int(_))
            | (Float, Value::Float(_) | Value::Int(_))
            | (Text, Value::Str(_))
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Column, ColumnType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::nullable("b", ColumnType::Text),
            ],
        )
    }

    #[test]
    fn append_and_read() {
        let mut t = Table::new(schema());
        t.append_row(&[Value::Int(1), Value::str("x")]).unwrap();
        t.append_row(&[Value::Int(2), Value::Null]).unwrap();
        assert_eq!(t.row_count(), 2);
        let mut row = Vec::new();
        t.read_row_into(1, &mut row);
        assert_eq!(row, vec![Value::Int(2), Value::Null]);
        assert_eq!(t.value_at(0, ColumnId(1)), Value::str("x"));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(schema());
        let err = t.append_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
        assert_eq!(t.row_count(), 0);
    }

    #[test]
    fn null_violation_rejected() {
        let mut t = Table::new(schema());
        let err = t.append_row(&[Value::Null, Value::Null]).unwrap_err();
        assert!(matches!(err, StorageError::NullViolation { .. }));
    }

    #[test]
    fn retain_rows_keeps_survivors_and_encoding() {
        let mut t = Table::new(schema());
        for i in 0..8 {
            let b = if i % 3 == 0 {
                Value::Null
            } else {
                Value::str(if i % 2 == 0 { "even" } else { "odd" })
            };
            t.append_row(&[Value::Int(i), b]).unwrap();
        }
        assert_eq!(t.dictionary_encode_strings(16), 1);
        let before = t.encodings();
        let keep: Vec<bool> = (0..8).map(|i| i % 2 == 0).collect();
        assert_eq!(t.retain_rows(&keep).unwrap(), 4);
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.encodings(), before, "layout preserved");
        assert_eq!(t.value_at(1, ColumnId(0)), Value::Int(2));
        assert_eq!(t.value_at(1, ColumnId(1)), Value::str("even"));
        assert!(t.value_at(3, ColumnId(1)).is_null());
        // Wrong mask length is rejected without mutating.
        let err = t.retain_rows(&[true]).unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
        assert_eq!(t.row_count(), 4);
    }

    #[test]
    fn rebuild_column_validates_and_preserves_layout() {
        let mut t = Table::new(schema());
        for i in 0..6 {
            t.append_row(&[Value::Int(i), Value::str("x")]).unwrap();
        }
        t.rebuild_column(
            ColumnId(0),
            |row, v| {
                if row % 2 == 0 {
                    Value::Int(99)
                } else {
                    v
                }
            },
        )
        .unwrap();
        assert_eq!(t.value_at(0, ColumnId(0)), Value::Int(99));
        assert_eq!(t.value_at(1, ColumnId(0)), Value::Int(1));
        // NULL into the non-nullable column `a` is rejected atomically.
        let err = t
            .rebuild_column(ColumnId(0), |_, _| Value::Null)
            .unwrap_err();
        assert!(matches!(err, StorageError::NullViolation { .. }));
        assert_eq!(t.value_at(0, ColumnId(0)), Value::Int(99), "unchanged");
        // Type mismatches are rejected too.
        let err = t
            .rebuild_column(ColumnId(0), |_, _| Value::str("no"))
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
        // Missing column id.
        assert!(t.rebuild_column(ColumnId(9), |_, v| v).is_err());
    }

    #[test]
    fn type_mismatch_rejected_atomically() {
        let mut t = Table::new(schema());
        let err = t
            .append_row(&[Value::str("wrong"), Value::str("x")])
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch(_)));
        // No partial row was written.
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column(ColumnId(1)).unwrap().len(), 0);
    }
}
