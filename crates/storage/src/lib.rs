//! # hfqo-storage
//!
//! In-memory columnar storage for the hands-free query optimizer: typed
//! column vectors, tables, B-tree and hash indexes, the [`Database`]
//! container binding them to a catalog, and a deterministic synthetic data
//! generator (uniform, zipfian, correlated, and foreign-key distributions).
//!
//! The executor (`hfqo-exec`) reads these structures directly; the
//! statistics builder (`hfqo-stats`) scans them to build histograms. Both
//! need the same property from this crate: cheap, allocation-free access to
//! column values by row id.
//!
//! ```
//! use hfqo_catalog::{Catalog, TableSchema, Column, ColumnType};
//! use hfqo_storage::{Database, Value};
//!
//! let mut catalog = Catalog::new();
//! let t = catalog
//!     .add_table(TableSchema::new(
//!         "kv",
//!         vec![Column::new("k", ColumnType::Int), Column::new("v", ColumnType::Text)],
//!     ))
//!     .unwrap();
//! let mut db = Database::new(catalog);
//! db.table_mut(t).unwrap().append_row(&[Value::Int(1), Value::str("one")]).unwrap();
//! assert_eq!(db.table(t).unwrap().row_count(), 1);
//! ```

pub mod btree;
pub mod column;
pub mod csv;
pub mod database;
pub mod datagen;
pub mod error;
pub mod hash_index;
pub mod table;
pub mod value;

pub use btree::BTreeIndex;
pub use column::{coalesce_spans, ColumnVector, Encoding, RleColumn, RleValues};
pub use csv::{read_csv_into, CsvLoadStats, CsvOptions};
pub use database::Database;
pub use datagen::{ColumnGen, Distribution, TableGen};
pub use error::StorageError;
pub use hash_index::HashIndex;
pub use table::Table;
pub use value::Value;

// The parallel training harness shares one `Database` across worker
// threads by reference; concurrent plan execution is sound only while
// the store stays free of interior mutability. This assertion turns
// any future `Cell`/`RefCell` in the storage layer into a build error
// rather than a data race.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Database>();
    assert_sync::<Table>();
    assert_sync::<ColumnVector>();
};
