//! Runtime values.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single runtime value.
///
/// `Str` uses `Arc<str>` so rows can be cloned during joins without copying
/// string payloads (see the perf guidance on avoiding allocation in hot
/// paths). NULL ordering follows PostgreSQL's default: NULLs sort last.
#[derive(Debug, Clone)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN never appears in stored data.
    Float(f64),
    /// UTF-8 string.
    Str(Arc<str>),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether this value is NULL.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an `i64`, if it is an integer.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64`; integers widen losslessly (within 2^53).
    #[inline]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is text.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A numeric proxy used by statistics: ints and floats map to their
    /// value, strings map to a stable prefix-based ordinal, NULL to `None`.
    pub fn numeric_proxy(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(s) => Some(string_ordinal(s)),
            Value::Null => None,
        }
    }

    /// SQL-style three-valued comparison: `None` if either side is NULL.
    #[inline]
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order used by sort operators and B-tree keys: NULLs last,
    /// cross-type numeric comparison via `f64`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            (a, b) => {
                // Mixed numeric (or numeric vs text, which workloads never
                // produce but a total order must still handle): compare on
                // the numeric proxy. Equal proxies compare equal, so
                // `Int(2)` and `Float(2.0)` are interchangeable join keys.
                let ap = a.numeric_proxy().unwrap_or(f64::NEG_INFINITY);
                let bp = b.numeric_proxy().unwrap_or(f64::NEG_INFINITY);
                ap.partial_cmp(&bp).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// SQL equality: NULL never equals anything.
    #[inline]
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(Ordering::Equal)
    }
}

/// Maps a string to a stable f64 ordinal consistent with a prefix of its
/// byte ordering, so histograms over text columns are meaningful.
fn string_ordinal(s: &str) -> f64 {
    let mut acc = 0.0f64;
    let mut scale = 1.0f64;
    for &b in s.as_bytes().iter().take(6) {
        scale /= 256.0;
        acc += (b as f64) * scale;
    }
    acc
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Value::Float(v) => {
                // Hash floats by bits; stored data never contains NaN, and
                // integral floats hash like their Int counterparts would
                // not — equality across Int/Float is only used in sorts,
                // never in hash joins (the binder type-checks join keys).
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Null => 3u8.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_comparison_with_nulls() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(Value::Int(2).sql_eq(&Value::Int(2)));
    }

    #[test]
    fn total_order_nulls_last() {
        let mut vals = [Value::Null, Value::Int(3), Value::Int(1), Value::Int(2)];
        vals.sort();
        assert!(vals[3].is_null());
        assert_eq!(vals[0], Value::Int(1));
        assert_eq!(vals[2], Value::Int(3));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(2)), Ordering::Equal);
    }

    #[test]
    fn string_ordinal_is_monotone_on_prefixes() {
        assert!(string_ordinal("apple") < string_ordinal("banana"));
        assert!(string_ordinal("aa") < string_ordinal("ab"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Float(1.5).as_int(), None);
        assert!(Value::Null.numeric_proxy().is_none());
    }

    #[test]
    fn hash_consistent_with_eq_for_same_type() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        set.insert(Value::Int(1));
        set.insert(Value::str("a"));
        set.insert(Value::str("a"));
        assert_eq!(set.len(), 2);
    }
}
