//! B-tree secondary indexes.

use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// A single-column B-tree index mapping key values to row ids.
///
/// Built once after data load (the workloads are read-only), so the
/// structure favours lookup simplicity over update cost. NULL keys are not
/// indexed, matching the semantics of SQL predicates (a NULL never matches).
#[derive(Debug, Clone, Default)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<u32>>,
    entries: usize,
}

impl BTreeIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index over an iterator of `(row_id, key)` pairs.
    pub fn build(pairs: impl Iterator<Item = (usize, Value)>) -> Self {
        let mut idx = Self::new();
        for (row, key) in pairs {
            idx.insert(key, row);
        }
        idx
    }

    /// Inserts one entry; NULL keys are skipped.
    pub fn insert(&mut self, key: Value, row_id: usize) {
        if key.is_null() {
            return;
        }
        self.map.entry(key).or_default().push(row_id as u32);
        self.entries += 1;
    }

    /// Number of indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Row ids with key exactly equal to `key`.
    pub fn lookup_eq(&self, key: &Value) -> &[u32] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }

    /// Row ids with keys in the given (optional) bounds; `inclusive_*`
    /// controls bound closedness. Visits keys in order.
    pub fn lookup_range(
        &self,
        low: Option<&Value>,
        low_inclusive: bool,
        high: Option<&Value>,
        high_inclusive: bool,
        out: &mut Vec<u32>,
    ) {
        let lo: Bound<&Value> = match low {
            Some(v) if low_inclusive => Bound::Included(v),
            Some(v) => Bound::Excluded(v),
            None => Bound::Unbounded,
        };
        let hi: Bound<&Value> = match high {
            Some(v) if high_inclusive => Bound::Included(v),
            Some(v) => Bound::Excluded(v),
            None => Bound::Unbounded,
        };
        for (_, rows) in self.map.range::<Value, _>((lo, hi)) {
            out.extend_from_slice(rows);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> BTreeIndex {
        BTreeIndex::build(
            [
                (0, Value::Int(10)),
                (1, Value::Int(20)),
                (2, Value::Int(20)),
                (3, Value::Int(30)),
                (4, Value::Null),
            ]
            .into_iter(),
        )
    }

    #[test]
    fn eq_lookup() {
        let i = idx();
        assert_eq!(i.lookup_eq(&Value::Int(20)), &[1, 2]);
        assert_eq!(i.lookup_eq(&Value::Int(99)), &[] as &[u32]);
        assert_eq!(i.lookup_eq(&Value::Null), &[] as &[u32]);
    }

    #[test]
    fn nulls_not_indexed() {
        let i = idx();
        assert_eq!(i.len(), 4);
        assert_eq!(i.distinct_keys(), 3);
    }

    #[test]
    fn range_lookup_bounds() {
        let i = idx();
        let mut out = Vec::new();
        i.lookup_range(
            Some(&Value::Int(10)),
            false,
            Some(&Value::Int(30)),
            false,
            &mut out,
        );
        assert_eq!(out, vec![1, 2]);
        out.clear();
        i.lookup_range(Some(&Value::Int(10)), true, None, true, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        out.clear();
        i.lookup_range(None, true, Some(&Value::Int(20)), true, &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn empty_index() {
        let i = BTreeIndex::new();
        assert!(i.is_empty());
        assert_eq!(i.lookup_eq(&Value::Int(1)), &[] as &[u32]);
    }
}
