//! Streamed, typed CSV ingestion.
//!
//! The real join-order benchmark ships as 3.7 GiB of IMDB CSV dumps, so
//! the loader must not buffer whole files or materialise a `Value` per
//! cell. [`read_csv_into`] streams records out of any [`BufRead`], parses
//! each field directly into the typed column chunk for its schema column,
//! and appends chunks to the table in batches (one type-check per batch
//! via [`Table::append_batch`], not one per value).
//!
//! Dialect: RFC 4180-style quoting (`"` delimits, `""` escapes, quoted
//! fields may contain delimiters and newlines), a configurable delimiter,
//! and the PostgreSQL dump convention that an *unquoted* empty field or
//! `\N` is NULL while a *quoted* empty field is the empty string.

use crate::column::ColumnVector;
use crate::error::StorageError;
use crate::table::Table;
use hfqo_catalog::ColumnType;
use std::borrow::Cow;
use std::io::BufRead;

/// Dialect and batching knobs for [`read_csv_into`].
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: u8,
    /// Skip the first record (default `false`; IMDB dumps are headerless).
    pub has_header: bool,
    /// Rows per batched insert (default 4096).
    pub batch_rows: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: b',',
            has_header: false,
            batch_rows: 4096,
        }
    }
}

/// What a load did, for throughput reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsvLoadStats {
    /// Data rows appended to the table.
    pub rows: usize,
    /// Batched inserts performed.
    pub batches: usize,
    /// Bytes of CSV text consumed (including record terminators).
    pub bytes: usize,
}

/// One parsed field, borrowing from the record where possible.
enum Field<'a> {
    /// Unquoted empty or `\N`: SQL NULL.
    Null,
    /// A value (borrowed unless `""` escapes forced a copy).
    Text(Cow<'a, str>),
}

/// Streams CSV records from `reader` into `table`, parsing each field
/// into the table's column types. The whole load is transactional per
/// batch: a malformed record aborts with [`StorageError::Csv`], leaving
/// only previously completed batches appended.
pub fn read_csv_into(
    table: &mut Table,
    reader: impl BufRead,
    opts: &CsvOptions,
) -> Result<CsvLoadStats, StorageError> {
    let arity = table.schema().arity();
    let types: Vec<ColumnType> = table.schema().columns().iter().map(|c| c.ty()).collect();
    let mut chunk: Vec<ColumnVector> = types.iter().map(|&t| ColumnVector::new(t)).collect();
    let mut chunk_rows = 0usize;
    let mut stats = CsvLoadStats::default();

    let mut records = RecordReader::new(reader);
    let mut record_no = 0usize;
    while let Some(record) = records.next_record()? {
        record_no += 1;
        if record.is_empty() {
            continue;
        }
        if opts.has_header && record_no == 1 {
            continue;
        }
        // Fields parse straight into the chunk columns. A mid-record
        // failure leaves the chunk ragged, but the error aborts the load
        // before the ragged chunk could ever be appended.
        let mut idx = 0usize;
        let seen = split_record(record, opts.delimiter, &mut |field| {
            let i = idx;
            idx += 1;
            if i >= arity {
                return Err(format!(
                    "expected {arity} fields for table `{}`, got more",
                    table.schema().name()
                ));
            }
            push_typed(&mut chunk[i], types[i], &field)
                .map_err(|msg| format!("column `{}`: {msg}", table.schema().columns()[i].name()))
        })
        .map(|()| idx)
        .map_err(|msg| StorageError::Csv {
            record: record_no,
            msg,
        })?;
        if seen != arity {
            return Err(StorageError::Csv {
                record: record_no,
                msg: format!(
                    "expected {arity} fields for table `{}`, got {seen}",
                    table.schema().name()
                ),
            });
        }
        chunk_rows += 1;
        if chunk_rows >= opts.batch_rows {
            stats.rows += table.append_batch(&chunk)?;
            stats.batches += 1;
            for col in &mut chunk {
                col.clear();
            }
            chunk_rows = 0;
        }
    }
    if chunk_rows > 0 {
        stats.rows += table.append_batch(&chunk)?;
        stats.batches += 1;
    }
    stats.bytes = records.bytes_read;
    Ok(stats)
}

/// Parses one field into the typed chunk column. Integers and floats
/// parse straight from the text — no intermediate [`crate::Value`] for
/// fixed-width data.
fn push_typed(col: &mut ColumnVector, ty: ColumnType, field: &Field<'_>) -> Result<(), String> {
    let text = match field {
        Field::Null => {
            let ok = col.push(&crate::value::Value::Null);
            debug_assert!(ok, "every column type accepts NULL");
            return Ok(());
        }
        Field::Text(t) => t.as_ref(),
    };
    match (col, ty) {
        (ColumnVector::Int(v, n), ColumnType::Int) => {
            let parsed: i64 = text
                .parse()
                .map_err(|_| format!("`{text}` is not an integer"))?;
            v.push(parsed);
            n.push(true);
        }
        (ColumnVector::Float(v, n), ColumnType::Float) => {
            let parsed: f64 = text
                .parse()
                .map_err(|_| format!("`{text}` is not a float"))?;
            v.push(parsed);
            n.push(true);
        }
        (ColumnVector::Str(v, n), ColumnType::Text) => {
            v.push(std::sync::Arc::from(text));
            n.push(true);
        }
        _ => unreachable!("chunk columns are built from the schema types"),
    }
    Ok(())
}

/// Reads one logical CSV record at a time: a record ends at a newline
/// that is *outside* quotes, so quoted fields may span lines. Keeps a
/// single reusable buffer — memory use is bounded by the largest record,
/// not the file.
struct RecordReader<R> {
    reader: R,
    buf: String,
    bytes_read: usize,
}

impl<R: BufRead> RecordReader<R> {
    fn new(reader: R) -> Self {
        Self {
            reader,
            buf: String::new(),
            bytes_read: 0,
        }
    }

    /// The next record with its terminator stripped, or `None` at EOF.
    fn next_record(&mut self) -> Result<Option<&str>, StorageError> {
        self.buf.clear();
        loop {
            let n = self
                .reader
                .read_line(&mut self.buf)
                .map_err(|e| StorageError::Csv {
                    record: 0,
                    msg: format!("I/O error: {e}"),
                })?;
            self.bytes_read += n;
            if n == 0 {
                // EOF: an unterminated quoted field is a format error.
                if self.buf.is_empty() {
                    return Ok(None);
                }
                if in_open_quote(&self.buf) {
                    return Err(StorageError::Csv {
                        record: 0,
                        msg: "unterminated quoted field at end of input".into(),
                    });
                }
                return Ok(Some(trim_terminator(&self.buf)));
            }
            if !in_open_quote(&self.buf) {
                return Ok(Some(trim_terminator(&self.buf)));
            }
            // Inside a quoted field: the newline belongs to the value;
            // keep reading lines into the same record.
        }
    }
}

fn trim_terminator(s: &str) -> &str {
    s.strip_suffix('\n')
        .map(|s| s.strip_suffix('\r').unwrap_or(s))
        .unwrap_or(s)
}

/// Whether `record` ends inside an open quoted field. Quote parity is
/// enough even with `""` escapes: each `"` toggles the state, and an
/// escaped pair toggles twice.
fn in_open_quote(record: &str) -> bool {
    record.bytes().filter(|&b| b == b'"').count() % 2 == 1
}

/// Splits one record into fields, honouring quotes and escapes, handing
/// each field to `emit` as it is scanned (no per-record allocation).
fn split_record(
    record: &str,
    delimiter: u8,
    emit: &mut dyn FnMut(Field<'_>) -> Result<(), String>,
) -> Result<(), String> {
    let bytes = record.as_bytes();
    let mut i = 0usize;
    loop {
        if i < bytes.len() && bytes[i] == b'"' {
            // Quoted field: scan to the closing quote, collapsing "".
            let start = i + 1;
            let mut j = start;
            let mut needs_copy = false;
            loop {
                match bytes.get(j) {
                    None => return Err("unterminated quoted field".into()),
                    Some(b'"') if bytes.get(j + 1) == Some(&b'"') => {
                        needs_copy = true;
                        j += 2;
                    }
                    Some(b'"') => break,
                    Some(_) => j += 1,
                }
            }
            let raw = &record[start..j];
            let value = if needs_copy {
                Cow::Owned(raw.replace("\"\"", "\""))
            } else {
                Cow::Borrowed(raw)
            };
            emit(Field::Text(value))?;
            i = j + 1;
            match bytes.get(i) {
                None => return Ok(()),
                Some(&b) if b == delimiter => i += 1,
                Some(_) => return Err("data after closing quote".into()),
            }
        } else {
            // Unquoted field: runs to the next delimiter.
            let start = i;
            while i < bytes.len() && bytes[i] != delimiter {
                if bytes[i] == b'"' {
                    return Err("quote inside unquoted field".into());
                }
                i += 1;
            }
            let raw = &record[start..i];
            if raw.is_empty() || raw == "\\N" {
                emit(Field::Null)?;
            } else {
                emit(Field::Text(Cow::Borrowed(raw)))?;
            }
            if i == bytes.len() {
                return Ok(());
            }
            i += 1; // consume the delimiter
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use hfqo_catalog::{Column, ColumnType, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                Column::new("id", ColumnType::Int),
                Column::nullable("score", ColumnType::Float),
                Column::nullable("note", ColumnType::Text),
            ],
        )
    }

    fn load(input: &str, opts: &CsvOptions) -> Result<(Table, CsvLoadStats), StorageError> {
        let mut table = Table::new(schema());
        let stats = read_csv_into(&mut table, input.as_bytes(), opts)?;
        Ok((table, stats))
    }

    #[test]
    fn parses_typed_rows_with_nulls() {
        let input = "1,2.5,hello\n2,\\N,\n3,,plain\n";
        let (t, stats) = load(input, &CsvOptions::default()).unwrap();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.bytes, input.len());
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.value_at(0, hfqo_catalog::ColumnId(1)), Value::Float(2.5));
        assert!(t.value_at(1, hfqo_catalog::ColumnId(1)).is_null());
        assert!(t.value_at(1, hfqo_catalog::ColumnId(2)).is_null());
        assert_eq!(
            t.value_at(2, hfqo_catalog::ColumnId(2)),
            Value::str("plain")
        );
    }

    #[test]
    fn quoted_fields_embed_delimiters_newlines_and_escapes() {
        let input = "1,1.0,\"a,b\"\n2,2.0,\"line\nbreak\"\n3,3.0,\"say \"\"hi\"\"\"\n4,4.0,\"\"\n";
        let (t, stats) = load(input, &CsvOptions::default()).unwrap();
        assert_eq!(stats.rows, 4);
        let col = hfqo_catalog::ColumnId(2);
        assert_eq!(t.value_at(0, col), Value::str("a,b"));
        assert_eq!(t.value_at(1, col), Value::str("line\nbreak"));
        assert_eq!(t.value_at(2, col), Value::str("say \"hi\""));
        // Quoted empty is the empty string, not NULL.
        assert_eq!(t.value_at(3, col), Value::str(""));
    }

    #[test]
    fn header_crlf_and_blank_lines() {
        let input = "id,score,note\r\n1,1.5,x\r\n\r\n2,2.5,y\r\n";
        let opts = CsvOptions {
            has_header: true,
            ..CsvOptions::default()
        };
        let (t, stats) = load(input, &opts).unwrap();
        assert_eq!(stats.rows, 2);
        assert_eq!(t.value_at(1, hfqo_catalog::ColumnId(2)), Value::str("y"));
    }

    #[test]
    fn batches_are_honoured() {
        let input: String = (0..10).map(|i| format!("{i},1.0,n{i}\n")).collect();
        let opts = CsvOptions {
            batch_rows: 3,
            ..CsvOptions::default()
        };
        let (t, stats) = load(&input, &opts).unwrap();
        assert_eq!(t.row_count(), 10);
        assert_eq!(stats.batches, 4); // 3+3+3+1
    }

    #[test]
    fn malformed_records_are_rejected_with_position() {
        for (input, needle) in [
            ("1,1.0,ok\nnope,2.0,x\n", "not an integer"),
            ("1,abc,x\n", "not a float"),
            ("1,1.0\n", "expected 3 fields"),
            ("1,1.0,\"open\n", "unterminated"),
            ("1,1.0,\"x\"y\n", "after closing quote"),
            ("1,1.0,a\"b\"c\n", "quote inside unquoted"),
        ] {
            let err = load(input, &CsvOptions::default()).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "`{input}` → `{msg}`");
        }
    }

    #[test]
    fn null_in_non_nullable_column_is_rejected() {
        let err = load("\\N,1.0,x\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, StorageError::NullViolation { .. }), "{err}");
    }
}
