//! Hash secondary indexes.

use crate::value::Value;
use std::collections::HashMap;

/// A single-column hash index mapping key values to row ids.
///
/// Serves only equality probes; NULL keys are not indexed.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<u32>>,
    entries: usize,
}

impl HashIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index over an iterator of `(row_id, key)` pairs.
    pub fn build(pairs: impl Iterator<Item = (usize, Value)>) -> Self {
        let mut idx = Self::new();
        for (row, key) in pairs {
            idx.insert(key, row);
        }
        idx
    }

    /// Inserts one entry; NULL keys are skipped.
    pub fn insert(&mut self, key: Value, row_id: usize) {
        if key.is_null() {
            return;
        }
        self.map.entry(key).or_default().push(row_id as u32);
        self.entries += 1;
    }

    /// Number of indexed (non-NULL) entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Row ids with key exactly equal to `key`.
    pub fn lookup_eq(&self, key: &Value) -> &[u32] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map_or(&[], |v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_probe() {
        let i = HashIndex::build(
            [
                (0, Value::str("a")),
                (1, Value::str("b")),
                (2, Value::str("a")),
                (3, Value::Null),
            ]
            .into_iter(),
        );
        assert_eq!(i.lookup_eq(&Value::str("a")), &[0, 2]);
        assert_eq!(i.lookup_eq(&Value::str("z")), &[] as &[u32]);
        assert_eq!(i.lookup_eq(&Value::Null), &[] as &[u32]);
        assert_eq!(i.len(), 3);
        assert_eq!(i.distinct_keys(), 2);
        assert!(!i.is_empty());
    }
}
