//! Storage error types.

use hfqo_catalog::CatalogError;
use std::fmt;

/// Errors raised by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row's arity or a value's type did not match the table schema.
    SchemaMismatch(String),
    /// A referenced table has no materialised data.
    MissingTable(String),
    /// Catalog-level failure.
    Catalog(CatalogError),
    /// A NULL was inserted into a non-nullable column.
    NullViolation {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A CSV record failed to parse or did not fit the target schema.
    Csv {
        /// 1-based record number (header included when present).
        record: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            Self::MissingTable(name) => write!(f, "table `{name}` has no data"),
            Self::Catalog(e) => write!(f, "catalog error: {e}"),
            Self::NullViolation { table, column } => {
                write!(f, "NULL in non-nullable column `{table}.{column}`")
            }
            Self::Csv { record, msg } => write!(f, "CSV record {record}: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Catalog(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CatalogError> for StorageError {
    fn from(e: CatalogError) -> Self {
        Self::Catalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StorageError::from(CatalogError::UnknownTableId(3));
        assert!(e.to_string().contains("unknown table id 3"));
        assert!(std::error::Error::source(&e).is_some());
        let n = StorageError::NullViolation {
            table: "t".into(),
            column: "c".into(),
        };
        assert!(n.to_string().contains("t.c"));
    }
}
