//! Typed column vectors with null bitmaps.

use crate::value::Value;
use hfqo_catalog::ColumnType;
use std::sync::Arc;

/// Columnar storage for one column.
///
/// Values are stored in dense typed vectors; NULLs are tracked by a
/// separate boolean validity vector (`true` = present). This mirrors the
/// layout of analytical engines and lets scans touch only the bytes of the
/// columns they actually read.
#[derive(Debug, Clone)]
pub enum ColumnVector {
    /// Integer data plus validity.
    Int(Vec<i64>, Vec<bool>),
    /// Float data plus validity.
    Float(Vec<f64>, Vec<bool>),
    /// String data plus validity.
    Str(Vec<Arc<str>>, Vec<bool>),
}

impl ColumnVector {
    /// An empty vector for the given type.
    pub fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => Self::Int(Vec::new(), Vec::new()),
            ColumnType::Float => Self::Float(Vec::new(), Vec::new()),
            ColumnType::Text => Self::Str(Vec::new(), Vec::new()),
        }
    }

    /// An empty vector with pre-reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::Int => Self::Int(Vec::with_capacity(cap), Vec::with_capacity(cap)),
            ColumnType::Float => Self::Float(Vec::with_capacity(cap), Vec::with_capacity(cap)),
            ColumnType::Text => Self::Str(Vec::with_capacity(cap), Vec::with_capacity(cap)),
        }
    }

    /// The column's logical type.
    pub fn ty(&self) -> ColumnType {
        match self {
            Self::Int(..) => ColumnType::Int,
            Self::Float(..) => ColumnType::Float,
            Self::Str(..) => ColumnType::Text,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Self::Int(v, _) => v.len(),
            Self::Float(v, _) => v.len(),
            Self::Str(v, _) => v.len(),
        }
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; `Value::Null` appends a NULL. Returns `false` when
    /// the value's type does not match the column type.
    pub fn push(&mut self, value: &Value) -> bool {
        match (self, value) {
            (Self::Int(v, n), Value::Int(x)) => {
                v.push(*x);
                n.push(true);
            }
            (Self::Int(v, n), Value::Null) => {
                v.push(0);
                n.push(false);
            }
            (Self::Float(v, n), Value::Float(x)) => {
                v.push(*x);
                n.push(true);
            }
            (Self::Float(v, n), Value::Int(x)) => {
                v.push(*x as f64);
                n.push(true);
            }
            (Self::Float(v, n), Value::Null) => {
                v.push(0.0);
                n.push(false);
            }
            (Self::Str(v, n), Value::Str(s)) => {
                v.push(Arc::clone(s));
                n.push(true);
            }
            (Self::Str(v, n), Value::Null) => {
                v.push(Arc::from(""));
                n.push(false);
            }
            _ => return false,
        }
        true
    }

    /// The value at `row`. Panics if out of bounds (callers iterate within
    /// `0..len()`; the executor never indexes past the row count).
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        match self {
            Self::Int(v, n) => {
                if n[row] {
                    Value::Int(v[row])
                } else {
                    Value::Null
                }
            }
            Self::Float(v, n) => {
                if n[row] {
                    Value::Float(v[row])
                } else {
                    Value::Null
                }
            }
            Self::Str(v, n) => {
                if n[row] {
                    Value::Str(Arc::clone(&v[row]))
                } else {
                    Value::Null
                }
            }
        }
    }

    /// Whether the value at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            Self::Int(_, n) | Self::Float(_, n) | Self::Str(_, n) => !n[row],
        }
    }

    /// Raw integer access without materialising a [`Value`]; `None` when
    /// NULL or when the column is not an integer column.
    #[inline]
    pub fn int_at(&self, row: usize) -> Option<i64> {
        match self {
            Self::Int(v, n) if n[row] => Some(v[row]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = ColumnVector::new(ColumnType::Int);
        assert!(c.push(&Value::Int(5)));
        assert!(c.push(&Value::Null));
        assert!(!c.push(&Value::str("no")));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(5));
        assert!(c.get(1).is_null());
        assert!(c.is_null(1));
        assert!(!c.is_null(0));
    }

    #[test]
    fn int_widens_to_float() {
        let mut c = ColumnVector::new(ColumnType::Float);
        assert!(c.push(&Value::Int(3)));
        assert_eq!(c.get(0), Value::Float(3.0));
    }

    #[test]
    fn string_column() {
        let mut c = ColumnVector::with_capacity(ColumnType::Text, 4);
        assert!(c.push(&Value::str("abc")));
        assert!(c.push(&Value::Null));
        assert_eq!(c.get(0).as_str(), Some("abc"));
        assert!(c.get(1).is_null());
        assert_eq!(c.ty(), ColumnType::Text);
    }

    #[test]
    fn int_at_fast_path() {
        let mut c = ColumnVector::new(ColumnType::Int);
        c.push(&Value::Int(9));
        c.push(&Value::Null);
        assert_eq!(c.int_at(0), Some(9));
        assert_eq!(c.int_at(1), None);
        let f = ColumnVector::new(ColumnType::Float);
        assert!(f.is_empty());
    }
}
