//! Typed column vectors with null bitmaps.
//!
//! Three physical encodings back the two logical scalar types beyond the
//! plain dense vectors: [`ColumnVector::Dict`] stores low-cardinality text
//! as per-row `u32` codes into a distinct-value dictionary, and
//! [`ColumnVector::Rle`] run-length-encodes integer or dictionary-coded
//! data when adjacent rows repeat. Both are transparent to every accessor
//! (`get`, `is_null`, `str_at`, `sql_cmp_at`, `total_cmp_at`, the bulk
//! copy/gather paths): the logical row sequence, type, and comparison
//! semantics are identical to the plain encoding, so query results and
//! the executor's work accounting never depend on the physical layout.
//!
//! [`RleColumn`] invariants (checked by construction in
//! [`ColumnVector::rle_encoded`] and `RleColumn::push_value`):
//!
//! - `ends` holds the *exclusive* end row of each run, is strictly
//!   increasing, and its last entry equals the row count; run `k` covers
//!   rows `ends[k-1] .. ends[k]` (run 0 starts at row 0).
//! - `valid` and the value vector inside [`RleValues`] have exactly one
//!   entry per run; a run is either all-NULL (`valid[k] == false`) or
//!   all-present — NULL runs keep a placeholder value (0) that is never
//!   dereferenced, mirroring the `Dict` NULL-code rule.
//! - Only integer and dictionary-coded text domains are run-length
//!   encoded ([`RleValues::Int`] / [`RleValues::Dict`]); floats and plain
//!   strings never are, so float bit patterns are never re-derived from a
//!   run representative.

use crate::value::Value;
use hfqo_catalog::ColumnType;
use std::sync::Arc;

/// Columnar storage for one column.
///
/// Values are stored in dense typed vectors; NULLs are tracked by a
/// separate boolean validity vector (`true` = present). This mirrors the
/// layout of analytical engines and lets scans touch only the bytes of the
/// columns they actually read.
#[derive(Debug, Clone)]
pub enum ColumnVector {
    /// Integer data plus validity.
    Int(Vec<i64>, Vec<bool>),
    /// Float data plus validity.
    Float(Vec<f64>, Vec<bool>),
    /// String data plus validity.
    Str(Vec<Arc<str>>, Vec<bool>),
    /// Dictionary-encoded string data: per-row codes plus validity, and
    /// the distinct string values the codes index into. Low-cardinality
    /// text columns (IMDB's `kind`, `note`, `phonetic_code`, ...) shrink
    /// from one `Arc<str>` per row to 4 bytes per row, and equality
    /// comparisons stay on the decoded strings so the logical type is
    /// still [`ColumnType::Text`]. Codes of NULL rows are always 0 and
    /// must never be dereferenced — every accessor checks validity first.
    Dict(Vec<u32>, Vec<bool>, Vec<Arc<str>>),
    /// Run-length-encoded data over integer values or dictionary codes.
    /// Chosen automatically at load time when the average run length
    /// clears a threshold (see [`ColumnVector::rle_encoded`]); sorted or
    /// blocky columns (foreign keys clustered by parent, enum-ish flags)
    /// shrink to one entry per run and let run-aware scan kernels accept
    /// or reject whole runs at once. See the module docs for the
    /// invariants.
    Rle(RleColumn),
}

/// The physical encoding of a [`ColumnVector`] — the *layout*, distinct
/// from the logical [`ColumnType`]. Mutation paths that rebuild a column
/// (bulk delete, skew shift) use this to hand back the same layout they
/// found, so a drifted database keeps exercising the encoding the loader
/// chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Dense typed vector.
    Plain,
    /// Dictionary-coded text ([`ColumnVector::Dict`]).
    Dict,
    /// Run-length-encoded integers or dictionary codes
    /// ([`ColumnVector::Rle`]).
    Rle,
}

/// The runs of a [`ColumnVector::Rle`] column. See the module docs for
/// the structural invariants.
#[derive(Debug, Clone)]
pub struct RleColumn {
    /// Exclusive end row of each run; strictly increasing, last entry
    /// equals the row count.
    pub ends: Vec<u32>,
    /// Per-run validity (`true` = the run's rows are present).
    pub valid: Vec<bool>,
    /// Per-run values.
    pub values: RleValues,
}

/// Per-run payload of a [`RleColumn`].
#[derive(Debug, Clone)]
pub enum RleValues {
    /// One integer per run.
    Int(Vec<i64>),
    /// One dictionary code per run, plus the shared dictionary. Codes of
    /// NULL runs are 0 and never dereferenced.
    Dict(Vec<u32>, Vec<Arc<str>>),
}

impl RleColumn {
    /// The column's logical type.
    pub fn ty(&self) -> ColumnType {
        match self.values {
            RleValues::Int(_) => ColumnType::Int,
            RleValues::Dict(..) => ColumnType::Text,
        }
    }

    /// Number of rows (not runs).
    pub fn len(&self) -> usize {
        self.ends.last().map_or(0, |&e| e as usize)
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.ends.len()
    }

    /// The run covering `row` (binary search over run ends).
    #[inline]
    pub fn run_of(&self, row: usize) -> usize {
        self.ends.partition_point(|&e| e as usize <= row)
    }

    /// First row of run `k`.
    #[inline]
    pub fn run_start(&self, k: usize) -> usize {
        if k == 0 {
            0
        } else {
            self.ends[k - 1] as usize
        }
    }

    /// One-past-the-last row of run `k`.
    #[inline]
    pub fn run_end(&self, k: usize) -> usize {
        self.ends[k] as usize
    }

    /// The value shared by every row of run `k` (`Value::Null` for a
    /// NULL run).
    pub fn run_value(&self, k: usize) -> Value {
        if !self.valid[k] {
            return Value::Null;
        }
        match &self.values {
            RleValues::Int(vals) => Value::Int(vals[k]),
            RleValues::Dict(codes, dict) => Value::Str(Arc::clone(&dict[codes[k] as usize])),
        }
    }

    /// Advances a run cursor `k` to the run covering `row`. Linear for
    /// forward steps (the common monotone-scan case), binary search when
    /// the target row is behind the cursor.
    #[inline]
    pub fn seek(&self, k: usize, row: usize) -> usize {
        if row < self.run_start(k) {
            return self.run_of(row);
        }
        let mut k = k;
        while self.ends[k] as usize <= row {
            k += 1;
        }
        k
    }

    /// Appends one logical row, extending the last run when the value
    /// matches it. Returns `false` on a type mismatch.
    fn push_value(&mut self, value: &Value) -> bool {
        let last = self.ends.len().checked_sub(1);
        let new_end = self.len() as u32 + 1;
        match (&mut self.values, value) {
            (RleValues::Int(vals), Value::Int(x)) => {
                if let Some(k) = last {
                    if self.valid[k] && vals[k] == *x {
                        self.ends[k] += 1;
                        return true;
                    }
                }
                vals.push(*x);
            }
            (RleValues::Dict(codes, dict), Value::Str(s)) => {
                let code = dict_code(dict, s.as_ref());
                if let Some(k) = last {
                    if self.valid[k] && codes[k] == code {
                        self.ends[k] += 1;
                        return true;
                    }
                }
                codes.push(code);
            }
            (vals, Value::Null) => {
                if let Some(k) = last {
                    if !self.valid[k] {
                        self.ends[k] += 1;
                        return true;
                    }
                }
                match vals {
                    RleValues::Int(vals) => vals.push(0),
                    RleValues::Dict(codes, _) => codes.push(0),
                }
                self.valid.push(false);
                self.ends.push(new_end);
                return true;
            }
            _ => return false,
        }
        self.valid.push(true);
        self.ends.push(new_end);
        true
    }
}

impl ColumnVector {
    /// An empty vector for the given type.
    pub fn new(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => Self::Int(Vec::new(), Vec::new()),
            ColumnType::Float => Self::Float(Vec::new(), Vec::new()),
            ColumnType::Text => Self::Str(Vec::new(), Vec::new()),
        }
    }

    /// An empty vector with pre-reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::Int => Self::Int(Vec::with_capacity(cap), Vec::with_capacity(cap)),
            ColumnType::Float => Self::Float(Vec::with_capacity(cap), Vec::with_capacity(cap)),
            ColumnType::Text => Self::Str(Vec::with_capacity(cap), Vec::with_capacity(cap)),
        }
    }

    /// The column's logical type.
    pub fn ty(&self) -> ColumnType {
        match self {
            Self::Int(..) => ColumnType::Int,
            Self::Float(..) => ColumnType::Float,
            Self::Str(..) | Self::Dict(..) => ColumnType::Text,
            Self::Rle(r) => r.ty(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Self::Int(v, _) => v.len(),
            Self::Float(v, _) => v.len(),
            Self::Str(v, _) => v.len(),
            Self::Dict(codes, _, _) => codes.len(),
            Self::Rle(r) => r.len(),
        }
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; `Value::Null` appends a NULL. Returns `false` when
    /// the value's type does not match the column type.
    pub fn push(&mut self, value: &Value) -> bool {
        match (self, value) {
            (Self::Int(v, n), Value::Int(x)) => {
                v.push(*x);
                n.push(true);
            }
            (Self::Int(v, n), Value::Null) => {
                v.push(0);
                n.push(false);
            }
            (Self::Float(v, n), Value::Float(x)) => {
                v.push(*x);
                n.push(true);
            }
            (Self::Float(v, n), Value::Int(x)) => {
                v.push(*x as f64);
                n.push(true);
            }
            (Self::Float(v, n), Value::Null) => {
                v.push(0.0);
                n.push(false);
            }
            (Self::Str(v, n), Value::Str(s)) => {
                v.push(Arc::clone(s));
                n.push(true);
            }
            (Self::Str(v, n), Value::Null) => {
                v.push(Arc::from(""));
                n.push(false);
            }
            (Self::Dict(codes, n, values), Value::Str(s)) => {
                codes.push(dict_code(values, s.as_ref()));
                n.push(true);
            }
            (Self::Dict(codes, n, _), Value::Null) => {
                codes.push(0);
                n.push(false);
            }
            (Self::Rle(r), v) => return r.push_value(v),
            _ => return false,
        }
        true
    }

    /// The value at `row`. Panics if out of bounds (callers iterate within
    /// `0..len()`; the executor never indexes past the row count).
    #[inline]
    pub fn get(&self, row: usize) -> Value {
        match self {
            Self::Int(v, n) => {
                if n[row] {
                    Value::Int(v[row])
                } else {
                    Value::Null
                }
            }
            Self::Float(v, n) => {
                if n[row] {
                    Value::Float(v[row])
                } else {
                    Value::Null
                }
            }
            Self::Str(v, n) => {
                if n[row] {
                    Value::Str(Arc::clone(&v[row]))
                } else {
                    Value::Null
                }
            }
            Self::Dict(codes, n, values) => {
                if n[row] {
                    Value::Str(Arc::clone(&values[codes[row] as usize]))
                } else {
                    Value::Null
                }
            }
            Self::Rle(r) => r.run_value(r.run_of(row)),
        }
    }

    /// Appends the value of row `i` onto `out[i]`, for every row — the
    /// executor's bulk row export. One monomorphic loop per variant
    /// (run-aware for RLE) instead of a per-cell [`ColumnVector::get`]
    /// match; results are identical. `out` must hold exactly `len()`
    /// rows.
    pub fn values_onto(&self, out: &mut [Vec<Value>]) {
        debug_assert_eq!(out.len(), self.len());
        match self {
            Self::Int(v, n) => {
                for ((slot, v), ok) in out.iter_mut().zip(v).zip(n) {
                    slot.push(if *ok { Value::Int(*v) } else { Value::Null });
                }
            }
            Self::Float(v, n) => {
                for ((slot, v), ok) in out.iter_mut().zip(v).zip(n) {
                    slot.push(if *ok { Value::Float(*v) } else { Value::Null });
                }
            }
            Self::Str(v, n) => {
                for ((slot, v), ok) in out.iter_mut().zip(v).zip(n) {
                    slot.push(if *ok {
                        Value::Str(Arc::clone(v))
                    } else {
                        Value::Null
                    });
                }
            }
            Self::Dict(codes, n, values) => {
                for ((slot, code), ok) in out.iter_mut().zip(codes).zip(n) {
                    slot.push(if *ok {
                        Value::Str(Arc::clone(&values[*code as usize]))
                    } else {
                        Value::Null
                    });
                }
            }
            Self::Rle(r) => {
                // One value materialisation per run, cloned across it.
                let mut rows = out.iter_mut();
                for k in 0..r.run_count() {
                    let v = r.run_value(k);
                    for slot in rows.by_ref().take(r.run_end(k) - r.run_start(k)) {
                        slot.push(v.clone());
                    }
                }
            }
        }
    }

    /// Whether the value at `row` is NULL.
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            Self::Int(_, n) | Self::Float(_, n) | Self::Str(_, n) | Self::Dict(_, n, _) => !n[row],
            Self::Rle(r) => !r.valid[r.run_of(row)],
        }
    }

    /// The decoded string at `row` without cloning an `Arc`; `None` when
    /// NULL or when the column is not a text column.
    #[inline]
    pub fn str_at(&self, row: usize) -> Option<&str> {
        match self {
            Self::Str(v, n) if n[row] => Some(v[row].as_ref()),
            Self::Dict(codes, n, values) if n[row] => Some(values[codes[row] as usize].as_ref()),
            Self::Rle(r) => match (&r.values, r.run_of(row)) {
                (RleValues::Dict(codes, dict), k) if r.valid[k] => {
                    Some(dict[codes[k] as usize].as_ref())
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// Raw integer access without materialising a [`Value`]; `None` when
    /// NULL or when the column is not an integer column.
    #[inline]
    pub fn int_at(&self, row: usize) -> Option<i64> {
        match self {
            Self::Int(v, n) if n[row] => Some(v[row]),
            Self::Rle(r) => match (&r.values, r.run_of(row)) {
                (RleValues::Int(vals), k) if r.valid[k] => Some(vals[k]),
                _ => None,
            },
            _ => None,
        }
    }

    /// Three-valued SQL comparison of `self[row]` against
    /// `other[other_row]` without materialising [`Value`]s — `None` when
    /// either side is NULL. Matches `Value::sql_cmp` semantics exactly
    /// (cross-numeric comparison via `f64`; the rare mixed
    /// numeric/text pair falls back to the `Value` path).
    #[inline]
    pub fn sql_cmp_at(
        &self,
        row: usize,
        other: &ColumnVector,
        other_row: usize,
    ) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        match (self, other) {
            (Self::Int(a, an), Self::Int(b, bn)) => {
                (an[row] && bn[other_row]).then(|| a[row].cmp(&b[other_row]))
            }
            (Self::Float(a, an), Self::Float(b, bn)) => (an[row] && bn[other_row])
                .then(|| a[row].partial_cmp(&b[other_row]).unwrap_or(Ordering::Equal)),
            (Self::Int(a, an), Self::Float(b, bn)) => (an[row] && bn[other_row]).then(|| {
                (a[row] as f64)
                    .partial_cmp(&b[other_row])
                    .unwrap_or(Ordering::Equal)
            }),
            (Self::Float(a, an), Self::Int(b, bn)) => (an[row] && bn[other_row]).then(|| {
                a[row]
                    .partial_cmp(&(b[other_row] as f64))
                    .unwrap_or(Ordering::Equal)
            }),
            (Self::Str(..) | Self::Dict(..), Self::Str(..) | Self::Dict(..)) => {
                match (self.str_at(row), other.str_at(other_row)) {
                    (Some(a), Some(b)) => Some(a.cmp(b)),
                    _ => None,
                }
            }
            // Mixed numeric/text and run-length-encoded operands:
            // delegate to the Value semantics (RLE pairs only appear on
            // cold paths — executor chunks are always plain).
            _ => self.get(row).sql_cmp(&other.get(other_row)),
        }
    }

    /// Total-order comparison (NULLs last, cross-numeric via `f64`) of
    /// `self[row]` against `other[other_row]` without materialising
    /// [`Value`]s — matches `Value::total_cmp` exactly. Sort operators
    /// and merge joins use this as their comparator.
    #[inline]
    pub fn total_cmp_at(
        &self,
        row: usize,
        other: &ColumnVector,
        other_row: usize,
    ) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        // NULLs sort last; two NULLs compare equal.
        let nulls = |a_valid: bool, b_valid: bool| match (a_valid, b_valid) {
            (true, true) => None,
            (false, false) => Some(Ordering::Equal),
            (false, true) => Some(Ordering::Greater),
            (true, false) => Some(Ordering::Less),
        };
        match (self, other) {
            (Self::Int(a, an), Self::Int(b, bn)) => {
                nulls(an[row], bn[other_row]).unwrap_or_else(|| a[row].cmp(&b[other_row]))
            }
            (Self::Float(a, an), Self::Float(b, bn)) => nulls(an[row], bn[other_row])
                .unwrap_or_else(|| a[row].partial_cmp(&b[other_row]).unwrap_or(Ordering::Equal)),
            (Self::Int(a, an), Self::Float(b, bn)) => {
                nulls(an[row], bn[other_row]).unwrap_or_else(|| {
                    (a[row] as f64)
                        .partial_cmp(&b[other_row])
                        .unwrap_or(Ordering::Equal)
                })
            }
            (Self::Float(a, an), Self::Int(b, bn)) => {
                nulls(an[row], bn[other_row]).unwrap_or_else(|| {
                    a[row]
                        .partial_cmp(&(b[other_row] as f64))
                        .unwrap_or(Ordering::Equal)
                })
            }
            (Self::Str(..) | Self::Dict(..), Self::Str(..) | Self::Dict(..)) => {
                match (self.str_at(row), other.str_at(other_row)) {
                    (Some(a), Some(b)) => a.cmp(b),
                    (None, None) => Ordering::Equal,
                    (None, Some(_)) => Ordering::Greater,
                    (Some(_), None) => Ordering::Less,
                }
            }
            // Mixed numeric/text and run-length-encoded operands:
            // delegate to the Value semantics.
            _ => self.get(row).total_cmp(&other.get(other_row)),
        }
    }

    /// Clears the vector, keeping its allocation.
    pub fn clear(&mut self) {
        match self {
            Self::Int(v, n) => {
                v.clear();
                n.clear();
            }
            Self::Float(v, n) => {
                v.clear();
                n.clear();
            }
            Self::Str(v, n) => {
                v.clear();
                n.clear();
            }
            Self::Dict(codes, n, values) => {
                codes.clear();
                n.clear();
                values.clear();
            }
            Self::Rle(r) => {
                r.ends.clear();
                r.valid.clear();
                match &mut r.values {
                    RleValues::Int(vals) => vals.clear(),
                    RleValues::Dict(codes, dict) => {
                        codes.clear();
                        dict.clear();
                    }
                }
            }
        }
    }

    /// Appends `src[row]` to `self` without materialising a [`Value`] —
    /// the executor's fast path for copying fixed-width data between
    /// columnar chunks. Panics if the column types differ (batch
    /// pipelines construct their chunks from the same schema, so a
    /// mismatch is a programming error, not a data error).
    #[inline]
    pub fn push_from(&mut self, src: &ColumnVector, row: usize) {
        match (self, src) {
            (Self::Int(v, n), Self::Int(sv, sn)) => {
                v.push(sv[row]);
                n.push(sn[row]);
            }
            (Self::Float(v, n), Self::Float(sv, sn)) => {
                v.push(sv[row]);
                n.push(sn[row]);
            }
            (Self::Str(v, n), Self::Str(sv, sn)) => {
                v.push(Arc::clone(&sv[row]));
                n.push(sn[row]);
            }
            (Self::Str(v, n), Self::Dict(codes, sn, values)) => {
                if sn[row] {
                    v.push(Arc::clone(&values[codes[row] as usize]));
                    n.push(true);
                } else {
                    v.push(Arc::from(""));
                    n.push(false);
                }
            }
            (Self::Int(v, n), Self::Rle(r)) if matches!(r.values, RleValues::Int(_)) => {
                let k = r.run_of(row);
                let RleValues::Int(vals) = &r.values else {
                    unreachable!("guarded by the match arm")
                };
                v.push(vals[k]);
                n.push(r.valid[k]);
            }
            (Self::Str(v, n), Self::Rle(r)) if r.ty() == ColumnType::Text => {
                let k = r.run_of(row);
                let RleValues::Dict(codes, dict) = &r.values else {
                    unreachable!("guarded by the match arm")
                };
                if r.valid[k] {
                    v.push(Arc::clone(&dict[codes[k] as usize]));
                    n.push(true);
                } else {
                    v.push(Arc::from(""));
                    n.push(false);
                }
            }
            (dst @ Self::Dict(..), src @ (Self::Str(..) | Self::Dict(..) | Self::Rle(..)))
                if src.ty() == ColumnType::Text =>
            {
                let decoded = src.str_at(row);
                let Self::Dict(codes, n, values) = dst else {
                    unreachable!("guarded by the match arm")
                };
                match decoded {
                    Some(s) => {
                        codes.push(dict_code(values, s));
                        n.push(true);
                    }
                    None => {
                        codes.push(0);
                        n.push(false);
                    }
                }
            }
            (dst @ Self::Rle(..), src) if dst.ty() == src.ty() => {
                // RLE destinations re-encode on insert (cold path: the
                // executor never builds RLE chunks, only reads them).
                let ok = dst.push(&src.get(row));
                debug_assert!(ok, "type equality checked by the match guard");
            }
            (dst, src) => panic!(
                "column type mismatch: cannot append {} into {}",
                src.ty().name(),
                dst.ty().name()
            ),
        }
    }

    /// Appends all of `src` to `self` — a bulk column concatenation
    /// (`memcpy` for fixed-width data). Panics on type mismatch, like
    /// [`ColumnVector::push_from`].
    pub fn append_column(&mut self, src: &ColumnVector) {
        match (self, src) {
            (Self::Int(v, n), Self::Int(sv, sn)) => {
                v.extend_from_slice(sv);
                n.extend_from_slice(sn);
            }
            (Self::Float(v, n), Self::Float(sv, sn)) => {
                v.extend_from_slice(sv);
                n.extend_from_slice(sn);
            }
            (Self::Str(v, n), Self::Str(sv, sn)) => {
                v.extend(sv.iter().cloned());
                n.extend_from_slice(sn);
            }
            (Self::Dict(codes, n, values), Self::Dict(sc, sn, sv)) if values == sv => {
                codes.extend_from_slice(sc);
                n.extend_from_slice(sn);
            }
            (dst, src) if dst.ty() == src.ty() => {
                // Mixed text representations (plain ↔ dictionary, or two
                // dictionaries with different code spaces): re-encode row
                // by row.
                for row in 0..src.len() {
                    dst.push_from(src, row);
                }
            }
            (dst, src) => panic!(
                "column type mismatch: cannot append {} column into {}",
                src.ty().name(),
                dst.ty().name()
            ),
        }
    }

    /// Appends the contiguous range `src[start .. start + len]` to `self`
    /// — the scan fast path for unfiltered table chunks, a `memcpy` for
    /// fixed-width data instead of a value-by-value gather. Panics on
    /// type mismatch, like [`ColumnVector::push_from`].
    pub fn append_range(&mut self, src: &ColumnVector, start: usize, len: usize) {
        let end = start + len;
        match (self, src) {
            (Self::Int(v, n), Self::Int(sv, sn)) => {
                v.extend_from_slice(&sv[start..end]);
                n.extend_from_slice(&sn[start..end]);
            }
            (Self::Float(v, n), Self::Float(sv, sn)) => {
                v.extend_from_slice(&sv[start..end]);
                n.extend_from_slice(&sn[start..end]);
            }
            (Self::Str(v, n), Self::Str(sv, sn)) => {
                v.extend(sv[start..end].iter().cloned());
                n.extend_from_slice(&sn[start..end]);
            }
            (Self::Str(v, n), Self::Dict(codes, sn, values)) => {
                v.extend(
                    codes[start..end]
                        .iter()
                        .zip(&sn[start..end])
                        .map(|(&code, &valid)| {
                            if valid {
                                Arc::clone(&values[code as usize])
                            } else {
                                Arc::from("")
                            }
                        }),
                );
                n.extend_from_slice(&sn[start..end]);
            }
            (Self::Int(v, n), Self::Rle(r)) if matches!(r.values, RleValues::Int(_)) => {
                // Run-aware decode: one repeat-fill per run instead of a
                // binary search per row.
                let RleValues::Int(vals) = &r.values else {
                    unreachable!("guarded by the match arm")
                };
                let mut k = r.run_of(start);
                let mut row = start;
                while row < end {
                    let stop = r.run_end(k).min(end);
                    v.extend(std::iter::repeat_n(vals[k], stop - row));
                    n.extend(std::iter::repeat_n(r.valid[k], stop - row));
                    row = stop;
                    k += 1;
                }
            }
            (Self::Str(v, n), Self::Rle(r)) if r.ty() == ColumnType::Text => {
                let RleValues::Dict(codes, dict) = &r.values else {
                    unreachable!("guarded by the match arm")
                };
                let mut k = r.run_of(start);
                let mut row = start;
                while row < end {
                    let stop = r.run_end(k).min(end);
                    let s: Arc<str> = if r.valid[k] {
                        Arc::clone(&dict[codes[k] as usize])
                    } else {
                        Arc::from("")
                    };
                    v.extend((row..stop).map(|_| Arc::clone(&s)));
                    n.extend(std::iter::repeat_n(r.valid[k], stop - row));
                    row = stop;
                    k += 1;
                }
            }
            (dst, src) if dst.ty() == src.ty() => {
                for row in start..end {
                    dst.push_from(src, row);
                }
            }
            (dst, src) => panic!(
                "column type mismatch: cannot append {} range into {}",
                src.ty().name(),
                dst.ty().name()
            ),
        }
    }

    /// Appends `src[row]` for every row id in `rows` — a gather. The
    /// typed match happens once per call instead of once per value.
    pub fn gather_into(&self, rows: &[u32], out: &mut ColumnVector) {
        match (out, self) {
            (Self::Int(v, n), Self::Int(sv, sn)) => {
                v.extend(rows.iter().map(|&r| sv[r as usize]));
                n.extend(rows.iter().map(|&r| sn[r as usize]));
            }
            (Self::Float(v, n), Self::Float(sv, sn)) => {
                v.extend(rows.iter().map(|&r| sv[r as usize]));
                n.extend(rows.iter().map(|&r| sn[r as usize]));
            }
            (Self::Str(v, n), Self::Str(sv, sn)) => {
                v.extend(rows.iter().map(|&r| Arc::clone(&sv[r as usize])));
                n.extend(rows.iter().map(|&r| sn[r as usize]));
            }
            (Self::Str(v, n), Self::Dict(codes, sn, values)) => {
                v.extend(rows.iter().map(|&r| {
                    if sn[r as usize] {
                        Arc::clone(&values[codes[r as usize] as usize])
                    } else {
                        Arc::from("")
                    }
                }));
                n.extend(rows.iter().map(|&r| sn[r as usize]));
            }
            (Self::Int(v, n), Self::Rle(r)) if matches!(r.values, RleValues::Int(_)) => {
                // Selection vectors are (mostly) ascending, so a linear
                // run cursor amortises the per-row run lookup.
                let RleValues::Int(vals) = &r.values else {
                    unreachable!("guarded by the match arm")
                };
                let mut k = 0usize;
                for &row in rows {
                    k = r.seek(k, row as usize);
                    v.push(vals[k]);
                    n.push(r.valid[k]);
                }
            }
            (Self::Str(v, n), Self::Rle(r)) if r.ty() == ColumnType::Text => {
                let RleValues::Dict(codes, dict) = &r.values else {
                    unreachable!("guarded by the match arm")
                };
                let mut k = 0usize;
                for &row in rows {
                    k = r.seek(k, row as usize);
                    if r.valid[k] {
                        v.push(Arc::clone(&dict[codes[k] as usize]));
                        n.push(true);
                    } else {
                        v.push(Arc::from(""));
                        n.push(false);
                    }
                }
            }
            (dst, src) if dst.ty() == src.ty() => {
                for &r in rows {
                    dst.push_from(src, r as usize);
                }
            }
            (dst, src) => panic!(
                "column type mismatch: cannot gather {} into {}",
                src.ty().name(),
                dst.ty().name()
            ),
        }
    }

    /// Whether this column is dictionary-encoded.
    pub fn is_dictionary(&self) -> bool {
        matches!(self, Self::Dict(..))
    }

    /// Dictionary-encodes a plain string column, returning `None` when
    /// the column is not plain text or its cardinality exceeds
    /// `max_distinct` (encoding a near-unique column would waste memory
    /// on the dictionary without shrinking the rows).
    pub fn dictionary_encoded(&self, max_distinct: usize) -> Option<ColumnVector> {
        let Self::Str(v, n) = self else {
            return None;
        };
        let mut lookup: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        let mut values: Vec<Arc<str>> = Vec::new();
        let mut codes: Vec<u32> = Vec::with_capacity(v.len());
        for (s, &valid) in v.iter().zip(n.iter()) {
            if !valid {
                codes.push(0);
                continue;
            }
            let code = *lookup.entry(s.as_ref()).or_insert_with(|| {
                values.push(Arc::clone(s));
                (values.len() - 1) as u32
            });
            if values.len() > max_distinct {
                return None;
            }
            codes.push(code);
        }
        Some(Self::Dict(codes, n.clone(), values))
    }

    /// Whether this column is run-length-encoded.
    pub fn is_rle(&self) -> bool {
        matches!(self, Self::Rle(..))
    }

    /// Run-length-encodes an integer or dictionary-coded column,
    /// returning `None` when the column's domain is not run-length
    /// encodable (floats, plain strings, already-RLE), when it is empty,
    /// or when the average run length falls below `min_avg_run` (short
    /// runs would grow the footprint and defeat run skipping). Adjacent
    /// NULLs coalesce into NULL runs. `min_avg_run = 1` forces encoding
    /// of any non-empty eligible column.
    pub fn rle_encoded(&self, min_avg_run: usize) -> Option<ColumnVector> {
        let len = self.len();
        if len == 0 {
            return None;
        }
        let rle = match self {
            Self::Int(v, n) => {
                let mut ends: Vec<u32> = Vec::new();
                let mut valid: Vec<bool> = Vec::new();
                let mut vals: Vec<i64> = Vec::new();
                for row in 0..len {
                    let same = match (valid.last(), n[row]) {
                        (Some(&false), false) => true,
                        (Some(&was), is) => was && is && *vals.last().unwrap() == v[row],
                        (None, _) => false,
                    };
                    if same {
                        *ends.last_mut().unwrap() += 1;
                    } else {
                        ends.push(row as u32 + 1);
                        valid.push(n[row]);
                        vals.push(if n[row] { v[row] } else { 0 });
                    }
                }
                RleColumn {
                    ends,
                    valid,
                    values: RleValues::Int(vals),
                }
            }
            Self::Dict(codes, n, dict) => {
                let mut ends: Vec<u32> = Vec::new();
                let mut valid: Vec<bool> = Vec::new();
                let mut run_codes: Vec<u32> = Vec::new();
                for row in 0..len {
                    let same = match (valid.last(), n[row]) {
                        (Some(&false), false) => true,
                        (Some(&was), is) => was && is && *run_codes.last().unwrap() == codes[row],
                        (None, _) => false,
                    };
                    if same {
                        *ends.last_mut().unwrap() += 1;
                    } else {
                        ends.push(row as u32 + 1);
                        valid.push(n[row]);
                        run_codes.push(if n[row] { codes[row] } else { 0 });
                    }
                }
                RleColumn {
                    ends,
                    valid,
                    values: RleValues::Dict(run_codes, dict.clone()),
                }
            }
            _ => return None,
        };
        if rle.run_count() * min_avg_run.max(1) > len {
            return None;
        }
        Some(Self::Rle(rle))
    }

    /// The column's physical [`Encoding`].
    pub fn encoding(&self) -> Encoding {
        match self {
            Self::Int(..) | Self::Float(..) | Self::Str(..) => Encoding::Plain,
            Self::Dict(..) => Encoding::Dict,
            Self::Rle(..) => Encoding::Rle,
        }
    }

    /// Re-encodes the column's logical rows into the given physical
    /// layout, forcing the conversion (`max_distinct = usize::MAX` for
    /// dictionaries, `min_avg_run = 1` for runs). When the target is
    /// impossible for the column's domain (RLE or dictionary over a
    /// float column, RLE over an empty column) the plain representation
    /// is returned instead — accessors behave identically either way.
    /// Mutation paths use this to restore a rebuilt column to the
    /// layout it had before the rebuild.
    pub fn reencoded(&self, target: Encoding) -> ColumnVector {
        let plain = self.decoded();
        match target {
            Encoding::Plain => plain,
            Encoding::Dict => plain.dictionary_encoded(usize::MAX).unwrap_or(plain),
            Encoding::Rle => match plain.ty() {
                ColumnType::Text => plain
                    .dictionary_encoded(usize::MAX)
                    .and_then(|d| d.rle_encoded(1))
                    .unwrap_or(plain),
                _ => plain.rle_encoded(1).unwrap_or(plain),
            },
        }
    }

    /// A fully-decoded plain copy of this column (`Dict` → `Str`,
    /// `Rle` → `Int`/`Str`). Plain columns are cloned as-is.
    pub fn decoded(&self) -> ColumnVector {
        match self {
            Self::Int(..) | Self::Float(..) | Self::Str(..) => self.clone(),
            Self::Dict(..) | Self::Rle(..) => {
                let mut out = ColumnVector::with_capacity(self.ty(), self.len());
                out.append_range(self, 0, self.len());
                out
            }
        }
    }

    /// Appends `src[row]` for every row id in the selection vector `sel`
    /// — the scan's bulk gather of filter survivors. Dense selections
    /// (average contiguous span of 4+ rows) take the `append_range`
    /// copy path per span; sparse ones fall back to the per-row gather.
    pub fn append_selected(&self, sel: &[u32], out: &mut ColumnVector) {
        match coalesce_spans(sel) {
            Some(spans) => {
                for &(start, len) in &spans {
                    out.append_range(self, start, len);
                }
            }
            None => self.gather_into(sel, out),
        }
    }
}

/// Splits an ascending selection vector into contiguous `(start, len)`
/// spans when doing so pays off — `None` when the selection is sparse
/// (average span below 4 rows) and a per-row gather is cheaper than the
/// span bookkeeping.
pub fn coalesce_spans(sel: &[u32]) -> Option<Vec<(usize, usize)>> {
    if sel.is_empty() {
        return None;
    }
    let mut spans = 1usize;
    for w in sel.windows(2) {
        if w[1] != w[0] + 1 {
            spans += 1;
        }
    }
    if sel.len() < spans * 4 {
        return None;
    }
    let mut out = Vec::with_capacity(spans);
    let mut start = 0usize;
    for i in 1..=sel.len() {
        if i == sel.len() || sel[i] != sel[i - 1] + 1 {
            out.push((sel[start] as usize, i - start));
            start = i;
        }
    }
    Some(out)
}

/// Looks up `s` in a dictionary, appending it when absent. Linear scan:
/// dictionaries are built for low-cardinality columns, and the engine's
/// hot paths only decode (table columns are the dictionary sources;
/// batch chunks stay plain).
fn dict_code(values: &mut Vec<Arc<str>>, s: &str) -> u32 {
    match values.iter().position(|v| v.as_ref() == s) {
        Some(i) => i as u32,
        None => {
            values.push(Arc::from(s));
            (values.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = ColumnVector::new(ColumnType::Int);
        assert!(c.push(&Value::Int(5)));
        assert!(c.push(&Value::Null));
        assert!(!c.push(&Value::str("no")));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(5));
        assert!(c.get(1).is_null());
        assert!(c.is_null(1));
        assert!(!c.is_null(0));
    }

    #[test]
    fn int_widens_to_float() {
        let mut c = ColumnVector::new(ColumnType::Float);
        assert!(c.push(&Value::Int(3)));
        assert_eq!(c.get(0), Value::Float(3.0));
    }

    #[test]
    fn string_column() {
        let mut c = ColumnVector::with_capacity(ColumnType::Text, 4);
        assert!(c.push(&Value::str("abc")));
        assert!(c.push(&Value::Null));
        assert_eq!(c.get(0).as_str(), Some("abc"));
        assert!(c.get(1).is_null());
        assert_eq!(c.ty(), ColumnType::Text);
    }

    #[test]
    fn push_from_copies_values_and_nulls() {
        let mut src = ColumnVector::new(ColumnType::Int);
        src.push(&Value::Int(4));
        src.push(&Value::Null);
        let mut dst = ColumnVector::new(ColumnType::Int);
        dst.push_from(&src, 1);
        dst.push_from(&src, 0);
        assert!(dst.get(0).is_null());
        assert_eq!(dst.get(1), Value::Int(4));
        dst.clear();
        assert!(dst.is_empty());
    }

    #[test]
    fn gather_collects_row_ids_in_order() {
        let mut src = ColumnVector::new(ColumnType::Text);
        for s in ["a", "b", "c"] {
            src.push(&Value::str(s));
        }
        let mut dst = ColumnVector::new(ColumnType::Text);
        src.gather_into(&[2, 0, 2], &mut dst);
        assert_eq!(dst.len(), 3);
        assert_eq!(dst.get(0), Value::str("c"));
        assert_eq!(dst.get(1), Value::str("a"));
        assert_eq!(dst.get(2), Value::str("c"));
    }

    #[test]
    #[should_panic(expected = "column type mismatch")]
    fn push_from_rejects_type_mismatch() {
        let mut src = ColumnVector::new(ColumnType::Int);
        src.push(&Value::Int(1));
        let mut dst = ColumnVector::new(ColumnType::Text);
        dst.push_from(&src, 0);
    }

    #[test]
    fn column_level_comparisons_match_value_semantics() {
        use std::cmp::Ordering;
        let mut ints = ColumnVector::new(ColumnType::Int);
        let mut floats = ColumnVector::new(ColumnType::Float);
        let mut strs = ColumnVector::new(ColumnType::Text);
        for v in [Value::Int(1), Value::Int(2), Value::Null] {
            ints.push(&v);
        }
        for v in [Value::Float(1.5), Value::Float(2.0), Value::Null] {
            floats.push(&v);
        }
        for v in [Value::str("a"), Value::str("b"), Value::Null] {
            strs.push(&v);
        }
        // sql_cmp_at: NULL on either side is None; cross-numeric via f64.
        assert_eq!(ints.sql_cmp_at(0, &ints, 1), Some(Ordering::Less));
        assert_eq!(ints.sql_cmp_at(0, &ints, 2), None);
        assert_eq!(ints.sql_cmp_at(2, &ints, 2), None);
        assert_eq!(ints.sql_cmp_at(1, &floats, 1), Some(Ordering::Equal));
        assert_eq!(floats.sql_cmp_at(0, &ints, 0), Some(Ordering::Greater));
        assert_eq!(strs.sql_cmp_at(0, &strs, 1), Some(Ordering::Less));
        assert_eq!(strs.sql_cmp_at(0, &strs, 2), None);
        // total_cmp_at: NULLs last, two NULLs equal — and every pair
        // agrees with the Value-level total order.
        assert_eq!(ints.total_cmp_at(0, &ints, 2), Ordering::Less);
        assert_eq!(ints.total_cmp_at(2, &ints, 0), Ordering::Greater);
        assert_eq!(ints.total_cmp_at(2, &ints, 2), Ordering::Equal);
        for a in 0..3 {
            for b in 0..3 {
                assert_eq!(
                    ints.total_cmp_at(a, &floats, b),
                    ints.get(a).total_cmp(&floats.get(b)),
                    "({a},{b})"
                );
                assert_eq!(
                    strs.sql_cmp_at(a, &strs, b),
                    strs.get(a).sql_cmp(&strs.get(b)),
                    "({a},{b})"
                );
            }
        }
    }

    fn sample_str_column() -> ColumnVector {
        let mut c = ColumnVector::new(ColumnType::Text);
        for v in ["red", "blue", "red", "red"] {
            c.push(&Value::str(v));
        }
        c.push(&Value::Null);
        c.push(&Value::str("blue"));
        c
    }

    #[test]
    fn dictionary_round_trips_values_and_nulls() {
        let plain = sample_str_column();
        let dict = plain.dictionary_encoded(16).expect("low cardinality");
        assert!(dict.is_dictionary());
        assert_eq!(dict.ty(), ColumnType::Text);
        assert_eq!(dict.len(), plain.len());
        for row in 0..plain.len() {
            assert_eq!(dict.get(row), plain.get(row), "row {row}");
            assert_eq!(dict.is_null(row), plain.is_null(row));
            assert_eq!(dict.str_at(row), plain.str_at(row));
        }
    }

    #[test]
    fn dictionary_refuses_high_cardinality() {
        let plain = sample_str_column();
        assert!(plain.dictionary_encoded(1).is_none());
        assert!(plain.dictionary_encoded(2).is_some());
        let ints = ColumnVector::new(ColumnType::Int);
        assert!(ints.dictionary_encoded(16).is_none());
    }

    #[test]
    fn dictionary_comparisons_match_plain() {
        let plain = sample_str_column();
        let dict = plain.dictionary_encoded(16).unwrap();
        for a in 0..plain.len() {
            for b in 0..plain.len() {
                assert_eq!(dict.sql_cmp_at(a, &dict, b), plain.sql_cmp_at(a, &plain, b));
                assert_eq!(
                    dict.sql_cmp_at(a, &plain, b),
                    plain.sql_cmp_at(a, &plain, b)
                );
                assert_eq!(
                    plain.sql_cmp_at(a, &dict, b),
                    plain.sql_cmp_at(a, &plain, b)
                );
                assert_eq!(
                    dict.total_cmp_at(a, &dict, b),
                    plain.total_cmp_at(a, &plain, b)
                );
                assert_eq!(
                    dict.total_cmp_at(a, &plain, b),
                    plain.total_cmp_at(a, &plain, b)
                );
            }
        }
    }

    #[test]
    fn dictionary_interoperates_with_plain_copies() {
        let plain = sample_str_column();
        let dict = plain.dictionary_encoded(16).unwrap();
        // push_from / gather / append_range decode into plain columns.
        let mut out = ColumnVector::new(ColumnType::Text);
        out.push_from(&dict, 0);
        out.push_from(&dict, 4);
        assert_eq!(out.get(0), Value::str("red"));
        assert!(out.get(1).is_null());
        let mut gathered = ColumnVector::new(ColumnType::Text);
        dict.gather_into(&[5, 4, 0], &mut gathered);
        assert_eq!(gathered.get(0), Value::str("blue"));
        assert!(gathered.get(1).is_null());
        let mut ranged = ColumnVector::new(ColumnType::Text);
        ranged.append_range(&dict, 3, 3);
        assert_eq!(ranged.len(), 3);
        assert!(ranged.get(1).is_null());
        assert_eq!(ranged.get(2), Value::str("blue"));
        // Dictionary destinations re-encode on insert.
        let mut dict_dst = ColumnVector::new(ColumnType::Text)
            .dictionary_encoded(16)
            .unwrap();
        dict_dst.append_column(&plain);
        dict_dst.append_column(&dict);
        assert_eq!(dict_dst.len(), 2 * plain.len());
        for row in 0..plain.len() {
            assert_eq!(dict_dst.get(row), plain.get(row));
            assert_eq!(dict_dst.get(plain.len() + row), plain.get(row));
        }
        assert!(dict_dst.push(&Value::str("green")));
        assert!(dict_dst.push(&Value::Null));
        assert!(!dict_dst.push(&Value::Int(1)));
        assert_eq!(dict_dst.get(2 * plain.len()), Value::str("green"));
        assert!(dict_dst.is_null(2 * plain.len() + 1));
    }

    #[test]
    fn append_range_copies_contiguous_chunks() {
        let mut src = ColumnVector::new(ColumnType::Int);
        for v in [Value::Int(1), Value::Null, Value::Int(3), Value::Int(4)] {
            src.push(&v);
        }
        let mut dst = ColumnVector::new(ColumnType::Int);
        dst.append_range(&src, 1, 2);
        assert_eq!(dst.len(), 2);
        assert!(dst.get(0).is_null());
        assert_eq!(dst.get(1), Value::Int(3));
        dst.append_range(&src, 0, 0);
        assert_eq!(dst.len(), 2);
    }

    fn sample_runs_int_column() -> ColumnVector {
        let mut c = ColumnVector::new(ColumnType::Int);
        for v in [7, 7, 7, 3, 3] {
            c.push(&Value::Int(v));
        }
        c.push(&Value::Null);
        c.push(&Value::Null);
        c.push(&Value::Int(3));
        c
    }

    #[test]
    fn rle_round_trips_values_and_nulls() {
        let plain = sample_runs_int_column();
        let rle = plain.rle_encoded(2).expect("avg run length 2");
        assert!(rle.is_rle());
        assert_eq!(rle.ty(), ColumnType::Int);
        assert_eq!(rle.len(), plain.len());
        let ColumnVector::Rle(r) = &rle else {
            unreachable!()
        };
        assert_eq!(r.run_count(), 4);
        assert_eq!(r.ends, vec![3, 5, 7, 8]);
        for row in 0..plain.len() {
            assert_eq!(rle.get(row), plain.get(row), "row {row}");
            assert_eq!(rle.is_null(row), plain.is_null(row));
            assert_eq!(rle.int_at(row), plain.int_at(row));
        }
        let decoded = rle.decoded();
        assert!(!decoded.is_rle());
        for row in 0..plain.len() {
            assert_eq!(decoded.get(row), plain.get(row));
        }
    }

    #[test]
    fn values_onto_matches_get_for_every_encoding() {
        let plain = sample_runs_int_column();
        let rle = plain.rle_encoded(2).expect("avg run length 2");
        let mut text = ColumnVector::new(ColumnType::Text);
        for v in ["a", "a", "b", "b", "b"] {
            text.push(&Value::str(v));
        }
        text.push(&Value::Null);
        text.push(&Value::Null);
        text.push(&Value::str("b"));
        let dict = text.dictionary_encoded(16).unwrap();
        let dict_rle = dict.rle_encoded(2).expect("runs over codes");
        let mut float = ColumnVector::new(ColumnType::Float);
        for v in [Value::Float(1.5), Value::Null, Value::Float(-0.0)] {
            float.push(&v);
        }
        for col in [&plain, &rle, &text, &dict, &dict_rle, &float] {
            let mut rows: Vec<Vec<Value>> = vec![Vec::new(); col.len()];
            col.values_onto(&mut rows);
            for (row, slot) in rows.iter().enumerate() {
                assert_eq!(slot.len(), 1);
                assert_eq!(slot[0], col.get(row), "row {row}");
            }
        }
    }

    #[test]
    fn rle_over_dictionary_codes() {
        let mut plain = ColumnVector::new(ColumnType::Text);
        for v in ["a", "a", "b", "b", "b"] {
            plain.push(&Value::str(v));
        }
        plain.push(&Value::Null);
        let dict = plain.dictionary_encoded(16).unwrap();
        let rle = dict.rle_encoded(2).expect("three runs over six rows");
        assert_eq!(rle.ty(), ColumnType::Text);
        for row in 0..plain.len() {
            assert_eq!(rle.get(row), plain.get(row), "row {row}");
            assert_eq!(rle.str_at(row), plain.str_at(row));
        }
        // Plain strings are never run-length encoded directly.
        assert!(plain.rle_encoded(1).is_none());
    }

    #[test]
    fn rle_refuses_short_runs_floats_and_empty() {
        let mut distinct = ColumnVector::new(ColumnType::Int);
        for v in [1, 2, 3, 4] {
            distinct.push(&Value::Int(v));
        }
        assert!(distinct.rle_encoded(2).is_none());
        assert!(distinct.rle_encoded(1).is_some());
        let mut floats = ColumnVector::new(ColumnType::Float);
        floats.push(&Value::Float(1.0));
        floats.push(&Value::Float(1.0));
        assert!(floats.rle_encoded(1).is_none());
        assert!(ColumnVector::new(ColumnType::Int).rle_encoded(1).is_none());
    }

    #[test]
    fn rle_comparisons_match_plain() {
        let plain = sample_runs_int_column();
        let rle = plain.rle_encoded(1).unwrap();
        for a in 0..plain.len() {
            for b in 0..plain.len() {
                assert_eq!(rle.sql_cmp_at(a, &rle, b), plain.sql_cmp_at(a, &plain, b));
                assert_eq!(rle.sql_cmp_at(a, &plain, b), plain.sql_cmp_at(a, &plain, b));
                assert_eq!(
                    rle.total_cmp_at(a, &rle, b),
                    plain.total_cmp_at(a, &plain, b)
                );
                assert_eq!(
                    rle.total_cmp_at(a, &plain, b),
                    plain.total_cmp_at(a, &plain, b)
                );
            }
        }
    }

    #[test]
    fn rle_interoperates_with_plain_copies() {
        let plain = sample_runs_int_column();
        let rle = plain.rle_encoded(1).unwrap();
        let mut out = ColumnVector::new(ColumnType::Int);
        out.push_from(&rle, 0);
        out.push_from(&rle, 5);
        assert_eq!(out.get(0), Value::Int(7));
        assert!(out.get(1).is_null());
        let mut gathered = ColumnVector::new(ColumnType::Int);
        rle.gather_into(&[7, 6, 0, 4], &mut gathered);
        assert_eq!(gathered.get(0), Value::Int(3));
        assert!(gathered.get(1).is_null());
        assert_eq!(gathered.get(2), Value::Int(7));
        assert_eq!(gathered.get(3), Value::Int(3));
        let mut ranged = ColumnVector::new(ColumnType::Int);
        ranged.append_range(&rle, 2, 4);
        assert_eq!(ranged.len(), 4);
        assert_eq!(ranged.get(0), Value::Int(7));
        assert_eq!(ranged.get(1), Value::Int(3));
        assert!(ranged.get(3).is_null());
        // RLE destinations re-encode on insert and stay run-compressed.
        assert!(ColumnVector::new(ColumnType::Int).rle_encoded(1).is_none());
        let mut rle_dst = sample_runs_int_column().rle_encoded(1).unwrap();
        rle_dst.append_column(&plain);
        assert_eq!(rle_dst.len(), 2 * plain.len());
        for row in 0..plain.len() {
            assert_eq!(rle_dst.get(plain.len() + row), plain.get(row));
        }
        assert!(rle_dst.push(&Value::Int(3)));
        assert!(!rle_dst.push(&Value::str("no")));
        let ColumnVector::Rle(r) = &rle_dst else {
            unreachable!()
        };
        // The trailing Int(3) extends the final run instead of opening
        // a new one.
        assert_eq!(r.run_end(r.run_count() - 1), rle_dst.len());
    }

    #[test]
    fn reencoded_round_trips_every_layout() {
        let text = sample_str_column();
        let ints = sample_runs_int_column();
        let mut floats = ColumnVector::new(ColumnType::Float);
        floats.push(&Value::Float(1.5));
        floats.push(&Value::Null);
        for (col, kind) in [
            (&text, Encoding::Plain),
            (&text, Encoding::Dict),
            (&text, Encoding::Rle),
            (&ints, Encoding::Plain),
            (&ints, Encoding::Rle),
            (&floats, Encoding::Plain),
        ] {
            let re = col.reencoded(kind);
            assert_eq!(re.encoding(), kind, "{kind:?} target honoured");
            assert_eq!(re.len(), col.len());
            for row in 0..col.len() {
                assert_eq!(re.get(row), col.get(row), "{kind:?} row {row}");
                assert_eq!(re.is_null(row), col.is_null(row));
            }
        }
        // Impossible targets degrade to plain, values intact.
        let f_rle = floats.reencoded(Encoding::Rle);
        assert_eq!(f_rle.encoding(), Encoding::Plain);
        assert_eq!(f_rle.get(0), floats.get(0));
        let empty = ColumnVector::new(ColumnType::Int).reencoded(Encoding::Rle);
        assert_eq!(empty.encoding(), Encoding::Plain);
        assert!(empty.is_empty());
        // Re-encoding an already-encoded column preserves it bit-for-bit
        // in the logical sense and structurally in the physical sense.
        let dict = text.dictionary_encoded(16).unwrap();
        let back = dict.reencoded(Encoding::Dict);
        assert!(back.is_dictionary());
        assert_eq!(back.len(), dict.len());
    }

    #[test]
    fn selection_span_coalescing() {
        assert!(coalesce_spans(&[]).is_none());
        assert!(coalesce_spans(&[1, 5, 9]).is_none());
        assert_eq!(
            coalesce_spans(&[2, 3, 4, 5, 10, 11, 12, 13]),
            Some(vec![(2, 4), (10, 4)])
        );
        let plain = sample_runs_int_column();
        let mut dense = ColumnVector::new(ColumnType::Int);
        plain.append_selected(&[1, 2, 3, 4, 5, 6, 7], &mut dense);
        let mut sparse = ColumnVector::new(ColumnType::Int);
        plain.append_selected(&[1, 4, 7], &mut sparse);
        assert_eq!(dense.len(), 7);
        assert_eq!(sparse.len(), 3);
        assert_eq!(dense.get(0), plain.get(1));
        assert_eq!(sparse.get(2), plain.get(7));
    }

    #[test]
    fn int_at_fast_path() {
        let mut c = ColumnVector::new(ColumnType::Int);
        c.push(&Value::Int(9));
        c.push(&Value::Null);
        assert_eq!(c.int_at(0), Some(9));
        assert_eq!(c.int_at(1), None);
        let f = ColumnVector::new(ColumnType::Float);
        assert!(f.is_empty());
    }
}
