//! Deterministic synthetic data generation.
//!
//! The experiments need data with three properties the paper's IMDB workload
//! has: *skew* (zipfian popularity, so join orders matter), *foreign-key
//! structure* (star/snowflake join graphs), and *correlation between
//! columns* (which breaks the optimizer's independence assumption and makes
//! the cost model systematically wrong — the premise of §5.2's latency
//! fine-tuning). Every generator takes a seeded RNG, so datasets are fully
//! reproducible.

use crate::error::StorageError;
use crate::table::Table;
use crate::value::Value;
use hfqo_catalog::TableSchema;
use rand::rngs::StdRng;
use rand::Rng;

/// How to generate values for one column.
#[derive(Debug, Clone)]
pub enum Distribution {
    /// Row number (0-based): primary keys.
    Sequential,
    /// Uniform integer in `[lo, hi]`.
    UniformInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Zipf-distributed integer in `[0, n)` with exponent `s` (s=0 is
    /// uniform; s≈1 is classic web-like skew).
    Zipf {
        /// Number of distinct values.
        n: u64,
        /// Skew exponent.
        s: f64,
    },
    /// Uniform foreign key into a table with `target_rows` rows.
    FkUniform {
        /// Row count of the referenced table.
        target_rows: u64,
    },
    /// Zipf-skewed foreign key: a few referenced rows are very popular.
    FkZipf {
        /// Row count of the referenced table.
        target_rows: u64,
        /// Skew exponent.
        s: f64,
    },
    /// Value correlated with an earlier column in the same table: with
    /// probability `1 - noise` the value is `source_value % levels`,
    /// otherwise a uniform level. High correlation (low noise) makes
    /// multi-predicate selectivity estimates based on independence wrong.
    Correlated {
        /// Index of the source column (must precede this column).
        source: usize,
        /// Number of distinct levels.
        levels: u64,
        /// Probability of breaking the correlation.
        noise: f64,
    },
    /// Uniform float in `[lo, hi)`.
    UniformFloat {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Strings drawn from a pool of `pool` values named `{prefix}{i}`,
    /// zipf-skewed with exponent `s`.
    TextPool {
        /// Prefix of generated strings.
        prefix: &'static str,
        /// Pool size.
        pool: u64,
        /// Skew exponent.
        s: f64,
    },
}

/// A column generator: a distribution plus a NULL fraction.
#[derive(Debug, Clone)]
pub struct ColumnGen {
    /// Value distribution.
    pub dist: Distribution,
    /// Fraction of rows set to NULL (the column must be nullable).
    pub null_frac: f64,
}

impl ColumnGen {
    /// A generator with no NULLs.
    pub fn new(dist: Distribution) -> Self {
        Self {
            dist,
            null_frac: 0.0,
        }
    }

    /// A generator producing NULLs at the given rate.
    pub fn with_nulls(dist: Distribution, null_frac: f64) -> Self {
        Self { dist, null_frac }
    }
}

/// A whole-table generator.
#[derive(Debug, Clone)]
pub struct TableGen {
    /// Per-column generators, one per schema column.
    pub columns: Vec<ColumnGen>,
    /// Number of rows to generate.
    pub rows: usize,
}

/// Precomputed zipf CDF sampler over `[0, n)`.
#[derive(Debug, Clone)]
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: u64, s: f64) -> Self {
        let n = n.max(1) as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

enum Sampler {
    Sequential,
    UniformInt(i64, i64),
    Zipf(ZipfSampler),
    UniformFloat(f64, f64),
    Text(&'static str, ZipfSampler),
    Correlated {
        source: usize,
        levels: u64,
        noise: f64,
        fallback: ZipfSampler,
    },
}

impl Sampler {
    fn from_dist(dist: &Distribution) -> Self {
        match dist {
            Distribution::Sequential => Sampler::Sequential,
            Distribution::UniformInt { lo, hi } => Sampler::UniformInt(*lo, *hi),
            Distribution::Zipf { n, s } => Sampler::Zipf(ZipfSampler::new(*n, *s)),
            Distribution::FkUniform { target_rows } => {
                Sampler::UniformInt(0, (*target_rows as i64 - 1).max(0))
            }
            Distribution::FkZipf { target_rows, s } => {
                Sampler::Zipf(ZipfSampler::new(*target_rows, *s))
            }
            Distribution::UniformFloat { lo, hi } => Sampler::UniformFloat(*lo, *hi),
            Distribution::TextPool { prefix, pool, s } => {
                Sampler::Text(prefix, ZipfSampler::new(*pool, *s))
            }
            Distribution::Correlated {
                source,
                levels,
                noise,
            } => Sampler::Correlated {
                source: *source,
                levels: (*levels).max(1),
                noise: *noise,
                fallback: ZipfSampler::new(*levels, 0.0),
            },
        }
    }

    fn sample(&self, row: usize, earlier: &[Value], rng: &mut StdRng) -> Value {
        match self {
            Sampler::Sequential => Value::Int(row as i64),
            Sampler::UniformInt(lo, hi) => Value::Int(rng.gen_range(*lo..=*hi)),
            Sampler::Zipf(z) => Value::Int(z.sample(rng) as i64),
            Sampler::UniformFloat(lo, hi) => Value::Float(rng.gen_range(*lo..*hi)),
            Sampler::Text(prefix, z) => Value::str(format!("{prefix}{}", z.sample(rng))),
            Sampler::Correlated {
                source,
                levels,
                noise,
                fallback,
            } => {
                let broke: f64 = rng.gen();
                if broke < *noise {
                    Value::Int(fallback.sample(rng) as i64)
                } else {
                    let src = earlier.get(*source).and_then(Value::as_int).unwrap_or(0);
                    Value::Int(src.rem_euclid(*levels as i64))
                }
            }
        }
    }
}

impl TableGen {
    /// Generates a table shaped to `schema`.
    ///
    /// Fails if the generator arity does not match the schema, or a NULL
    /// fraction targets a non-nullable column.
    pub fn generate(&self, schema: &TableSchema, rng: &mut StdRng) -> Result<Table, StorageError> {
        if self.columns.len() != schema.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "generator for `{}` has {} columns, schema has {}",
                schema.name(),
                self.columns.len(),
                schema.arity()
            )));
        }
        for (gen, col) in self.columns.iter().zip(schema.columns()) {
            if gen.null_frac > 0.0 && !col.is_nullable() {
                return Err(StorageError::SchemaMismatch(format!(
                    "null_frac on non-nullable column `{}.{}`",
                    schema.name(),
                    col.name()
                )));
            }
        }
        let samplers: Vec<Sampler> = self
            .columns
            .iter()
            .map(|c| Sampler::from_dist(&c.dist))
            .collect();
        let mut table = Table::with_capacity(schema.clone(), self.rows);
        let mut row_buf: Vec<Value> = Vec::with_capacity(schema.arity());
        for row in 0..self.rows {
            row_buf.clear();
            for (i, sampler) in samplers.iter().enumerate() {
                let null_roll: f64 = rng.gen();
                let v = if null_roll < self.columns[i].null_frac {
                    Value::Null
                } else {
                    sampler.sample(row, &row_buf, rng)
                };
                row_buf.push(v);
            }
            table.append_row(&row_buf)?;
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::{Column, ColumnId, ColumnType};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn gen_table(gen: TableGen, schema: TableSchema) -> Table {
        gen.generate(&schema, &mut rng()).unwrap()
    }

    #[test]
    fn sequential_is_row_number() {
        let schema = TableSchema::new("t", vec![Column::new("id", ColumnType::Int)]);
        let t = gen_table(
            TableGen {
                columns: vec![ColumnGen::new(Distribution::Sequential)],
                rows: 5,
            },
            schema,
        );
        for i in 0..5 {
            assert_eq!(t.value_at(i, ColumnId(0)), Value::Int(i as i64));
        }
    }

    #[test]
    fn zipf_is_skewed_toward_zero() {
        let schema = TableSchema::new("t", vec![Column::new("v", ColumnType::Int)]);
        let t = gen_table(
            TableGen {
                columns: vec![ColumnGen::new(Distribution::Zipf { n: 100, s: 1.2 })],
                rows: 2000,
            },
            schema,
        );
        let zeros = (0..2000)
            .filter(|&r| t.value_at(r, ColumnId(0)) == Value::Int(0))
            .count();
        // Rank-0 should dominate: far more than the uniform 20/2000.
        assert!(zeros > 200, "zipf head count was {zeros}");
    }

    #[test]
    fn uniform_int_within_bounds() {
        let schema = TableSchema::new("t", vec![Column::new("v", ColumnType::Int)]);
        let t = gen_table(
            TableGen {
                columns: vec![ColumnGen::new(Distribution::UniformInt { lo: 5, hi: 9 })],
                rows: 500,
            },
            schema,
        );
        for r in 0..500 {
            let v = t.value_at(r, ColumnId(0)).as_int().unwrap();
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn correlated_column_tracks_source() {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ],
        );
        let t = gen_table(
            TableGen {
                columns: vec![
                    ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 999 }),
                    ColumnGen::new(Distribution::Correlated {
                        source: 0,
                        levels: 10,
                        noise: 0.0,
                    }),
                ],
                rows: 300,
            },
            schema,
        );
        for r in 0..300 {
            let a = t.value_at(r, ColumnId(0)).as_int().unwrap();
            let b = t.value_at(r, ColumnId(1)).as_int().unwrap();
            assert_eq!(b, a % 10);
        }
    }

    #[test]
    fn null_fraction_respected_and_validated() {
        let schema = TableSchema::new("t", vec![Column::nullable("v", ColumnType::Int)]);
        let t = gen_table(
            TableGen {
                columns: vec![ColumnGen::with_nulls(
                    Distribution::UniformInt { lo: 0, hi: 9 },
                    0.5,
                )],
                rows: 1000,
            },
            schema,
        );
        let nulls = (0..1000)
            .filter(|&r| t.value_at(r, ColumnId(0)).is_null())
            .count();
        assert!((350..=650).contains(&nulls), "null count was {nulls}");

        // NULLs into a non-nullable column are rejected up front.
        let strict = TableSchema::new("t", vec![Column::new("v", ColumnType::Int)]);
        let err = TableGen {
            columns: vec![ColumnGen::with_nulls(Distribution::Sequential, 0.1)],
            rows: 1,
        }
        .generate(&strict, &mut rng());
        assert!(err.is_err());
    }

    #[test]
    fn determinism_under_same_seed() {
        let schema = TableSchema::new("t", vec![Column::new("v", ColumnType::Int)]);
        let gen = TableGen {
            columns: vec![ColumnGen::new(Distribution::Zipf { n: 50, s: 1.0 })],
            rows: 100,
        };
        let a = gen.generate(&schema, &mut rng()).unwrap();
        let b = gen.generate(&schema, &mut rng()).unwrap();
        for r in 0..100 {
            assert_eq!(a.value_at(r, ColumnId(0)), b.value_at(r, ColumnId(0)));
        }
    }

    #[test]
    fn text_pool_values() {
        let schema = TableSchema::new("t", vec![Column::new("v", ColumnType::Text)]);
        let t = gen_table(
            TableGen {
                columns: vec![ColumnGen::new(Distribution::TextPool {
                    prefix: "kw_",
                    pool: 10,
                    s: 0.5,
                })],
                rows: 50,
            },
            schema,
        );
        for r in 0..50 {
            let v = t.value_at(r, ColumnId(0));
            assert!(v.as_str().unwrap().starts_with("kw_"));
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let schema = TableSchema::new(
            "t",
            vec![
                Column::new("a", ColumnType::Int),
                Column::new("b", ColumnType::Int),
            ],
        );
        let err = TableGen {
            columns: vec![ColumnGen::new(Distribution::Sequential)],
            rows: 1,
        }
        .generate(&schema, &mut rng());
        assert!(err.is_err());
    }
}
