//! Multi-layer perceptrons.

use crate::layer::{Activation, Dense};
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// A feed-forward network: dense layers with a shared hidden activation
/// and a linear output layer (logits or scalar predictions).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
    hidden_activation: Activation,
}

// Policy snapshots ship cloned networks across threads (parallel
// episode collection); forward passes take `&self`, so `Sync` must
// hold too. Owned weight buffers give both for free — this assertion
// keeps it that way.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mlp>();
};

/// Per-layer parameter gradients from one backward pass.
#[derive(Debug, Clone)]
pub struct MlpGradients {
    /// `(grad_w, grad_b)` per layer, in layer order.
    pub layers: Vec<(Matrix, Vec<f32>)>,
}

impl MlpGradients {
    /// Zero gradients shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        Self {
            layers: mlp
                .layers
                .iter()
                .map(|l| (Matrix::zeros(l.w.rows(), l.w.cols()), vec![0.0; l.b.len()]))
                .collect(),
        }
    }

    /// Accumulates another gradient set (for minibatch averaging).
    pub fn add(&mut self, other: &MlpGradients) {
        for ((w, b), (ow, ob)) in self.layers.iter_mut().zip(&other.layers) {
            for (x, y) in w.data_mut().iter_mut().zip(ow.data()) {
                *x += y;
            }
            for (x, y) in b.iter_mut().zip(ob) {
                *x += y;
            }
        }
    }

    /// Scales all gradients (e.g. by `1 / batch`).
    pub fn scale(&mut self, factor: f32) {
        for (w, b) in &mut self.layers {
            for x in w.data_mut() {
                *x *= factor;
            }
            for x in b.iter_mut() {
                *x *= factor;
            }
        }
    }

    /// Global L2 norm of all gradients.
    pub fn l2_norm(&self) -> f32 {
        let mut acc = 0.0f32;
        for (w, b) in &self.layers {
            acc += w.data().iter().map(|x| x * x).sum::<f32>();
            acc += b.iter().map(|x| x * x).sum::<f32>();
        }
        acc.sqrt()
    }

    /// Clips the global norm to `max_norm` (no-op when already below).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.l2_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }
}

/// Forward-pass cache required for backpropagation.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Input plus every layer's post-activation output, in order
    /// (`activations[0]` is the network input).
    activations: Vec<Matrix>,
}

impl ForwardCache {
    /// The network output.
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("non-empty cache")
    }
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[input, 128, 128,
    /// actions]`, ReLU (He-initialised) between hidden layers and a linear
    /// Xavier-initialised output layer.
    pub fn new(sizes: &[usize], hidden_activation: Activation, rng: &mut StdRng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let is_output = i == sizes.len() - 2;
            let layer = if is_output || hidden_activation == Activation::Tanh {
                Dense::xavier(sizes[i], sizes[i + 1], rng)
            } else {
                Dense::new(sizes[i], sizes[i + 1], rng)
            };
            layers.push(layer);
        }
        Self {
            layers,
            hidden_activation,
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.layers.first().expect("non-empty").input_size()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.layers.last().expect("non-empty").output_size()
    }

    /// Total parameter count.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.data().len() + l.b.len())
            .sum()
    }

    /// The layers (read-only).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable layer access (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Forward pass, returning the cache needed by [`backward`].
    ///
    /// [`backward`]: Self::backward
    pub fn forward(&self, x: &Matrix) -> ForwardCache {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(x.clone());
        for (i, layer) in self.layers.iter().enumerate() {
            let mut out = layer.forward(activations.last().expect("non-empty"));
            if i + 1 < self.layers.len() {
                self.hidden_activation.forward(&mut out);
            }
            activations.push(out);
        }
        ForwardCache { activations }
    }

    /// Convenience forward pass that discards the cache.
    pub fn predict(&self, x: &Matrix) -> Matrix {
        self.forward(x).output().clone()
    }

    /// Backward pass from the gradient w.r.t. the network output;
    /// returns per-layer parameter gradients.
    pub fn backward(&self, cache: &ForwardCache, grad_output: Matrix) -> MlpGradients {
        let mut grads = Vec::with_capacity(self.layers.len());
        let mut grad = grad_output;
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let input = &cache.activations[i];
            let (grad_in, grad_w, grad_b) = layer.backward(input, &grad);
            grads.push((grad_w, grad_b));
            grad = grad_in;
            if i > 0 {
                // The incoming activation was the previous layer's output;
                // apply its activation derivative.
                self.hidden_activation
                    .backward(&cache.activations[i], &mut grad);
            }
        }
        grads.reverse();
        MlpGradients { layers: grads }
    }

    /// Copies all parameters from another identically-shaped network
    /// (used by target-network style updates and re-demonstration).
    pub fn copy_from(&mut self, other: &Mlp) {
        assert_eq!(self.layers.len(), other.layers.len(), "shape mismatch");
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            mine.w = theirs.w.clone();
            mine.b = theirs.b.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> Mlp {
        Mlp::new(
            &[3, 5, 4, 2],
            Activation::ReLU,
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn shapes_and_counts() {
        let mlp = tiny();
        assert_eq!(mlp.input_size(), 3);
        assert_eq!(mlp.output_size(), 2);
        assert_eq!(mlp.parameter_count(), 3 * 5 + 5 + 5 * 4 + 4 + 4 * 2 + 2);
        let x = Matrix::zeros(7, 3);
        let y = mlp.predict(&x);
        assert_eq!(y.rows(), 7);
        assert_eq!(y.cols(), 2);
    }

    /// Full-network gradient check: scalar loss = sum of outputs.
    #[test]
    fn backward_matches_finite_difference() {
        let mut mlp = Mlp::new(&[4, 6, 3], Activation::Tanh, &mut StdRng::seed_from_u64(2));
        let x = Matrix::from_vec(2, 4, vec![0.1, -0.3, 0.2, 0.5, -0.1, 0.4, 0.0, -0.2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::from_vec(2, 3, vec![1.0; 6]);
        let grads = mlp.backward(&cache, grad_out);
        let loss = |m: &Mlp| -> f32 { m.predict(&x).data().iter().sum() };
        let base = loss(&mlp);
        let eps = 1e-3f32;
        for layer_idx in 0..2 {
            // Check a handful of weights per layer.
            for widx in [0usize, 3, 7] {
                if widx >= mlp.layers()[layer_idx].w.data().len() {
                    continue;
                }
                let orig = mlp.layers()[layer_idx].w.data()[widx];
                mlp.layers_mut()[layer_idx].w.data_mut()[widx] = orig + eps;
                let bumped = loss(&mlp);
                mlp.layers_mut()[layer_idx].w.data_mut()[widx] = orig;
                let fd = (bumped - base) / eps;
                let an = grads.layers[layer_idx].0.data()[widx];
                assert!(
                    (fd - an).abs() < 2e-2,
                    "layer {layer_idx} w[{widx}]: fd {fd} vs an {an}"
                );
            }
        }
    }

    #[test]
    fn gradient_utilities() {
        let mlp = tiny();
        let mut g = MlpGradients::zeros_like(&mlp);
        assert_eq!(g.l2_norm(), 0.0);
        let x = Matrix::from_vec(1, 3, vec![1.0, -1.0, 0.5]);
        let cache = mlp.forward(&x);
        let real = mlp.backward(&cache, Matrix::from_vec(1, 2, vec![1.0, -1.0]));
        g.add(&real);
        g.add(&real);
        g.scale(0.5);
        // g should now equal real.
        for (a, b) in g.layers.iter().zip(&real.layers) {
            for (x, y) in a.0.data().iter().zip(b.0.data()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
        let norm_before = g.l2_norm();
        g.clip_global_norm(norm_before / 2.0);
        assert!((g.l2_norm() - norm_before / 2.0).abs() < 1e-3);
    }

    #[test]
    fn copy_from_clones_parameters() {
        let a = tiny();
        let mut b = Mlp::new(
            &[3, 5, 4, 2],
            Activation::ReLU,
            &mut StdRng::seed_from_u64(99),
        );
        assert_ne!(a, b);
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a, b);
    }
}
