//! # hfqo-nn
//!
//! A small, dependency-free neural-network library: row-major `f32`
//! matrices, dense layers with manual backpropagation, ReLU/Tanh
//! activations, masked-softmax policy heads, cross-entropy / MSE /
//! policy-gradient losses, and SGD / Adam optimizers.
//!
//! Scope is deliberately exactly what the paper's agents need (ReJOIN used
//! a two-hidden-layer 128×128 MLP): no autograd graph, no GPU — just
//! gradient-checked dense math that runs deterministically from a seed,
//! which is what makes the experiments in `hfqo-bench` reproducible.

pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;

pub use layer::{Activation, Dense};
pub use loss::{cross_entropy_grad, masked_softmax, mse_grad, policy_gradient};
pub use matrix::Matrix;
pub use mlp::{Mlp, MlpGradients};
pub use optim::{Adam, Optimizer, Sgd};
