//! Losses and policy heads.

use crate::matrix::Matrix;

/// Numerically-stable softmax over one logits row, restricted to the
/// positions where `mask` is `true`. Masked positions get probability 0.
///
/// Action masking is how the agents keep the fixed-width `n_max²` action
/// layer valid for smaller queries: invalid pair actions are masked out
/// before sampling.
/// # Degenerate rows
///
/// * All positions masked: there is nothing to normalise over, so the
///   result is all zeros — callers treat this as a bug in the mask
///   (environments always expose at least one action).
/// * At least one valid position but a degenerate `sum` (NaN logits,
///   all valid logits `−∞`, or a non-finite maximum): the result is
///   **uniform over the valid positions**. Previously these rows came
///   back as all-zero or all-NaN and surfaced much later as the
///   sampler's far-from-root-cause "mask has a valid action" panic.
pub fn masked_softmax(logits: &[f32], mask: &[bool]) -> Vec<f32> {
    debug_assert_eq!(logits.len(), mask.len());
    let valid = mask.iter().filter(|&&m| m).count();
    let mut out = vec![0.0f32; logits.len()];
    if valid == 0 {
        return out;
    }
    let mut max = f32::NEG_INFINITY;
    for (l, &m) in logits.iter().zip(mask) {
        if m && *l > max {
            max = *l;
        }
    }
    let mut sum = 0.0f32;
    if max.is_finite() {
        for i in 0..logits.len() {
            if mask[i] {
                let e = (logits[i] - max).exp();
                out[i] = e;
                sum += e;
            }
        }
    }
    if sum > 0.0 && sum.is_finite() {
        for x in &mut out {
            *x /= sum;
        }
    } else {
        // NaN logits poison `sum`; all-NaN or all-−∞ valid logits leave
        // `max` non-finite. Fall back to uniform over the valid set so
        // downstream sampling/argmax stays well-defined.
        let p = 1.0 / valid as f32;
        for (o, &m) in out.iter_mut().zip(mask) {
            *o = if m { p } else { 0.0 };
        }
    }
    out
}

/// [`masked_softmax`] over every row of a B×A logits matrix with
/// per-row masks. Row `r` of the result is bit-identical to
/// `masked_softmax(logits.row(r), masks[r])` — the batched update path
/// relies on this to preserve per-row parity.
pub fn masked_softmax_batch(logits: &Matrix, masks: &[&[bool]]) -> Matrix {
    assert_eq!(
        logits.rows(),
        masks.len(),
        "masked_softmax_batch: {} logits rows vs {} masks",
        logits.rows(),
        masks.len()
    );
    let cols = logits.cols();
    let mut out = Matrix::zeros(logits.rows(), cols);
    for (r, mask) in masks.iter().enumerate() {
        let probs = masked_softmax(logits.row(r), mask);
        out.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(&probs);
    }
    out
}

/// Gradient of `-log π(action)` w.r.t. the logits row, scaled by
/// `advantage`: the REINFORCE policy-gradient contribution
/// `(π − onehot(action)) · advantage`, with masked positions zeroed.
pub fn policy_gradient(logits: &[f32], mask: &[bool], action: usize, advantage: f32) -> Vec<f32> {
    policy_gradient_from_probs(&masked_softmax(logits, mask), mask, action, advantage)
}

/// [`policy_gradient`] from an already-computed probability row, for
/// callers (PPO ratios, entropy bonuses) that need the softmax anyway —
/// the probabilities are not recomputed.
pub fn policy_gradient_from_probs(
    probs: &[f32],
    mask: &[bool],
    action: usize,
    advantage: f32,
) -> Vec<f32> {
    let mut grad = probs.to_vec();
    grad[action] -= 1.0;
    for (g, &m) in grad.iter_mut().zip(mask) {
        if m {
            *g *= advantage;
        } else {
            *g = 0.0;
        }
    }
    grad
}

/// [`policy_gradient`] over every row of a B×A logits matrix: row `r`
/// of the result is the REINFORCE gradient for `(masks[r], actions[r],
/// advantages[r])`, bit-identical to the per-row call. One call per
/// minibatch feeds a single backward pass instead of B row-vector
/// backward passes.
pub fn policy_gradient_batch(
    logits: &Matrix,
    masks: &[&[bool]],
    actions: &[usize],
    advantages: &[f32],
) -> Matrix {
    assert_eq!(logits.rows(), masks.len(), "policy_gradient_batch: masks");
    assert_eq!(
        logits.rows(),
        actions.len(),
        "policy_gradient_batch: actions"
    );
    assert_eq!(
        logits.rows(),
        advantages.len(),
        "policy_gradient_batch: advantages"
    );
    let probs = masked_softmax_batch(logits, masks);
    let cols = logits.cols();
    let mut out = Matrix::zeros(logits.rows(), cols);
    for (r, mask) in masks.iter().enumerate() {
        let grad = policy_gradient_from_probs(probs.row(r), mask, actions[r], advantages[r]);
        out.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(&grad);
    }
    out
}

/// Cross-entropy loss and logits gradient against a target action
/// (imitation learning): returns `(loss, grad)` where
/// `loss = −log π(target)`.
pub fn cross_entropy_grad(logits: &[f32], mask: &[bool], target: usize) -> (f32, Vec<f32>) {
    let probs = masked_softmax(logits, mask);
    let p = probs[target].max(1e-12);
    let loss = -p.ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    for (g, &m) in grad.iter_mut().zip(mask) {
        if !m {
            *g = 0.0;
        }
    }
    (loss, grad)
}

/// [`cross_entropy_grad`] over every row of a B×A logits matrix:
/// returns the **summed** loss (accumulated in row order, exactly as a
/// per-row loop would) and the B×A gradient matrix whose row `r` is
/// bit-identical to the per-row call. Callers divide by B for the mean.
pub fn cross_entropy_grad_batch(
    logits: &Matrix,
    masks: &[&[bool]],
    targets: &[usize],
) -> (f32, Matrix) {
    assert_eq!(
        logits.rows(),
        masks.len(),
        "cross_entropy_grad_batch: masks"
    );
    assert_eq!(
        logits.rows(),
        targets.len(),
        "cross_entropy_grad_batch: targets"
    );
    let cols = logits.cols();
    let mut out = Matrix::zeros(logits.rows(), cols);
    let mut total_loss = 0.0f32;
    for (r, mask) in masks.iter().enumerate() {
        let (loss, grad) = cross_entropy_grad(logits.row(r), mask, targets[r]);
        total_loss += loss;
        out.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(&grad);
    }
    (total_loss, out)
}

/// Mean-squared-error loss and gradient for a batch of scalar predictions:
/// returns `(loss, grad_matrix)` with `grad = 2 (pred − target) / n`.
pub fn mse_grad(predictions: &Matrix, targets: &[f32]) -> (f32, Matrix) {
    debug_assert_eq!(predictions.rows(), targets.len());
    debug_assert_eq!(predictions.cols(), 1);
    let n = targets.len().max(1) as f32;
    let mut grad = Matrix::zeros(predictions.rows(), 1);
    let mut loss = 0.0f32;
    #[allow(clippy::needless_range_loop)] // index drives both matrices
    for i in 0..predictions.rows() {
        let diff = predictions.get(i, 0) - targets[i];
        loss += diff * diff;
        grad.set(i, 0, 2.0 * diff / n);
    }
    (loss / n, grad)
}

/// Entropy of a (masked) probability distribution, in nats. Used for
/// exploration bonuses.
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_over_mask() {
        let logits = vec![1.0, 2.0, 3.0, 4.0];
        let mask = vec![true, false, true, true];
        let p = masked_softmax(&logits, &mask);
        assert_eq!(p[1], 0.0);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Higher logits → higher probability.
        assert!(p[3] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let logits = vec![1000.0, -1000.0];
        let mask = vec![true, true];
        let p = masked_softmax(&logits, &mask);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p[1] < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_all_masked_is_zero() {
        let p = masked_softmax(&[1.0, 2.0], &[false, false]);
        assert_eq!(p, vec![0.0, 0.0]);
        // NaN logits don't change the all-masked contract.
        let p = masked_softmax(&[f32::NAN, f32::NAN], &[false, false]);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    /// Regression (degenerate-softmax bugfix): a NaN logit used to
    /// poison the whole row into NaN/zero probabilities, surfacing much
    /// later as the sampler's "mask has a valid action" panic. Rows
    /// with ≥1 valid position and a degenerate sum now come back
    /// uniform over the valid set.
    #[test]
    fn softmax_nan_logit_row_is_uniform_over_valid() {
        let p = masked_softmax(&[f32::NAN, 1.0, 2.0, 0.0], &[true, true, true, false]);
        assert_eq!(p, vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0, 0.0]);
        // All valid logits NaN.
        let p = masked_softmax(&[f32::NAN, f32::NAN], &[true, true]);
        assert_eq!(p, vec![0.5, 0.5]);
        // NaN hiding on a *masked* position must not degrade the row.
        let p = masked_softmax(&[f32::NAN, 0.0, 0.0], &[false, true, true]);
        assert_eq!(p, vec![0.0, 0.5, 0.5]);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    /// Regression (degenerate-softmax bugfix): all valid logits at −∞
    /// (or a +∞ max, whose shifted exponentials are NaN) previously
    /// produced an all-zero / NaN row despite valid actions existing.
    #[test]
    fn softmax_non_finite_extremes_are_uniform_over_valid() {
        let ninf = f32::NEG_INFINITY;
        let p = masked_softmax(&[ninf, ninf, 1.0], &[true, true, false]);
        assert_eq!(p, vec![0.5, 0.5, 0.0]);
        let p = masked_softmax(&[f32::INFINITY, 0.0], &[true, true]);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn batch_helpers_match_per_row_bitwise() {
        let logits = Matrix::from_vec(
            3,
            4,
            vec![
                0.3,
                -1.2,
                2.7,
                0.05, // plain row
                1e3,
                -1e3,
                0.0,
                4.5, // extreme row
                f32::NAN,
                0.5,
                0.5,
                0.0, // degenerate row
            ],
        );
        let masks_owned = [
            vec![true, true, false, true],
            vec![true, true, true, true],
            vec![true, true, true, false],
        ];
        let masks: Vec<&[bool]> = masks_owned.iter().map(|m| m.as_slice()).collect();
        let actions = [0usize, 3, 1];
        let advantages = [0.7f32, -1.3, 2.0];

        let probs = masked_softmax_batch(&logits, &masks);
        let pg = policy_gradient_batch(&logits, &masks, &actions, &advantages);
        let (ce_loss, ce) = cross_entropy_grad_batch(&logits, &masks, &actions);
        let mut loss_sum = 0.0f32;
        for r in 0..3 {
            let row_probs = masked_softmax(logits.row(r), masks[r]);
            assert_eq!(probs.row(r), &row_probs[..], "softmax row {r}");
            let row_pg = policy_gradient(logits.row(r), masks[r], actions[r], advantages[r]);
            assert_eq!(pg.row(r), &row_pg[..], "policy grad row {r}");
            let (l, row_ce) = cross_entropy_grad(logits.row(r), masks[r], actions[r]);
            assert_eq!(ce.row(r), &row_ce[..], "cross-entropy grad row {r}");
            loss_sum += l;
        }
        assert_eq!(ce_loss, loss_sum, "summed loss must match row order");
    }

    #[test]
    fn policy_gradient_direction() {
        let logits = vec![0.0, 0.0, 0.0];
        let mask = vec![true, true, true];
        // Positive advantage: chosen action's gradient is negative
        // (gradient descent increases its logit).
        let g = policy_gradient(&logits, &mask, 1, 1.0);
        assert!(g[1] < 0.0);
        assert!(g[0] > 0.0 && g[2] > 0.0);
        // Negative advantage flips the direction.
        let g = policy_gradient(&logits, &mask, 1, -1.0);
        assert!(g[1] > 0.0);
    }

    #[test]
    fn cross_entropy_decreases_with_confidence() {
        let mask = vec![true, true];
        let (hi_loss, _) = cross_entropy_grad(&[0.0, 0.0], &mask, 0);
        let (lo_loss, _) = cross_entropy_grad(&[5.0, 0.0], &mask, 0);
        assert!(lo_loss < hi_loss);
        // Gradient pushes the target logit up.
        let (_, g) = cross_entropy_grad(&[0.0, 0.0], &mask, 0);
        assert!(g[0] < 0.0 && g[1] > 0.0);
    }

    #[test]
    fn mse_on_perfect_prediction_is_zero() {
        let preds = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let (loss, grad) = mse_grad(&preds, &[1.0, 2.0, 3.0]);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
        let (loss2, grad2) = mse_grad(&preds, &[0.0, 2.0, 3.0]);
        assert!(loss2 > 0.0);
        assert!(grad2.get(0, 0) > 0.0);
    }

    #[test]
    fn entropy_maximal_for_uniform() {
        let uniform = vec![0.25; 4];
        let peaked = vec![0.97, 0.01, 0.01, 0.01];
        assert!(entropy(&uniform) > entropy(&peaked));
        assert!((entropy(&uniform) - (4.0f32).ln()).abs() < 1e-6);
    }
}
