//! Losses and policy heads.

use crate::matrix::Matrix;

/// Numerically-stable softmax over one logits row, restricted to the
/// positions where `mask` is `true`. Masked positions get probability 0.
///
/// Action masking is how the agents keep the fixed-width `n_max²` action
/// layer valid for smaller queries: invalid pair actions are masked out
/// before sampling.
pub fn masked_softmax(logits: &[f32], mask: &[bool]) -> Vec<f32> {
    debug_assert_eq!(logits.len(), mask.len());
    let mut max = f32::NEG_INFINITY;
    for (l, &m) in logits.iter().zip(mask) {
        if m && *l > max {
            max = *l;
        }
    }
    if max == f32::NEG_INFINITY {
        // Nothing valid: return all zeros; callers treat this as a bug in
        // the mask (environments always expose at least one action).
        return vec![0.0; logits.len()];
    }
    let mut out = vec![0.0f32; logits.len()];
    let mut sum = 0.0f32;
    for i in 0..logits.len() {
        if mask[i] {
            let e = (logits[i] - max).exp();
            out[i] = e;
            sum += e;
        }
    }
    if sum > 0.0 {
        for x in &mut out {
            *x /= sum;
        }
    }
    out
}

/// Gradient of `-log π(action)` w.r.t. the logits row, scaled by
/// `advantage`: the REINFORCE policy-gradient contribution
/// `(π − onehot(action)) · advantage`, with masked positions zeroed.
pub fn policy_gradient(logits: &[f32], mask: &[bool], action: usize, advantage: f32) -> Vec<f32> {
    let probs = masked_softmax(logits, mask);
    let mut grad = probs;
    grad[action] -= 1.0;
    for (g, &m) in grad.iter_mut().zip(mask) {
        if m {
            *g *= advantage;
        } else {
            *g = 0.0;
        }
    }
    grad
}

/// Cross-entropy loss and logits gradient against a target action
/// (imitation learning): returns `(loss, grad)` where
/// `loss = −log π(target)`.
pub fn cross_entropy_grad(logits: &[f32], mask: &[bool], target: usize) -> (f32, Vec<f32>) {
    let probs = masked_softmax(logits, mask);
    let p = probs[target].max(1e-12);
    let loss = -p.ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    for (g, &m) in grad.iter_mut().zip(mask) {
        if !m {
            *g = 0.0;
        }
    }
    (loss, grad)
}

/// Mean-squared-error loss and gradient for a batch of scalar predictions:
/// returns `(loss, grad_matrix)` with `grad = 2 (pred − target) / n`.
pub fn mse_grad(predictions: &Matrix, targets: &[f32]) -> (f32, Matrix) {
    debug_assert_eq!(predictions.rows(), targets.len());
    debug_assert_eq!(predictions.cols(), 1);
    let n = targets.len().max(1) as f32;
    let mut grad = Matrix::zeros(predictions.rows(), 1);
    let mut loss = 0.0f32;
    #[allow(clippy::needless_range_loop)] // index drives both matrices
    for i in 0..predictions.rows() {
        let diff = predictions.get(i, 0) - targets[i];
        loss += diff * diff;
        grad.set(i, 0, 2.0 * diff / n);
    }
    (loss / n, grad)
}

/// Entropy of a (masked) probability distribution, in nats. Used for
/// exploration bonuses.
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_over_mask() {
        let logits = vec![1.0, 2.0, 3.0, 4.0];
        let mask = vec![true, false, true, true];
        let p = masked_softmax(&logits, &mask);
        assert_eq!(p[1], 0.0);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Higher logits → higher probability.
        assert!(p[3] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let logits = vec![1000.0, -1000.0];
        let mask = vec![true, true];
        let p = masked_softmax(&logits, &mask);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p[1] < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_all_masked_is_zero() {
        let p = masked_softmax(&[1.0, 2.0], &[false, false]);
        assert_eq!(p, vec![0.0, 0.0]);
    }

    #[test]
    fn policy_gradient_direction() {
        let logits = vec![0.0, 0.0, 0.0];
        let mask = vec![true, true, true];
        // Positive advantage: chosen action's gradient is negative
        // (gradient descent increases its logit).
        let g = policy_gradient(&logits, &mask, 1, 1.0);
        assert!(g[1] < 0.0);
        assert!(g[0] > 0.0 && g[2] > 0.0);
        // Negative advantage flips the direction.
        let g = policy_gradient(&logits, &mask, 1, -1.0);
        assert!(g[1] > 0.0);
    }

    #[test]
    fn cross_entropy_decreases_with_confidence() {
        let mask = vec![true, true];
        let (hi_loss, _) = cross_entropy_grad(&[0.0, 0.0], &mask, 0);
        let (lo_loss, _) = cross_entropy_grad(&[5.0, 0.0], &mask, 0);
        assert!(lo_loss < hi_loss);
        // Gradient pushes the target logit up.
        let (_, g) = cross_entropy_grad(&[0.0, 0.0], &mask, 0);
        assert!(g[0] < 0.0 && g[1] > 0.0);
    }

    #[test]
    fn mse_on_perfect_prediction_is_zero() {
        let preds = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let (loss, grad) = mse_grad(&preds, &[1.0, 2.0, 3.0]);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|&g| g == 0.0));
        let (loss2, grad2) = mse_grad(&preds, &[0.0, 2.0, 3.0]);
        assert!(loss2 > 0.0);
        assert!(grad2.get(0, 0) > 0.0);
    }

    #[test]
    fn entropy_maximal_for_uniform() {
        let uniform = vec![0.25; 4];
        let peaked = vec![0.97, 0.01, 0.01, 0.01];
        assert!(entropy(&uniform) > entropy(&peaked));
        assert!((entropy(&uniform) - (4.0f32).ln()).abs() < 1e-6);
    }
}
