//! Dense layers and activations.

use crate::init;
use crate::matrix::Matrix;
use rand::rngs::StdRng;

/// Elementwise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `max(0, x)`.
    ReLU,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no activation).
    Linear,
}

impl Activation {
    /// Applies the activation in place.
    pub fn forward(&self, m: &mut Matrix) {
        match self {
            Activation::ReLU => {
                for x in m.data_mut() {
                    if *x < 0.0 {
                        *x = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for x in m.data_mut() {
                    *x = x.tanh();
                }
            }
            Activation::Linear => {}
        }
    }

    /// Multiplies `grad` by the activation derivative, evaluated from the
    /// activation *output* (both ReLU and tanh derivatives are functions
    /// of the output, which avoids caching pre-activations).
    pub fn backward(&self, output: &Matrix, grad: &mut Matrix) {
        debug_assert_eq!(output.rows(), grad.rows());
        debug_assert_eq!(output.cols(), grad.cols());
        match self {
            Activation::ReLU => {
                for (g, y) in grad.data_mut().iter_mut().zip(output.data()) {
                    if *y <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Tanh => {
                for (g, y) in grad.data_mut().iter_mut().zip(output.data()) {
                    *g *= 1.0 - y * y;
                }
            }
            Activation::Linear => {}
        }
    }
}

/// A fully-connected layer: `y = x @ W + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Weights, `[input × output]`.
    pub w: Matrix,
    /// Bias, one per output.
    pub b: Vec<f32>,
}

impl Dense {
    /// He-initialised layer (suits the ReLU hidden stacks the agents use).
    pub fn new(input: usize, output: usize, rng: &mut StdRng) -> Self {
        Self {
            w: init::he(input, output, rng),
            b: vec![0.0; output],
        }
    }

    /// Xavier-initialised layer (suits tanh/linear heads).
    pub fn xavier(input: usize, output: usize, rng: &mut StdRng) -> Self {
        Self {
            w: init::xavier(input, output, rng),
            b: vec![0.0; output],
        }
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn output_size(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass: `x @ W + b`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.w);
        out.add_row_bias(&self.b);
        out
    }

    /// Backward pass. Given the layer input `x` and the loss gradient
    /// w.r.t. the layer output, returns `(grad_input, grad_w, grad_b)`.
    pub fn backward(&self, x: &Matrix, grad_out: &Matrix) -> (Matrix, Matrix, Vec<f32>) {
        let grad_w = x.matmul_tn(grad_out);
        let grad_b = grad_out.col_sums();
        let grad_in = grad_out.matmul_nt(&self.w);
        (grad_in, grad_w, grad_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn relu_forward_backward() {
        let mut m = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        Activation::ReLU.forward(&mut m);
        assert_eq!(m.data(), &[0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix::from_vec(1, 4, vec![1.0; 4]);
        Activation::ReLU.backward(&m, &mut g);
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_forward_backward() {
        let mut m = Matrix::from_vec(1, 2, vec![0.0, 100.0]);
        Activation::Tanh.forward(&mut m);
        assert!((m.get(0, 0)).abs() < 1e-6);
        assert!((m.get(0, 1) - 1.0).abs() < 1e-6);
        let mut g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        Activation::Tanh.backward(&m, &mut g);
        assert!((g.get(0, 0) - 1.0).abs() < 1e-6); // derivative 1 at 0
        assert!(g.get(0, 1).abs() < 1e-5); // saturated
    }

    #[test]
    fn dense_forward_shape_and_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 3, &mut rng);
        layer.w = Matrix::from_vec(2, 3, vec![1., 0., 0., 0., 1., 0.]);
        layer.b = vec![0.5, 0.5, 0.5];
        let x = Matrix::from_vec(1, 2, vec![2.0, 3.0]);
        let y = layer.forward(&x);
        assert_eq!(y.data(), &[2.5, 3.5, 0.5]);
        assert_eq!(layer.input_size(), 2);
        assert_eq!(layer.output_size(), 3);
    }

    /// Finite-difference gradient check on a single dense layer with a
    /// scalar sum loss.
    #[test]
    fn dense_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
        // Loss = sum of outputs → grad_out = all ones.
        let grad_out = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let (_, grad_w, grad_b) = layer.backward(&x, &grad_out);
        let eps = 1e-3f32;
        let base: f32 = layer.forward(&x).data().iter().sum();
        for idx in 0..6 {
            let orig = layer.w.data()[idx];
            layer.w.data_mut()[idx] = orig + eps;
            let bumped: f32 = layer.forward(&x).data().iter().sum();
            layer.w.data_mut()[idx] = orig;
            let fd = (bumped - base) / eps;
            let an = grad_w.data()[idx];
            assert!((fd - an).abs() < 1e-2, "w[{idx}]: fd {fd} vs an {an}");
        }
        #[allow(clippy::needless_range_loop)] // index reads and writes b[i]
        for i in 0..2 {
            let orig = layer.b[i];
            layer.b[i] = orig + eps;
            let bumped: f32 = layer.forward(&x).data().iter().sum();
            layer.b[i] = orig;
            let fd = (bumped - base) / eps;
            assert!((fd - grad_b[i]).abs() < 1e-2, "b[{i}]");
        }
    }
}
