//! Weight initialisation.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Samples a standard normal via Box-Muller.
pub fn normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Xavier/Glorot-normal initialisation for a `[fan_in × fan_out]` weight
/// matrix: `N(0, 2 / (fan_in + fan_out))`.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| normal(rng) * std).collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

/// He-normal initialisation (`N(0, 2 / fan_in)`), preferred before ReLU.
pub fn he(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    let data = (0..fan_in * fan_out).map(|_| normal(rng) * std).collect();
    Matrix::from_vec(fan_in, fan_out, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let samples: Vec<f32> = (0..10_000).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_scale_shrinks_with_width() {
        let mut rng = StdRng::seed_from_u64(1);
        let wide = xavier(1000, 1000, &mut rng);
        let narrow = xavier(4, 4, &mut rng);
        let spread =
            |m: &Matrix| m.data().iter().map(|x| x * x).sum::<f32>() / m.data().len() as f32;
        assert!(spread(&wide) < spread(&narrow));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = xavier(8, 8, &mut StdRng::seed_from_u64(9));
        let b = xavier(8, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = he(8, 8, &mut StdRng::seed_from_u64(9));
        let d = he(8, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(c, d);
    }
}
