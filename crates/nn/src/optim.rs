//! Gradient-descent optimizers.

use crate::mlp::{Mlp, MlpGradients};

/// An optimizer that applies [`MlpGradients`] to an [`Mlp`].
pub trait Optimizer {
    /// Applies one update step (gradient *descent*: parameters move
    /// against the gradient).
    fn step(&mut self, mlp: &mut Mlp, grads: &MlpGradients);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, mlp: &mut Mlp, grads: &MlpGradients) {
        for (layer, (gw, gb)) in mlp.layers_mut().iter_mut().zip(&grads.layers) {
            for (w, g) in layer.w.data_mut().iter_mut().zip(gw.data()) {
                *w -= self.lr * g;
            }
            for (b, g) in layer.b.iter_mut().zip(gb) {
                *b -= self.lr * g;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// First/second moment estimates per layer: `(m_w, v_w, m_b, v_b)`.
    #[allow(clippy::type_complexity)]
    state: Vec<(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    fn ensure_state(&mut self, mlp: &Mlp) {
        if self.state.len() != mlp.layers().len() {
            self.state = mlp
                .layers()
                .iter()
                .map(|l| {
                    (
                        vec![0.0; l.w.data().len()],
                        vec![0.0; l.w.data().len()],
                        vec![0.0; l.b.len()],
                        vec![0.0; l.b.len()],
                    )
                })
                .collect();
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, mlp: &mut Mlp, grads: &MlpGradients) {
        self.ensure_state(mlp);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (li, layer) in mlp.layers_mut().iter_mut().enumerate() {
            let (gw, gb) = &grads.layers[li];
            let (mw, vw, mb, vb) = &mut self.state[li];
            for (i, w) in layer.w.data_mut().iter_mut().enumerate() {
                let g = gw.data()[i];
                mw[i] = self.beta1 * mw[i] + (1.0 - self.beta1) * g;
                vw[i] = self.beta2 * vw[i] + (1.0 - self.beta2) * g * g;
                let m_hat = mw[i] / bc1;
                let v_hat = vw[i] / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            for (i, b) in layer.b.iter_mut().enumerate() {
                let g = gb[i];
                mb[i] = self.beta1 * mb[i] + (1.0 - self.beta1) * g;
                vb[i] = self.beta2 * vb[i] + (1.0 - self.beta2) * g * g;
                let m_hat = mb[i] / bc1;
                let v_hat = vb[i] / bc2;
                *b -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::loss::mse_grad;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains y = 2x − 1 on a tiny MLP; both optimizers must fit it.
    fn train_linear<O: Optimizer>(mut opt: O, epochs: usize) -> f32 {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Tanh, &mut rng);
        let xs: Vec<f32> = (0..20).map(|i| (i as f32) / 10.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        let x = Matrix::from_vec(xs.len(), 1, xs.clone());
        let mut final_loss = f32::MAX;
        for _ in 0..epochs {
            let cache = mlp.forward(&x);
            let (loss, grad) = mse_grad(cache.output(), &ys);
            final_loss = loss;
            let grads = mlp.backward(&cache, grad);
            opt.step(&mut mlp, &grads);
        }
        final_loss
    }

    #[test]
    fn sgd_fits_linear_function() {
        let loss = train_linear(Sgd::new(0.05), 2000);
        assert!(loss < 0.01, "sgd final loss {loss}");
    }

    #[test]
    fn adam_fits_linear_function_faster() {
        let loss = train_linear(Adam::new(0.01), 500);
        assert!(loss < 0.01, "adam final loss {loss}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.1);
        s.set_learning_rate(0.2);
        assert_eq!(s.learning_rate(), 0.2);
        let mut a = Adam::new(0.001);
        a.set_learning_rate(0.01);
        assert_eq!(a.learning_rate(), 0.01);
    }

    #[test]
    fn adam_state_matches_network_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[2, 3, 1], Activation::ReLU, &mut rng);
        let mut adam = Adam::new(0.01);
        let grads = crate::mlp::MlpGradients::zeros_like(&mlp);
        adam.step(&mut mlp, &grads);
        assert_eq!(adam.state.len(), 2);
        assert_eq!(adam.state[0].0.len(), 6);
        assert_eq!(adam.state[1].2.len(), 1);
    }
}
