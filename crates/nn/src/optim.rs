//! Gradient-descent optimizers.

use crate::mlp::{Mlp, MlpGradients};

/// Panics unless `grads` is shaped exactly like `mlp`'s parameters.
///
/// Both optimizers used to `zip` layers against gradients, which
/// silently *truncates* on a layer-count mismatch and soaks up
/// wrong-network bugs (e.g. stepping a policy with a value-head
/// gradient): the extra layers simply never trained. A mismatch is a
/// programming error, so it fails loudly at the step site.
fn assert_grad_shapes(mlp: &Mlp, grads: &MlpGradients) {
    assert_eq!(
        mlp.layers().len(),
        grads.layers.len(),
        "optimizer gradient shape mismatch: network has {} layers, gradients have {}",
        mlp.layers().len(),
        grads.layers.len()
    );
    for (i, (layer, (gw, gb))) in mlp.layers().iter().zip(&grads.layers).enumerate() {
        assert!(
            layer.w.rows() == gw.rows() && layer.w.cols() == gw.cols() && layer.b.len() == gb.len(),
            "optimizer gradient shape mismatch at layer {i}: weights {}x{} vs gradient {}x{}, \
             bias {} vs gradient {}",
            layer.w.rows(),
            layer.w.cols(),
            gw.rows(),
            gw.cols(),
            layer.b.len(),
            gb.len()
        );
    }
}

/// An optimizer that applies [`MlpGradients`] to an [`Mlp`].
pub trait Optimizer {
    /// Applies one update step (gradient *descent*: parameters move
    /// against the gradient).
    fn step(&mut self, mlp: &mut Mlp, grads: &MlpGradients);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, mlp: &mut Mlp, grads: &MlpGradients) {
        assert_grad_shapes(mlp, grads);
        for (layer, (gw, gb)) in mlp.layers_mut().iter_mut().zip(&grads.layers) {
            for (w, g) in layer.w.data_mut().iter_mut().zip(gw.data()) {
                *w -= self.lr * g;
            }
            for (b, g) in layer.b.iter_mut().zip(gb) {
                *b -= self.lr * g;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    /// First/second moment estimates per layer: `(m_w, v_w, m_b, v_b)`.
    #[allow(clippy::type_complexity)]
    state: Vec<(Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: Vec::new(),
        }
    }

    fn ensure_state(&mut self, mlp: &Mlp) {
        if self.state.len() != mlp.layers().len() {
            self.state = mlp
                .layers()
                .iter()
                .map(|l| {
                    (
                        vec![0.0; l.w.data().len()],
                        vec![0.0; l.w.data().len()],
                        vec![0.0; l.b.len()],
                        vec![0.0; l.b.len()],
                    )
                })
                .collect();
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, mlp: &mut Mlp, grads: &MlpGradients) {
        assert_grad_shapes(mlp, grads);
        self.ensure_state(mlp);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (li, layer) in mlp.layers_mut().iter_mut().enumerate() {
            let (gw, gb) = &grads.layers[li];
            let (mw, vw, mb, vb) = &mut self.state[li];
            for (i, w) in layer.w.data_mut().iter_mut().enumerate() {
                let g = gw.data()[i];
                mw[i] = self.beta1 * mw[i] + (1.0 - self.beta1) * g;
                vw[i] = self.beta2 * vw[i] + (1.0 - self.beta2) * g * g;
                let m_hat = mw[i] / bc1;
                let v_hat = vw[i] / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            for (i, b) in layer.b.iter_mut().enumerate() {
                let g = gb[i];
                mb[i] = self.beta1 * mb[i] + (1.0 - self.beta1) * g;
                vb[i] = self.beta2 * vb[i] + (1.0 - self.beta2) * g * g;
                let m_hat = mb[i] / bc1;
                let v_hat = vb[i] / bc2;
                *b -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Activation;
    use crate::loss::mse_grad;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains y = 2x − 1 on a tiny MLP; both optimizers must fit it.
    fn train_linear<O: Optimizer>(mut opt: O, epochs: usize) -> f32 {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[1, 8, 1], Activation::Tanh, &mut rng);
        let xs: Vec<f32> = (0..20).map(|i| (i as f32) / 10.0 - 1.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        let x = Matrix::from_vec(xs.len(), 1, xs.clone());
        let mut final_loss = f32::MAX;
        for _ in 0..epochs {
            let cache = mlp.forward(&x);
            let (loss, grad) = mse_grad(cache.output(), &ys);
            final_loss = loss;
            let grads = mlp.backward(&cache, grad);
            opt.step(&mut mlp, &grads);
        }
        final_loss
    }

    #[test]
    fn sgd_fits_linear_function() {
        let loss = train_linear(Sgd::new(0.05), 2000);
        assert!(loss < 0.01, "sgd final loss {loss}");
    }

    #[test]
    fn adam_fits_linear_function_faster() {
        let loss = train_linear(Adam::new(0.01), 500);
        assert!(loss < 0.01, "adam final loss {loss}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.1);
        s.set_learning_rate(0.2);
        assert_eq!(s.learning_rate(), 0.2);
        let mut a = Adam::new(0.001);
        a.set_learning_rate(0.01);
        assert_eq!(a.learning_rate(), 0.01);
    }

    /// Regression (silent-truncation bugfix): stepping with gradients
    /// from a differently-shaped network used to zip-truncate and
    /// silently skip the unmatched layers; it must panic.
    #[test]
    #[should_panic(expected = "optimizer gradient shape mismatch")]
    fn sgd_rejects_layer_count_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&[2, 4, 3, 1], Activation::ReLU, &mut rng);
        let other = Mlp::new(&[2, 4, 1], Activation::ReLU, &mut rng);
        let grads = crate::mlp::MlpGradients::zeros_like(&other);
        Sgd::new(0.1).step(&mut mlp, &grads);
    }

    /// Regression (silent-truncation bugfix): same layer count but
    /// mismatched per-layer shapes must also panic, for both optimizers.
    #[test]
    #[should_panic(expected = "optimizer gradient shape mismatch at layer 1")]
    fn adam_rejects_per_layer_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mlp = Mlp::new(&[2, 4, 3], Activation::ReLU, &mut rng);
        let other = Mlp::new(&[2, 4, 5], Activation::ReLU, &mut rng);
        let grads = crate::mlp::MlpGradients::zeros_like(&other);
        Adam::new(0.01).step(&mut mlp, &grads);
    }

    #[test]
    fn adam_state_matches_network_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = Mlp::new(&[2, 3, 1], Activation::ReLU, &mut rng);
        let mut adam = Adam::new(0.01);
        let grads = crate::mlp::MlpGradients::zeros_like(&mlp);
        adam.step(&mut mlp, &grads);
        assert_eq!(adam.state.len(), 2);
        assert_eq!(adam.state[0].0.len(), 6);
        assert_eq!(adam.state[1].2.len(), 1);
    }
}
