//! Row-major `f32` matrices.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix from row-major data.
    ///
    /// Panics if `data.len() != rows * cols` (constructor misuse is a
    /// programming error, not a runtime condition).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` (`[m×k] @ [k×n] → [m×n]`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // ikj loop order: the inner loop walks both `other` and `out`
        // contiguously, which is the cache-friendly ordering for row-major
        // data.
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[p * n..(p + 1) * n];
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a * other_row[j];
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` (`[k×m]ᵀ @ [k×n] → [m×n]`) without materialising
    /// the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let self_row = &self.data[p * m..(p + 1) * m];
            let other_row = &other.data[p * n..(p + 1) * n];
            #[allow(clippy::needless_range_loop)] // i also offsets other_row
            for i in 0..m {
                let a = self_row[i];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    out_row[j] += a * other_row[j];
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` (`[m×k] @ [n×k]ᵀ → [m×n]`) without materialising
    /// the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let self_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let other_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for p in 0..k {
                    acc += self_row[p] * other_row[p];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Adds a bias row vector to every row in place.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        // aᵀ @ b via matmul_tn.
        let tn = a.matmul_tn(&b);
        // Explicit transpose for reference.
        let at = Matrix::from_vec(2, 3, vec![1., 3., 5., 2., 4., 6.]);
        assert_eq!(tn, at.matmul(&b));

        let c = Matrix::from_vec(4, 2, (0..8).map(|i| i as f32).collect());
        // a @ cᵀ via matmul_nt (a is 3×2, cᵀ is 2×4).
        let nt = a.matmul_nt(&c);
        let ct = Matrix::from_vec(2, 4, vec![0., 2., 4., 6., 1., 3., 5., 7.]);
        assert_eq!(nt, a.matmul(&ct));
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        m.add_row_bias(&[10., 20.]);
        assert_eq!(m.data(), &[11., 22., 13., 24.]);
        assert_eq!(m.col_sums(), vec![24., 46.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        let rv = Matrix::row_vector(vec![1., 2.]);
        assert_eq!(rv.rows(), 1);
        assert_eq!(rv.cols(), 2);
    }
}
