//! Row-major `f32` matrices.
//!
//! The two matmul kernels that carry the training hot path (`matmul`
//! for forward passes, `matmul_tn` for weight gradients) are
//! cache-blocked: the batched update path multiplies B×F activation
//! matrices against F×H weight matrices, and tiling keeps the streamed
//! operand resident in cache across a tile of output rows. Both
//! kernels accumulate every output element strictly in ascending-`p`
//! (depth/row) order — the same order the per-row path produces when it
//! sums one rank-1 gradient per transition — so a batched gradient is
//! **bit-identical** to the sum of the per-row gradients it replaces.
//! The RL parity tests and the PR 2 golden training log rest on that
//! ordering guarantee; do not reorder the reductions.

/// Output-row tile: how many rows of the result are accumulated
/// together, so a tile of `out` stays hot while the depth dimension
/// streams through.
const BLOCK_ROWS: usize = 16;

/// Depth tile: how many `p` (inner-dimension) steps are applied per
/// tile. At ReJOIN scale (F = 612, H = 128) one depth tile of the
/// weight matrix is 64 × 128 × 4 B = 32 KiB — L1/L2-resident while it
/// is reused across a whole row tile.
const BLOCK_DEPTH: usize = 64;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix from row-major data.
    ///
    /// Panics if `data.len() != rows * cols` (constructor misuse is a
    /// programming error, not a runtime condition).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` (`[m×k] @ [k×n] → [m×n]`).
    ///
    /// Cache-blocked ikj kernel: the inner loop walks both `other` and
    /// `out` contiguously, and tiles of `BLOCK_ROWS` output rows ×
    /// `BLOCK_DEPTH` depth steps keep the reused `other` slab resident.
    /// Each `out[i, j]` accumulates in strictly ascending `p` order
    /// (tiles ascend, `p` ascends within a tile), so the result is
    /// bit-identical to the unblocked kernel — and a batched forward row
    /// is bit-identical to the same row pushed through alone.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i0 in (0..m).step_by(BLOCK_ROWS) {
            let i1 = (i0 + BLOCK_ROWS).min(m);
            for p0 in (0..k).step_by(BLOCK_DEPTH) {
                let p1 = (p0 + BLOCK_DEPTH).min(k);
                for i in i0..i1 {
                    let self_row = &self.data[i * k..(i + 1) * k];
                    let out_row = &mut out.data[i * n..(i + 1) * n];
                    #[allow(clippy::needless_range_loop)] // p offsets other too
                    for p in p0..p1 {
                        let a = self_row[p];
                        if a == 0.0 {
                            continue;
                        }
                        let other_row = &other.data[p * n..(p + 1) * n];
                        for j in 0..n {
                            out_row[j] += a * other_row[j];
                        }
                    }
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` (`[k×m]ᵀ @ [k×n] → [m×n]`) without materialising
    /// the transpose.
    ///
    /// This is the weight-gradient kernel (`Xᵀ @ grad`): `k` is the
    /// batch dimension, and every `out[i, j]` accumulates its `k`
    /// rank-1 contributions in ascending row order — exactly the order
    /// `MlpGradients::add` applies per-transition gradients — which is
    /// what makes batched and per-row updates bit-identical. Blocking
    /// tiles `BLOCK_ROWS` output rows so the accumulator slab stays hot
    /// while the batch streams through.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for i0 in (0..m).step_by(BLOCK_ROWS) {
            let i1 = (i0 + BLOCK_ROWS).min(m);
            for p0 in (0..k).step_by(BLOCK_DEPTH) {
                let p1 = (p0 + BLOCK_DEPTH).min(k);
                for p in p0..p1 {
                    let self_row = &self.data[p * m..(p + 1) * m];
                    let other_row = &other.data[p * n..(p + 1) * n];
                    #[allow(clippy::needless_range_loop)] // i also offsets out
                    for i in i0..i1 {
                        let a = self_row[i];
                        if a == 0.0 {
                            continue;
                        }
                        let out_row = &mut out.data[i * n..(i + 1) * n];
                        for j in 0..n {
                            out_row[j] += a * other_row[j];
                        }
                    }
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` (`[m×k] @ [n×k]ᵀ → [m×n]`) without materialising
    /// the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let self_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let other_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for p in 0..k {
                    acc += self_row[p] * other_row[p];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Adds a bias row vector to every row in place.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        // aᵀ @ b via matmul_tn.
        let tn = a.matmul_tn(&b);
        // Explicit transpose for reference.
        let at = Matrix::from_vec(2, 3, vec![1., 3., 5., 2., 4., 6.]);
        assert_eq!(tn, at.matmul(&b));

        let c = Matrix::from_vec(4, 2, (0..8).map(|i| i as f32).collect());
        // a @ cᵀ via matmul_nt (a is 3×2, cᵀ is 2×4).
        let nt = a.matmul_nt(&c);
        let ct = Matrix::from_vec(2, 4, vec![0., 2., 4., 6., 1., 3., 5., 7.]);
        assert_eq!(nt, a.matmul(&ct));
    }

    #[test]
    fn bias_and_col_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        m.add_row_bias(&[10., 20.]);
        assert_eq!(m.data(), &[11., 22., 13., 24.]);
        assert_eq!(m.col_sums(), vec![24., 46.]);
    }

    /// Unblocked ikj reference: the pre-blocking `matmul` kernel,
    /// accumulating each output element in ascending `p` order.
    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows);
        let (m, k, n) = (a.rows, a.cols, b.cols);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            for p in 0..k {
                let x = a.data[i * k + p];
                if x == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += x * b.data[p * n + j];
                }
            }
        }
        out
    }

    /// Unblocked reference for `aᵀ @ b`, ascending-`p` accumulation.
    fn reference_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows, b.rows);
        let (k, m, n) = (a.rows, a.cols, b.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            for i in 0..m {
                let x = a.data[p * m + i];
                if x == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += x * b.data[p * n + j];
                }
            }
        }
        out
    }

    /// Deterministic pseudo-random fill with irrational-ish values (so
    /// float addition is genuinely non-associative) and some exact
    /// zeros (so the skip-zero path is exercised).
    fn fill(rows: usize, cols: usize, seed: u32) -> Matrix {
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                if state.is_multiple_of(7) {
                    0.0
                } else {
                    ((state >> 8) as f32 / (1 << 24) as f32 - 0.5) * 3.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// The blocked kernels must be *bit-identical* to the unblocked
    /// references on shapes that straddle every tile boundary: the
    /// batched-vs-per-row training parity contract (and the PR 2 golden
    /// log) depends on the accumulation order being unchanged.
    #[test]
    fn blocked_kernels_are_bit_exact_across_tile_boundaries() {
        // (m, k, n) spanning below, at, and beyond BLOCK_ROWS (16) and
        // BLOCK_DEPTH (64), including non-multiples.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 612, 128),
            (3, 63, 5),
            (16, 64, 16),
            (17, 65, 9),
            (33, 130, 21),
            (40, 7, 70),
        ] {
            let a = fill(m, k, (m * 1000 + k) as u32);
            let b = fill(k, n, (k * 1000 + n) as u32);
            assert_eq!(
                a.matmul(&b).data(),
                reference_matmul(&a, &b).data(),
                "matmul {m}x{k}x{n} drifted from the unblocked kernel"
            );
            let at = fill(k, m, (m * 31 + n) as u32);
            assert_eq!(
                at.matmul_tn(&b).data(),
                reference_matmul_tn(&at, &b).data(),
                "matmul_tn {m}x{k}x{n} drifted from the unblocked kernel"
            );
        }
    }

    /// A batched forward row equals the same row pushed through alone —
    /// the kernel-level statement of the mini-batch parity contract.
    #[test]
    fn batched_rows_match_single_row_matmul_bitwise() {
        let x = fill(33, 70, 5);
        let w = fill(70, 19, 6);
        let batched = x.matmul(&w);
        for r in 0..x.rows() {
            let row = Matrix::row_vector(x.row(r).to_vec());
            let single = row.matmul(&w);
            assert_eq!(batched.row(r), single.row(0), "row {r} drifted");
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        let rv = Matrix::row_vector(vec![1., 2.]);
        assert_eq!(rv.rows(), 1);
        assert_eq!(rv.cols(), 2);
    }
}
