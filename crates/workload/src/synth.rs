//! Parameterised synthetic databases and queries.
//!
//! Used where the experiments need precise control over query size and
//! shape: the planning-time sweep of Figure 3c (4–17 relations), the
//! §5.3.2 relations curriculum (which needs 1-, 2-, 3-relation queries —
//! rare in real workloads, as the paper notes), and property tests.

use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, IndexKind, TableId};
use hfqo_query::{BoundColumn, JoinEdge, Lit, QueryGraph, RelId, Relation, Selection};
use hfqo_sql::CompareOp;
use hfqo_stats::{build_database_stats, StatsCatalog};
use hfqo_storage::{ColumnGen, Database, Distribution, TableGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Join-graph shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// `t0 – t1 – … – t_{n-1}`.
    Chain,
    /// `t0` joined with every other relation.
    Star,
    /// A chain closed into a cycle.
    Cycle,
}

/// Configuration for the synthetic database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Number of tables generated (max query size).
    pub tables: usize,
    /// Rows per table.
    pub rows: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            tables: 17,
            rows: 2_000,
            seed: 0x5F,
        }
    }
}

/// A synthetic database: `tables` identical-schema tables
/// `s{i}(id, fk, val)`, where `fk` is zipf-distributed over the id range
/// (so any pair of tables can be equi-joined on `id = fk`).
pub struct SynthDb {
    /// The database.
    pub db: Database,
    /// Its statistics.
    pub stats: StatsCatalog,
    config: SynthConfig,
}

impl SynthDb {
    /// Generates the database.
    pub fn build(config: SynthConfig) -> Self {
        assert!(config.tables >= 1);
        let mut cat = Catalog::new();
        for i in 0..config.tables {
            let schema = hfqo_catalog::TableSchema::new(
                format!("s{i}"),
                vec![
                    Column::new("id", ColumnType::Int),
                    Column::new("fk", ColumnType::Int),
                    Column::new("val", ColumnType::Int),
                ],
            )
            .with_primary_key(ColumnId(0));
            let t = cat.add_table(schema).expect("unique names");
            cat.add_index(format!("s{i}_pk"), t, ColumnId(0), IndexKind::BTree, true)
                .expect("unique index names");
        }
        let mut db = Database::new(cat);
        let mut rng = StdRng::seed_from_u64(config.seed);
        for i in 0..config.tables {
            let tid = TableId(i as u32);
            let schema = db.catalog().table(tid).expect("exists").clone();
            let table = TableGen {
                columns: vec![
                    ColumnGen::new(Distribution::Sequential),
                    ColumnGen::new(Distribution::FkZipf {
                        target_rows: config.rows as u64,
                        s: 0.6 + 0.05 * (i % 5) as f64,
                    }),
                    ColumnGen::new(Distribution::Zipf { n: 200, s: 1.0 }),
                ],
                rows: config.rows,
            }
            .generate(&schema, &mut rng)
            .expect("matches schema");
            db.load_table(tid, table).expect("schema matches");
        }
        db.build_indexes().expect("valid indexes");
        let stats = build_database_stats(&db);
        Self { db, stats, config }
    }

    /// The configuration used.
    pub fn config(&self) -> SynthConfig {
        self.config
    }

    /// Builds an `n`-relation query of the given shape, with one range
    /// selection per `sel_every` relations. `seed` varies constants.
    pub fn query(&self, shape: Shape, n: usize, sel_every: usize, seed: u64) -> QueryGraph {
        assert!(n >= 1 && n <= self.config.tables);
        let mut rng = StdRng::seed_from_u64(seed);
        let relations: Vec<Relation> = (0..n)
            .map(|i| Relation {
                table: TableId(i as u32),
                alias: format!("s{i}"),
            })
            .collect();
        let mut joins = Vec::new();
        let edge = |a: usize, b: usize| JoinEdge {
            // a.id = b.fk, normalised to lower rel on the left.
            left: BoundColumn::new(RelId(a.min(b) as u32), ColumnId(if a < b { 0 } else { 1 })),
            op: CompareOp::Eq,
            right: BoundColumn::new(RelId(a.max(b) as u32), ColumnId(if a < b { 1 } else { 0 })),
        };
        match shape {
            Shape::Chain => {
                for i in 1..n {
                    joins.push(edge(i - 1, i));
                }
            }
            Shape::Star => {
                for i in 1..n {
                    joins.push(edge(0, i));
                }
            }
            Shape::Cycle => {
                for i in 1..n {
                    joins.push(edge(i - 1, i));
                }
                if n > 2 {
                    joins.push(edge(n - 1, 0));
                }
            }
        }
        let mut selections = Vec::new();
        if sel_every > 0 {
            for i in (0..n).step_by(sel_every) {
                selections.push(Selection {
                    column: BoundColumn::new(RelId(i as u32), ColumnId(2)),
                    op: CompareOp::Lt,
                    value: Lit::Int(rng.gen_range(20..150)),
                });
            }
        }
        QueryGraph::new(relations, joins, selections, vec![], vec![])
            .with_label(format!("{shape:?}{n}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> SynthDb {
        SynthDb::build(SynthConfig {
            tables: 8,
            rows: 300,
            seed: 1,
        })
    }

    #[test]
    fn database_builds() {
        let s = db();
        assert_eq!(s.db.catalog().table_count(), 8);
        assert_eq!(s.stats.table(TableId(3)).row_count, 300.0);
    }

    #[test]
    fn shapes_have_expected_edges() {
        let s = db();
        let chain = s.query(Shape::Chain, 5, 2, 0);
        assert_eq!(chain.joins().len(), 4);
        assert!(chain.is_connected(chain.all_rels()));
        let star = s.query(Shape::Star, 5, 0, 0);
        assert_eq!(star.joins().len(), 4);
        assert_eq!(star.neighbors(RelId(0)).len(), 4);
        let cycle = s.query(Shape::Cycle, 5, 1, 0);
        assert_eq!(cycle.joins().len(), 5);
    }

    #[test]
    fn selections_spacing() {
        let s = db();
        let q = s.query(Shape::Chain, 6, 2, 0);
        assert_eq!(q.selections().len(), 3); // relations 0, 2, 4
        let q0 = s.query(Shape::Chain, 6, 0, 0);
        assert!(q0.selections().is_empty());
    }

    #[test]
    fn single_relation_query_allowed() {
        let s = db();
        let q = s.query(Shape::Chain, 1, 1, 0);
        assert_eq!(q.relation_count(), 1);
        assert!(q.joins().is_empty());
    }

    #[test]
    fn label_and_determinism() {
        let s = db();
        let a = s.query(Shape::Star, 4, 1, 9);
        let b = s.query(Shape::Star, 4, 1, 9);
        assert_eq!(a, b);
        assert_eq!(a.label.as_deref(), Some("Star4"));
        let c = s.query(Shape::Star, 4, 1, 10);
        assert_ne!(a, c);
    }
}
