//! Ready-to-train workload bundles.

use crate::imdb::{build_imdb, ImdbConfig};
use crate::job::generate_job_suite;
use crate::synth::{Shape, SynthConfig, SynthDb};
use crate::tpch::{bind_templates, build_tpch, TpchConfig};
use hfqo_query::QueryGraph;
use hfqo_stats::StatsCatalog;
use hfqo_storage::Database;

/// A database, its statistics, and a query workload — everything the RL
/// environments need.
pub struct WorkloadBundle {
    /// The database.
    pub db: Database,
    /// Table statistics.
    pub stats: StatsCatalog,
    /// The workload queries.
    pub queries: Vec<QueryGraph>,
}

impl WorkloadBundle {
    /// Largest relation count in the workload.
    pub fn max_rels(&self) -> usize {
        self.queries
            .iter()
            .map(QueryGraph::relation_count)
            .max()
            .unwrap_or(0)
    }

    /// The IMDB-like database with the 113-query JOB-like suite — the
    /// workload of Figures 3a and 3b.
    pub fn imdb_job(config: ImdbConfig, suite_seed: u64) -> Self {
        let (db, stats) = build_imdb(config);
        let queries = generate_job_suite(db.catalog(), suite_seed)
            .into_iter()
            .map(|q| q.graph)
            .collect();
        Self { db, stats, queries }
    }

    /// The TPC-H-like database with its templates.
    pub fn tpch(config: TpchConfig) -> Self {
        let (db, stats) = build_tpch(config);
        let queries = bind_templates(db.catalog());
        Self { db, stats, queries }
    }

    /// A synthetic bundle: for each size in `sizes`, `per_size` queries
    /// alternating chain/star/cycle shapes — the workload of Figure 3c
    /// and the incremental-learning experiments.
    pub fn synthetic(config: SynthConfig, sizes: &[usize], per_size: usize) -> Self {
        let synth = SynthDb::build(config);
        let mut queries = Vec::with_capacity(sizes.len() * per_size);
        for &n in sizes {
            for v in 0..per_size {
                let shape = match v % 3 {
                    0 => Shape::Chain,
                    1 if n >= 3 => Shape::Star,
                    _ if n >= 3 => Shape::Cycle,
                    _ => Shape::Chain,
                };
                let q = synth
                    .query(shape, n, 2, (n as u64) << 8 | v as u64)
                    .with_label(format!("n{n}v{v}"));
                queries.push(q);
            }
        }
        Self {
            db: synth.db,
            stats: synth.stats,
            queries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imdb_job_bundle() {
        let bundle = WorkloadBundle::imdb_job(
            ImdbConfig {
                base_rows: 300,
                seed: 2,
            },
            11,
        );
        assert_eq!(bundle.queries.len(), 113);
        assert_eq!(bundle.max_rels(), 17);
        assert_eq!(bundle.db.catalog().table_count(), 17);
    }

    #[test]
    fn tpch_bundle() {
        let bundle = WorkloadBundle::tpch(TpchConfig {
            lineitem_rows: 500,
            seed: 3,
        });
        assert_eq!(bundle.queries.len(), 6);
        assert_eq!(bundle.max_rels(), 6);
    }

    #[test]
    fn synthetic_bundle_sizes() {
        let bundle = WorkloadBundle::synthetic(
            SynthConfig {
                tables: 8,
                rows: 200,
                seed: 4,
            },
            &[2, 4, 6],
            3,
        );
        assert_eq!(bundle.queries.len(), 9);
        assert_eq!(bundle.max_rels(), 6);
        assert!(bundle.queries.iter().all(|q| q.is_connected(q.all_rels())));
    }
}
