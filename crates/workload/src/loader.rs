//! Bulk CSV loading for the IMDB schema.
//!
//! Maps a directory of `<table>.csv` files (the layout of the real Join
//! Order Benchmark IMDB dumps) onto the catalog from
//! [`crate::imdb::build_catalog`]: each file streams through the typed
//! batched reader in `hfqo_storage::csv`, low-cardinality text columns
//! are dictionary-encoded, run-structured columns are run-length
//! encoded on top, indexes are built, and statistics are derived
//! — producing the same `(Database, StatsCatalog)` pair the synthetic
//! generator yields, but from real data. Tables without a file stay
//! empty, so partial samples (like the checked-in 1k-row test fixture)
//! load cleanly.

use crate::imdb;
use hfqo_stats::{build_database_stats, StatsCatalog};
use hfqo_storage::csv::{read_csv_into, CsvOptions};
use hfqo_storage::{Database, StorageError, Table};
use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Knobs for [`load_imdb_csv_dir`].
#[derive(Debug, Clone)]
pub struct LoaderOptions {
    /// CSV dialect and batch size.
    pub csv: CsvOptions,
    /// Dictionary-encode text columns with at most this many distinct
    /// values (0 disables encoding).
    pub dict_max_distinct: usize,
    /// Run-length-encode integer and dictionary-coded columns whose
    /// average run length is at least this (0 disables encoding).
    pub rle_min_avg_run: usize,
}

impl Default for LoaderOptions {
    fn default() -> Self {
        Self {
            csv: CsvOptions::default(),
            // IMDB's enumeration-like columns (kinds, roles, notes) have
            // hundreds to a few thousand distinct values; near-unique
            // columns (names, titles) stay plain.
            dict_max_distinct: 4096,
            // At an average run of 2+ the run table is already smaller
            // than the dense rows, and run-aware scan kernels start
            // skipping whole runs. Clustered dumps (rows grouped by
            // parent id) clear this easily; uniform columns never do.
            rle_min_avg_run: 2,
        }
    }
}

/// What one table's load did.
#[derive(Debug, Clone)]
pub struct TableLoadReport {
    /// Table name.
    pub table: String,
    /// Rows ingested.
    pub rows: usize,
    /// CSV bytes consumed.
    pub bytes: usize,
    /// Text columns that were dictionary-encoded.
    pub dict_columns: usize,
    /// Columns that were run-length-encoded (after dictionary encoding,
    /// so text columns count here only when their codes form runs).
    pub rle_columns: usize,
}

/// What a whole directory load did.
#[derive(Debug, Clone, Default)]
pub struct CsvLoadReport {
    /// Per-table reports, in load order (tables with a CSV file only).
    pub tables: Vec<TableLoadReport>,
    /// Wall-clock time spent parsing and inserting (excludes index and
    /// statistics builds).
    pub load_time: Duration,
}

impl CsvLoadReport {
    /// Total rows ingested across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// Total CSV bytes consumed.
    pub fn total_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.bytes).sum()
    }

    /// Ingest throughput in rows per second.
    pub fn rows_per_sec(&self) -> f64 {
        let secs = self.load_time.as_secs_f64();
        if secs > 0.0 {
            self.total_rows() as f64 / secs
        } else {
            0.0
        }
    }
}

/// A failed directory load.
#[derive(Debug)]
pub enum LoadError {
    /// Reading a CSV file failed at the filesystem level.
    Io(PathBuf, std::io::Error),
    /// A record failed to parse or violated the schema.
    Storage(String, StorageError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(path, e) => write!(f, "cannot read `{}`: {e}", path.display()),
            Self::Storage(table, e) => write!(f, "loading table `{table}`: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(_, e) => Some(e),
            Self::Storage(_, e) => Some(e),
        }
    }
}

/// Loads every `<table>.csv` under `dir` into a fresh IMDB-schema
/// database, builds indexes and statistics, and reports throughput.
pub fn load_imdb_csv_dir(
    dir: &Path,
    opts: &LoaderOptions,
) -> Result<(Database, StatsCatalog, CsvLoadReport), LoadError> {
    let mut db = Database::new(imdb::build_catalog());
    let mut report = CsvLoadReport::default();
    let started = std::time::Instant::now();
    for &name in imdb::TABLE_NAMES {
        let path = dir.join(format!("{name}.csv"));
        if !path.exists() {
            continue;
        }
        let file = File::open(&path).map_err(|e| LoadError::Io(path.clone(), e))?;
        let tid = db.catalog().table_by_name(name).expect("catalog table");
        let schema = db.catalog().table(tid).expect("catalog table").clone();
        let mut table = Table::new(schema);
        let stats = read_csv_into(&mut table, BufReader::new(file), &opts.csv)
            .map_err(|e| LoadError::Storage(name.to_string(), e))?;
        let dict_columns = if opts.dict_max_distinct > 0 {
            table.dictionary_encode_strings(opts.dict_max_distinct)
        } else {
            0
        };
        // RLE rides on top of dictionary codes for text, so encode
        // order matters: dictionary first, runs second.
        let rle_columns = if opts.rle_min_avg_run > 0 {
            table.rle_encode_columns(opts.rle_min_avg_run)
        } else {
            0
        };
        db.load_table(tid, table)
            .map_err(|e| LoadError::Storage(name.to_string(), e))?;
        report.tables.push(TableLoadReport {
            table: name.to_string(),
            rows: stats.rows,
            bytes: stats.bytes,
            dict_columns,
            rle_columns,
        });
    }
    report.load_time = started.elapsed();
    db.build_indexes()
        .map_err(|e| LoadError::Storage("<indexes>".to_string(), e))?;
    let stats = build_database_stats(&db);
    Ok((db, stats, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_directory_loads_empty_database() {
        let dir = Path::new("/nonexistent/hfqo-load-test");
        let (db, stats, report) = load_imdb_csv_dir(dir, &LoaderOptions::default()).unwrap();
        assert_eq!(db.catalog().table_count(), 17);
        assert!(report.tables.is_empty());
        assert_eq!(report.total_rows(), 0);
        let t = imdb::table_id(&db, "title");
        assert_eq!(db.table(t).unwrap().row_count(), 0);
        assert_eq!(stats.table(t).row_count, 0.0);
    }
}
