//! The JOB-like query suite.
//!
//! 113 queries named `1a..33d` (33 families; families 1–14 have four
//! variants, 15–33 have three — matching the Join Order Benchmark's 113
//! queries over 33 structures). Every family is a connected subgraph of
//! the IMDB-like FK graph spanning 4–17 relations; variants share the
//! structure and differ in selection constants, exactly like JOB's
//! `a/b/c` variants. Queries are emitted as SQL text and bound through
//! the real parser + binder, so the suite also exercises the front-end.

use crate::imdb::{alias_of, FK_EDGES};
use hfqo_catalog::Catalog;
use hfqo_query::{bind_select, QueryGraph};
use hfqo_sql::parse_select;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The queries Figure 3b reports.
pub const FIGURE3B_LABELS: &[&str] = &[
    "1a", "1b", "1c", "1d", "8c", "12b", "13c", "15a", "16b", "22c",
];

/// Relation counts per family (covers the paper's 4–17 range).
const FAMILY_SIZES: [usize; 33] = [
    4, 5, 6, 6, 7, 7, 8, 8, 8, 9, 9, 9, 10, 10, 10, 11, 11, 12, 12, 5, 6, 7, 8, 9, 13, 14, 15, 16,
    17, 10, 11, 12, 13,
];

/// One generated query.
#[derive(Debug, Clone)]
pub struct JobQuery {
    /// JOB-style label, e.g. `"8c"`.
    pub label: String,
    /// The SQL text.
    pub sql: String,
    /// The bound query graph (label attached).
    pub graph: QueryGraph,
}

/// A selection site: `(table, column, kind)`.
#[derive(Debug, Clone, Copy)]
enum SelKind {
    /// `col = <int in range>`
    EqInt(i64, i64),
    /// `col > <int in range>`
    GtInt(i64, i64),
    /// `col < <int in range>`
    LtInt(i64, i64),
    /// `col = '<prefix><k>'` with `k` in range
    EqText(&'static str, i64),
}

/// Candidate selection predicates per table.
const SELECTION_SITES: &[(&str, &str, SelKind)] = &[
    ("title", "production_year", SelKind::GtInt(40, 130)),
    ("title", "production_year", SelKind::LtInt(30, 120)),
    ("title", "kind_id", SelKind::EqInt(0, 6)),
    ("movie_info", "info_type_id", SelKind::EqInt(0, 112)),
    ("movie_info", "info", SelKind::GtInt(50, 400)),
    ("movie_info_idx", "info_type_id", SelKind::EqInt(0, 112)),
    ("cast_info", "role_id", SelKind::EqInt(0, 11)),
    ("cast_info", "note", SelKind::EqText("cnote_", 30)),
    ("movie_companies", "company_type_id", SelKind::EqInt(0, 3)),
    ("movie_companies", "note", SelKind::EqText("note_", 50)),
    ("company_name", "country_code", SelKind::LtInt(5, 100)),
    ("name", "gender", SelKind::EqInt(0, 1)),
    ("keyword", "phonetic_code", SelKind::LtInt(100, 900)),
    ("char_name", "name_pcode", SelKind::LtInt(500, 9000)),
];

/// Grows a connected subgraph of the FK graph with `n` tables, seeded by
/// `rng`. Returns the chosen tables and the FK edges among them.
fn grow_subgraph(
    n: usize,
    rng: &mut StdRng,
) -> (Vec<&'static str>, Vec<(usize, usize, &'static str)>) {
    // Start from a fact-like hub so growth has room.
    const STARTS: &[&str] = &[
        "cast_info",
        "movie_info",
        "movie_companies",
        "movie_keyword",
        "title",
    ];
    let mut chosen: Vec<&'static str> = vec![STARTS[rng.gen_range(0..STARTS.len())]];
    while chosen.len() < n {
        // Tables adjacent to the chosen set.
        let mut frontier: Vec<&'static str> = Vec::new();
        for &(child, _, parent) in FK_EDGES {
            let child_in = chosen.contains(&child);
            let parent_in = chosen.contains(&parent);
            if child_in && !parent_in && !frontier.contains(&parent) {
                frontier.push(parent);
            }
            if parent_in && !child_in && !frontier.contains(&child) {
                frontier.push(child);
            }
        }
        if frontier.is_empty() {
            break; // whole schema consumed
        }
        let next = frontier[rng.gen_range(0..frontier.len())];
        chosen.push(next);
    }
    // All FK edges with both endpoints chosen: (child_idx, parent_idx, col).
    let mut edges = Vec::new();
    for &(child, col, parent) in FK_EDGES {
        if let (Some(ci), Some(pi)) = (
            chosen.iter().position(|&t| t == child),
            chosen.iter().position(|&t| t == parent),
        ) {
            edges.push((ci, pi, col));
        }
    }
    (chosen, edges)
}

/// The per-family skeleton: tables, edges, and selection sites.
struct FamilySkeleton {
    tables: Vec<&'static str>,
    edges: Vec<(usize, usize, &'static str)>,
    sites: Vec<(usize, &'static str, SelKind)>,
}

fn family_skeleton(family: usize, seed: u64) -> FamilySkeleton {
    let mut rng = StdRng::seed_from_u64(seed ^ (family as u64).wrapping_mul(0x9E37_79B9));
    let n = FAMILY_SIZES[(family - 1) % FAMILY_SIZES.len()];
    let (tables, edges) = grow_subgraph(n, &mut rng);
    // 1–3 selection sites on tables present in this family.
    let applicable: Vec<(usize, &'static str, SelKind)> = SELECTION_SITES
        .iter()
        .filter_map(|&(table, col, kind)| {
            tables
                .iter()
                .position(|&t| t == table)
                .map(|i| (i, col, kind))
        })
        .collect();
    let want = 1 + rng.gen_range(0..3usize.min(applicable.len().max(1)));
    let mut sites = Vec::new();
    let mut pool = applicable;
    for _ in 0..want.min(pool.len()) {
        let i = rng.gen_range(0..pool.len());
        sites.push(pool.swap_remove(i));
    }
    FamilySkeleton {
        tables,
        edges,
        sites,
    }
}

fn render_sql(skeleton: &FamilySkeleton, variant_rng: &mut StdRng) -> String {
    let mut sql = String::from("SELECT COUNT(*) FROM ");
    for (i, &t) in skeleton.tables.iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        sql.push_str(t);
        sql.push_str(" AS ");
        sql.push_str(alias_of(t));
    }
    let mut preds: Vec<String> = Vec::new();
    for &(child_idx, parent_idx, col) in &skeleton.edges {
        preds.push(format!(
            "{}.{} = {}.id",
            alias_of(skeleton.tables[child_idx]),
            col,
            alias_of(skeleton.tables[parent_idx]),
        ));
    }
    for &(tbl_idx, col, kind) in &skeleton.sites {
        let alias = alias_of(skeleton.tables[tbl_idx]);
        let pred = match kind {
            SelKind::EqInt(lo, hi) => {
                format!("{alias}.{col} = {}", variant_rng.gen_range(lo..=hi))
            }
            SelKind::GtInt(lo, hi) => {
                format!("{alias}.{col} > {}", variant_rng.gen_range(lo..=hi))
            }
            SelKind::LtInt(lo, hi) => {
                format!("{alias}.{col} < {}", variant_rng.gen_range(lo..=hi))
            }
            SelKind::EqText(prefix, pool) => {
                format!(
                    "{alias}.{col} = '{prefix}{}'",
                    variant_rng.gen_range(0..pool)
                )
            }
        };
        preds.push(pred);
    }
    if !preds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&preds.join(" AND "));
    }
    sql.push(';');
    sql
}

/// Number of variants for a family (families 1–14 have four, the rest
/// three — totalling 113).
pub fn variants_of(family: usize) -> usize {
    if family <= 14 {
        4
    } else {
        3
    }
}

/// Generates the full 113-query suite against the given catalog.
pub fn generate_job_suite(catalog: &Catalog, seed: u64) -> Vec<JobQuery> {
    let mut out = Vec::with_capacity(113);
    for family in 1..=33usize {
        let skeleton = family_skeleton(family, seed);
        for v in 0..variants_of(family) {
            let letter = (b'a' + v as u8) as char;
            let label = format!("{family}{letter}");
            let mut variant_rng =
                StdRng::seed_from_u64(seed ^ ((family as u64) << 8) ^ (v as u64 + 1));
            let sql = render_sql(&skeleton, &mut variant_rng);
            let stmt = parse_select(&sql).expect("generated SQL parses");
            let graph = bind_select(&stmt, catalog)
                .expect("generated SQL binds")
                .with_label(label.clone());
            out.push(JobQuery { label, sql, graph });
        }
    }
    out
}

/// Looks up the queries of Figure 3b within a generated suite.
pub fn figure3b_queries(suite: &[JobQuery]) -> Vec<&JobQuery> {
    FIGURE3B_LABELS
        .iter()
        .map(|&l| {
            suite
                .iter()
                .find(|q| q.label == l)
                .expect("figure 3b labels exist in the suite")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::imdb::build_catalog;

    fn suite() -> Vec<JobQuery> {
        generate_job_suite(&build_catalog(), 7)
    }

    #[test]
    fn suite_has_113_queries() {
        let s = suite();
        assert_eq!(s.len(), 113);
        let labels: std::collections::HashSet<_> = s.iter().map(|q| q.label.clone()).collect();
        assert_eq!(labels.len(), 113, "labels are unique");
    }

    #[test]
    fn all_queries_are_connected_and_sized() {
        let s = suite();
        let mut max_rels = 0;
        let mut min_rels = usize::MAX;
        for q in &s {
            assert!(
                q.graph.is_connected(q.graph.all_rels()),
                "{} is disconnected",
                q.label
            );
            let n = q.graph.relation_count();
            min_rels = min_rels.min(n);
            max_rels = max_rels.max(n);
            assert!(
                !q.graph.selections().is_empty(),
                "{} has no selection",
                q.label
            );
            assert!(q.graph.joins().len() >= n - 1, "{} underjoined", q.label);
        }
        assert!(min_rels >= 4, "min {min_rels}");
        assert_eq!(max_rels, 17, "max {max_rels}");
    }

    #[test]
    fn figure3b_queries_present() {
        let s = suite();
        let f = figure3b_queries(&s);
        assert_eq!(f.len(), 10);
        assert_eq!(f[0].label, "1a");
        assert_eq!(f[9].label, "22c");
    }

    #[test]
    fn variants_share_structure_differ_in_constants() {
        let s = suite();
        let a = s.iter().find(|q| q.label == "3a").expect("exists");
        let b = s.iter().find(|q| q.label == "3b").expect("exists");
        assert_eq!(a.graph.relation_count(), b.graph.relation_count());
        assert_eq!(a.graph.joins(), b.graph.joins());
        assert_ne!(a.sql, b.sql, "variants must differ");
    }

    #[test]
    fn generation_is_deterministic() {
        let s1 = suite();
        let s2 = suite();
        for (a, b) in s1.iter().zip(&s2) {
            assert_eq!(a.sql, b.sql);
        }
        // Different seed → different suite.
        let s3 = generate_job_suite(&build_catalog(), 8);
        assert!(s1.iter().zip(&s3).any(|(a, b)| a.sql != b.sql));
    }

    #[test]
    fn sql_round_trips_through_parser() {
        for q in suite().iter().take(20) {
            let stmt = parse_select(&q.sql).expect("parses");
            let rebound = bind_select(&stmt, &build_catalog()).expect("binds");
            assert_eq!(rebound.relation_count(), q.graph.relation_count());
        }
    }
}
