//! A TPC-H-like schema and query templates.
//!
//! The paper cites TPC-H when discussing how few low-relation-count
//! queries real benchmarks contain (§5.3.2: "TPC-H has only two such
//! templates"). This module provides the classic 8-table schema at a
//! configurable micro-scale plus a handful of join templates (Q3-, Q5-,
//! Q10-like), used by the examples and by tests that need a second,
//! differently-shaped workload.

use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, IndexKind};
use hfqo_query::{bind_select, QueryGraph};
use hfqo_sql::parse_select;
use hfqo_stats::{build_database_stats, StatsCatalog};
use hfqo_storage::{ColumnGen, Database, Distribution, TableGen};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchConfig {
    /// Rows in `lineitem`; the other tables scale in TPC-H's standard
    /// ratios.
    pub lineitem_rows: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            lineitem_rows: 30_000,
            seed: 0x7C,
        }
    }
}

/// Builds the TPC-H-like catalog.
pub fn build_catalog() -> Catalog {
    let mut cat = Catalog::new();
    let tables: Vec<(&str, Vec<Column>)> = vec![
        (
            "region",
            vec![
                Column::new("r_regionkey", ColumnType::Int),
                Column::new("r_name", ColumnType::Text),
            ],
        ),
        (
            "nation",
            vec![
                Column::new("n_nationkey", ColumnType::Int),
                Column::new("n_regionkey", ColumnType::Int),
                Column::new("n_name", ColumnType::Text),
            ],
        ),
        (
            "supplier",
            vec![
                Column::new("s_suppkey", ColumnType::Int),
                Column::new("s_nationkey", ColumnType::Int),
                Column::new("s_acctbal", ColumnType::Float),
            ],
        ),
        (
            "customer",
            vec![
                Column::new("c_custkey", ColumnType::Int),
                Column::new("c_nationkey", ColumnType::Int),
                Column::new("c_mktsegment", ColumnType::Int),
            ],
        ),
        (
            "part",
            vec![
                Column::new("p_partkey", ColumnType::Int),
                Column::new("p_size", ColumnType::Int),
                Column::new("p_retailprice", ColumnType::Float),
            ],
        ),
        (
            "partsupp",
            vec![
                Column::new("ps_partkey", ColumnType::Int),
                Column::new("ps_suppkey", ColumnType::Int),
                Column::new("ps_supplycost", ColumnType::Float),
            ],
        ),
        (
            "orders",
            vec![
                Column::new("o_orderkey", ColumnType::Int),
                Column::new("o_custkey", ColumnType::Int),
                Column::new("o_orderdate", ColumnType::Int),
                Column::new("o_totalprice", ColumnType::Float),
            ],
        ),
        (
            "lineitem",
            vec![
                Column::new("l_linekey", ColumnType::Int),
                Column::new("l_orderkey", ColumnType::Int),
                Column::new("l_partkey", ColumnType::Int),
                Column::new("l_suppkey", ColumnType::Int),
                Column::new("l_quantity", ColumnType::Int),
                Column::new("l_shipdate", ColumnType::Int),
            ],
        ),
    ];
    for (name, cols) in tables {
        let schema = hfqo_catalog::TableSchema::new(name, cols).with_primary_key(ColumnId(0));
        let t = cat.add_table(schema).expect("unique names");
        cat.add_index(format!("{name}_pk"), t, ColumnId(0), IndexKind::BTree, true)
            .expect("unique index names");
    }
    // Secondary indexes on the hot FK / date columns.
    for (table, col) in [
        ("lineitem", "l_orderkey"),
        ("lineitem", "l_shipdate"),
        ("orders", "o_custkey"),
        ("orders", "o_orderdate"),
    ] {
        let t = cat.table_by_name(table).expect("exists");
        let c = cat.resolve_column(t, col).expect("exists");
        cat.add_index(format!("{table}_{col}_idx"), t, c, IndexKind::BTree, false)
            .expect("unique index names");
    }
    cat
}

/// Builds database + statistics at the given scale.
pub fn build_tpch(config: TpchConfig) -> (Database, StatsCatalog) {
    let li = config.lineitem_rows.max(100);
    let orders = li / 4;
    let customers = orders / 10;
    let parts = (li / 15).max(50);
    let suppliers = (parts / 10).max(10);
    let partsupp = parts * 4;
    let catalog = build_catalog();
    let mut db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let seq = || ColumnGen::new(Distribution::Sequential);
    let fk = |rows: usize, s: f64| {
        ColumnGen::new(Distribution::FkZipf {
            target_rows: rows as u64,
            s,
        })
    };
    let gens: Vec<(&str, TableGen)> = vec![
        (
            "region",
            TableGen {
                columns: vec![
                    seq(),
                    ColumnGen::new(Distribution::TextPool {
                        prefix: "region_",
                        pool: 5,
                        s: 0.0,
                    }),
                ],
                rows: 5,
            },
        ),
        (
            "nation",
            TableGen {
                columns: vec![
                    seq(),
                    fk(5, 0.0),
                    ColumnGen::new(Distribution::TextPool {
                        prefix: "nation_",
                        pool: 25,
                        s: 0.0,
                    }),
                ],
                rows: 25,
            },
        ),
        (
            "supplier",
            TableGen {
                columns: vec![
                    seq(),
                    fk(25, 0.0),
                    ColumnGen::new(Distribution::UniformFloat {
                        lo: -999.0,
                        hi: 9999.0,
                    }),
                ],
                rows: suppliers,
            },
        ),
        (
            "customer",
            TableGen {
                columns: vec![
                    seq(),
                    fk(25, 0.3),
                    ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 4 }),
                ],
                rows: customers,
            },
        ),
        (
            "part",
            TableGen {
                columns: vec![
                    seq(),
                    ColumnGen::new(Distribution::UniformInt { lo: 1, hi: 50 }),
                    ColumnGen::new(Distribution::UniformFloat {
                        lo: 900.0,
                        hi: 2100.0,
                    }),
                ],
                rows: parts,
            },
        ),
        (
            "partsupp",
            TableGen {
                columns: vec![
                    seq(),
                    fk(parts, 0.2),
                    ColumnGen::new(Distribution::UniformFloat {
                        lo: 1.0,
                        hi: 1000.0,
                    }),
                ],
                rows: partsupp,
            },
        ),
        (
            "orders",
            TableGen {
                columns: vec![
                    seq(),
                    fk(customers, 0.6),
                    ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 2405 }),
                    ColumnGen::new(Distribution::UniformFloat {
                        lo: 800.0,
                        hi: 500_000.0,
                    }),
                ],
                rows: orders,
            },
        ),
        (
            "lineitem",
            TableGen {
                columns: vec![
                    seq(),
                    fk(orders, 0.4),
                    fk(parts, 0.7),
                    fk(suppliers, 0.7),
                    ColumnGen::new(Distribution::UniformInt { lo: 1, hi: 50 }),
                    ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 2526 }),
                ],
                rows: li,
            },
        ),
    ];
    for (name, gen) in gens {
        let tid = db.catalog().table_by_name(name).expect("exists");
        let schema = db.catalog().table(tid).expect("exists").clone();
        let table = gen.generate(&schema, &mut rng).expect("matches schema");
        db.load_table(tid, table).expect("schema matches");
    }
    db.build_indexes().expect("valid indexes");
    let stats = build_database_stats(&db);
    (db, stats)
}

/// The TPC-H-like query templates (label, SQL).
pub fn query_templates() -> Vec<(&'static str, String)> {
    vec![
        // Q3-like: customer ⋈ orders ⋈ lineitem with segment + date preds.
        (
            "q3",
            "SELECT COUNT(*) FROM customer c, orders o, lineitem l \
             WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
             AND c.c_mktsegment = 1 AND o.o_orderdate < 1200"
                .to_string(),
        ),
        // Q5-like: six-way join down to region.
        (
            "q5",
            "SELECT COUNT(*) FROM customer c, orders o, lineitem l, supplier s, nation n, region r \
             WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
             AND l.l_suppkey = s.s_suppkey AND s.s_nationkey = n.n_nationkey \
             AND n.n_regionkey = r.r_regionkey AND o.o_orderdate < 1800"
                .to_string(),
        ),
        // Q10-like: customer revenue join.
        (
            "q10",
            "SELECT COUNT(*) FROM customer c, orders o, lineitem l, nation n \
             WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
             AND c.c_nationkey = n.n_nationkey AND o.o_orderdate > 2000"
                .to_string(),
        ),
        // Part/supplier joins.
        (
            "q_ps",
            "SELECT COUNT(*) FROM part p, partsupp ps, supplier s, nation n \
             WHERE p.p_partkey = ps.ps_partkey AND ps.ps_suppkey = s.s_suppkey \
             AND s.s_nationkey = n.n_nationkey AND p.p_size < 20"
                .to_string(),
        ),
        // The two low-relation-count templates §5.3.2 mentions.
        (
            "q1_like",
            "SELECT COUNT(*), MIN(l.l_quantity) FROM lineitem l WHERE l.l_shipdate < 2200"
                .to_string(),
        ),
        (
            "q6_like",
            "SELECT COUNT(*) FROM lineitem l \
             WHERE l.l_shipdate > 500 AND l.l_quantity < 25"
                .to_string(),
        ),
    ]
}

/// Parses and binds every template against the catalog.
pub fn bind_templates(catalog: &Catalog) -> Vec<QueryGraph> {
    query_templates()
        .into_iter()
        .map(|(label, sql)| {
            let stmt = parse_select(&sql).expect("template parses");
            bind_select(&stmt, catalog)
                .expect("template binds")
                .with_label(label)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_data_build() {
        let (db, stats) = build_tpch(TpchConfig {
            lineitem_rows: 1000,
            seed: 3,
        });
        assert_eq!(db.catalog().table_count(), 8);
        let li = db.catalog().table_by_name("lineitem").expect("exists");
        assert_eq!(db.table(li).expect("exists").row_count(), 1000);
        assert_eq!(stats.table(li).row_count, 1000.0);
        let orders = db.catalog().table_by_name("orders").expect("exists");
        assert_eq!(db.table(orders).expect("exists").row_count(), 250);
    }

    #[test]
    fn templates_bind() {
        let catalog = build_catalog();
        let queries = bind_templates(&catalog);
        assert_eq!(queries.len(), 6);
        let q5 = queries
            .iter()
            .find(|q| q.label.as_deref() == Some("q5"))
            .expect("q5");
        assert_eq!(q5.relation_count(), 6);
        assert!(q5.is_connected(q5.all_rels()));
        // Exactly two single-relation templates, as §5.3.2 notes for
        // TPC-H.
        let single = queries.iter().filter(|q| q.relation_count() == 1).count();
        assert_eq!(single, 2);
    }
}
