//! The IMDB-like schema and data generator.
//!
//! Seventeen tables arranged like the core of the IMDB schema the Join
//! Order Benchmark uses: a central `title` table, large fact-like
//! satellites (`cast_info`, `movie_info`, `movie_companies`,
//! `movie_keyword`, …), and small dimension tables (`kind_type`,
//! `info_type`, `role_type`, `link_type`, `company_type`).
//!
//! Three properties of the real dataset matter to the experiments and
//! are reproduced: **skew** (zipfian foreign keys — a few movies carry
//! most of the cast), **shape** (FK chains and stars of fan-out 1:2 to
//! 1:5), and **correlation** (`production_year` correlates with
//! `kind_id`; note columns correlate with role ids), which breaks the
//! optimizer's independence assumption exactly where the paper needs the
//! cost model to be wrong.

use hfqo_catalog::{Catalog, Column, ColumnId, ColumnType, IndexKind, TableId};
use hfqo_stats::{build_database_stats, StatsCatalog};
use hfqo_storage::{ColumnGen, Database, Distribution, TableGen};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generation scale: table row counts derive from `base_rows`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImdbConfig {
    /// Rows in the `title` table; satellites scale with it.
    pub base_rows: usize,
    /// Data generation seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self {
            base_rows: 8_000,
            seed: 0xDB,
        }
    }
}

/// A foreign-key edge of the schema: `(child_table, child_column,
/// parent_table)` — parents are always referenced by their `id` column.
pub const FK_EDGES: &[(&str, &str, &str)] = &[
    ("title", "kind_id", "kind_type"),
    ("movie_companies", "movie_id", "title"),
    ("movie_companies", "company_id", "company_name"),
    ("movie_companies", "company_type_id", "company_type"),
    ("movie_info", "movie_id", "title"),
    ("movie_info", "info_type_id", "info_type"),
    ("movie_info_idx", "movie_id", "title"),
    ("movie_info_idx", "info_type_id", "info_type"),
    ("movie_keyword", "movie_id", "title"),
    ("movie_keyword", "keyword_id", "keyword"),
    ("cast_info", "movie_id", "title"),
    ("cast_info", "person_id", "name"),
    ("cast_info", "role_id", "role_type"),
    ("cast_info", "person_role_id", "char_name"),
    ("aka_title", "movie_id", "title"),
    ("movie_link", "movie_id", "title"),
    ("movie_link", "link_type_id", "link_type"),
];

/// All table names of the schema.
pub const TABLE_NAMES: &[&str] = &[
    "title",
    "kind_type",
    "info_type",
    "company_type",
    "company_name",
    "movie_companies",
    "movie_info",
    "movie_info_idx",
    "movie_keyword",
    "keyword",
    "cast_info",
    "name",
    "role_type",
    "char_name",
    "aka_title",
    "movie_link",
    "link_type",
];

/// Canonical short alias per table (as JOB uses `t`, `mc`, `mi`, …).
pub fn alias_of(table: &str) -> &'static str {
    match table {
        "title" => "t",
        "kind_type" => "kt",
        "info_type" => "it",
        "company_type" => "ct",
        "company_name" => "cn",
        "movie_companies" => "mc",
        "movie_info" => "mi",
        "movie_info_idx" => "mi_idx",
        "movie_keyword" => "mk",
        "keyword" => "k",
        "cast_info" => "ci",
        "name" => "n",
        "role_type" => "rt",
        "char_name" => "chn",
        "aka_title" => "at",
        "movie_link" => "ml",
        "link_type" => "lt",
        _ => "x",
    }
}

fn rows_for(table: &str, base: usize) -> usize {
    match table {
        "title" => base,
        "kind_type" => 7,
        "info_type" => 113,
        "company_type" => 4,
        "company_name" => (base / 10).max(20),
        "movie_companies" => base * 2,
        "movie_info" => base * 3,
        "movie_info_idx" => base,
        "movie_keyword" => base * 2,
        "keyword" => (base / 5).max(20),
        "cast_info" => base * 5,
        "name" => base * 2,
        "role_type" => 12,
        "char_name" => (base / 2).max(20),
        "aka_title" => (base / 4).max(10),
        "movie_link" => (base / 10).max(10),
        "link_type" => 18,
        other => unreachable!("unknown table {other}"),
    }
}

/// Builds the catalog: every table gets an `id` primary key with a B-tree
/// index; FK columns on the large satellites get B-tree indexes too
/// (matching JOB's indexed IMDB setup).
pub fn build_catalog() -> Catalog {
    let mut cat = Catalog::new();
    let columns_for = |table: &str| -> Vec<Column> {
        let mut cols = vec![Column::new("id", ColumnType::Int)];
        match table {
            "title" => {
                cols.push(Column::new("kind_id", ColumnType::Int));
                // Real IMDB dumps leave production_year unset for many
                // titles; the CSV sample carries \N rows for it.
                cols.push(Column::nullable("production_year", ColumnType::Int));
                cols.push(Column::new("phonetic_code", ColumnType::Int));
            }
            "kind_type" => cols.push(Column::new("kind", ColumnType::Text)),
            "info_type" => cols.push(Column::new("info", ColumnType::Text)),
            "company_type" => cols.push(Column::new("kind", ColumnType::Text)),
            "company_name" => {
                cols.push(Column::new("country_code", ColumnType::Int));
                cols.push(Column::new("name_pcode", ColumnType::Int));
            }
            "movie_companies" => {
                cols.push(Column::new("movie_id", ColumnType::Int));
                cols.push(Column::new("company_id", ColumnType::Int));
                cols.push(Column::new("company_type_id", ColumnType::Int));
                cols.push(Column::nullable("note", ColumnType::Text));
            }
            "movie_info" | "movie_info_idx" => {
                cols.push(Column::new("movie_id", ColumnType::Int));
                cols.push(Column::new("info_type_id", ColumnType::Int));
                cols.push(Column::new("info", ColumnType::Int));
            }
            "movie_keyword" => {
                cols.push(Column::new("movie_id", ColumnType::Int));
                cols.push(Column::new("keyword_id", ColumnType::Int));
            }
            "keyword" => {
                cols.push(Column::new("keyword", ColumnType::Text));
                cols.push(Column::new("phonetic_code", ColumnType::Int));
            }
            "cast_info" => {
                cols.push(Column::new("movie_id", ColumnType::Int));
                cols.push(Column::new("person_id", ColumnType::Int));
                cols.push(Column::new("role_id", ColumnType::Int));
                cols.push(Column::new("person_role_id", ColumnType::Int));
                cols.push(Column::new("note", ColumnType::Text));
            }
            "name" => {
                cols.push(Column::new("gender", ColumnType::Int));
                cols.push(Column::new("name_pcode", ColumnType::Int));
            }
            "role_type" => cols.push(Column::new("role", ColumnType::Text)),
            "char_name" => cols.push(Column::new("name_pcode", ColumnType::Int)),
            "aka_title" => cols.push(Column::new("movie_id", ColumnType::Int)),
            "movie_link" => {
                cols.push(Column::new("movie_id", ColumnType::Int));
                cols.push(Column::new("link_type_id", ColumnType::Int));
            }
            "link_type" => cols.push(Column::new("link", ColumnType::Text)),
            other => unreachable!("unknown table {other}"),
        }
        cols
    };
    for &name in TABLE_NAMES {
        let schema =
            hfqo_catalog::TableSchema::new(name, columns_for(name)).with_primary_key(ColumnId(0));
        let t = cat.add_table(schema).expect("unique table names");
        cat.add_index(
            format!("{name}_pkey"),
            t,
            ColumnId(0),
            IndexKind::BTree,
            true,
        )
        .expect("unique index names");
    }
    // FK indexes on the big satellites.
    for &(child, col, _) in FK_EDGES {
        let t = cat.table_by_name(child).expect("table exists");
        if rows_for(child, 1000) >= 1000 {
            let c = cat.resolve_column(t, col).expect("column exists");
            let _ = cat.add_index(format!("{child}_{col}_idx"), t, c, IndexKind::BTree, false);
        }
    }
    cat
}

fn generator_for(table: &str, base: usize) -> TableGen {
    let fk = |parent: &str, s: f64| {
        ColumnGen::new(Distribution::FkZipf {
            target_rows: rows_for(parent, base) as u64,
            s,
        })
    };
    let seq = || ColumnGen::new(Distribution::Sequential);
    let columns = match table {
        "title" => vec![
            seq(),
            fk("kind_type", 0.9),
            // production_year correlated with kind_id (levels ≈ decades).
            ColumnGen::new(Distribution::Correlated {
                source: 1,
                levels: 140,
                noise: 0.35,
            }),
            ColumnGen::new(Distribution::Zipf { n: 1000, s: 0.6 }),
        ],
        "kind_type" => vec![
            seq(),
            ColumnGen::new(Distribution::TextPool {
                prefix: "kind_",
                pool: 7,
                s: 0.0,
            }),
        ],
        "info_type" => vec![
            seq(),
            ColumnGen::new(Distribution::TextPool {
                prefix: "info_",
                pool: 113,
                s: 0.0,
            }),
        ],
        "company_type" => vec![
            seq(),
            ColumnGen::new(Distribution::TextPool {
                prefix: "ctype_",
                pool: 4,
                s: 0.0,
            }),
        ],
        "company_name" => vec![
            seq(),
            ColumnGen::new(Distribution::Zipf { n: 120, s: 1.1 }),
            ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 9_999 }),
        ],
        "movie_companies" => vec![
            seq(),
            fk("title", 0.7),
            fk("company_name", 1.1),
            fk("company_type", 0.5),
            ColumnGen::new(Distribution::TextPool {
                prefix: "note_",
                pool: 50,
                s: 1.2,
            }),
        ],
        "movie_info" | "movie_info_idx" => vec![
            seq(),
            fk("title", 0.8),
            fk("info_type", 1.0),
            // info value correlated with info_type_id.
            ColumnGen::new(Distribution::Correlated {
                source: 2,
                levels: 500,
                noise: 0.25,
            }),
        ],
        "movie_keyword" => vec![seq(), fk("title", 0.8), fk("keyword", 1.2)],
        "keyword" => vec![
            seq(),
            ColumnGen::new(Distribution::TextPool {
                prefix: "kw_",
                pool: 2000,
                s: 0.9,
            }),
            ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 999 }),
        ],
        "cast_info" => vec![
            seq(),
            fk("title", 0.9),
            fk("name", 0.9),
            fk("role_type", 1.0),
            fk("char_name", 0.8),
            ColumnGen::new(Distribution::TextPool {
                prefix: "cnote_",
                pool: 30,
                s: 1.3,
            }),
        ],
        "name" => vec![
            seq(),
            ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 1 }),
            ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 9_999 }),
        ],
        "role_type" => vec![
            seq(),
            ColumnGen::new(Distribution::TextPool {
                prefix: "role_",
                pool: 12,
                s: 0.0,
            }),
        ],
        "char_name" => vec![
            seq(),
            ColumnGen::new(Distribution::UniformInt { lo: 0, hi: 9_999 }),
        ],
        "aka_title" => vec![seq(), fk("title", 1.0)],
        "movie_link" => vec![seq(), fk("title", 1.0), fk("link_type", 0.6)],
        "link_type" => vec![
            seq(),
            ColumnGen::new(Distribution::TextPool {
                prefix: "link_",
                pool: 18,
                s: 0.0,
            }),
        ],
        other => unreachable!("unknown table {other}"),
    };
    TableGen {
        columns,
        rows: rows_for(table, base),
    }
}

/// Builds the database (catalog + data + indexes) and its statistics.
pub fn build_imdb(config: ImdbConfig) -> (Database, StatsCatalog) {
    let catalog = build_catalog();
    let mut db = Database::new(catalog);
    let mut rng = StdRng::seed_from_u64(config.seed);
    for &name in TABLE_NAMES {
        let tid = db.catalog().table_by_name(name).expect("table exists");
        let schema = db.catalog().table(tid).expect("exists").clone();
        let table = generator_for(name, config.base_rows)
            .generate(&schema, &mut rng)
            .expect("generator matches schema");
        db.load_table(tid, table).expect("schema matches");
    }
    db.build_indexes().expect("catalog indexes are valid");
    let stats = build_database_stats(&db);
    (db, stats)
}

/// Resolves a table id by name (panics on unknown names — the schema is
/// static).
pub fn table_id(db: &Database, name: &str) -> TableId {
    db.catalog().table_by_name(name).expect("known table")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Database, StatsCatalog) {
        build_imdb(ImdbConfig {
            base_rows: 400,
            seed: 1,
        })
    }

    #[test]
    fn all_tables_built_with_rows() {
        let (db, stats) = tiny();
        assert_eq!(db.catalog().table_count(), 17);
        for &name in TABLE_NAMES {
            let tid = table_id(&db, name);
            let rows = db.table(tid).expect("exists").row_count();
            assert!(rows > 0, "{name} is empty");
            assert_eq!(stats.table(tid).row_count, rows as f64, "{name}");
        }
        // Fact tables scale relative to title.
        let title = db
            .table(table_id(&db, "title"))
            .expect("exists")
            .row_count();
        let ci = db
            .table(table_id(&db, "cast_info"))
            .expect("exists")
            .row_count();
        assert_eq!(ci, title * 5);
    }

    #[test]
    fn fk_edges_resolve() {
        let (db, _) = tiny();
        for &(child, col, parent) in FK_EDGES {
            let c = table_id(&db, child);
            let p = table_id(&db, parent);
            assert!(db.catalog().resolve_column(c, col).is_ok(), "{child}.{col}");
            assert!(db.catalog().resolve_column(p, "id").is_ok(), "{parent}.id");
        }
    }

    #[test]
    fn fk_values_within_parent_range() {
        let (db, _) = tiny();
        let ci = table_id(&db, "cast_info");
        let name_rows = db.table(table_id(&db, "name")).expect("exists").row_count() as i64;
        let table = db.table(ci).expect("exists");
        let col = db
            .catalog()
            .resolve_column(ci, "person_id")
            .expect("exists");
        for r in 0..table.row_count() {
            let v = table.value_at(r, col).as_int().expect("int fk");
            assert!(v >= 0 && v < name_rows);
        }
    }

    #[test]
    fn skew_present_in_fact_fks() {
        let (db, stats) = tiny();
        let mk = table_id(&db, "movie_keyword");
        let kw_col = db
            .catalog()
            .resolve_column(mk, "keyword_id")
            .expect("exists");
        let col_stats = &stats.table(mk).columns[kw_col.index()];
        // Zipf-skewed FK: the most common keyword covers far more than
        // the uniform share.
        let uniform_share = 1.0 / col_stats.meta.ndv.max(1.0);
        let top = col_stats.mcvs.first().map(|(_, f)| *f).unwrap_or(0.0);
        assert!(
            top > 4.0 * uniform_share,
            "top share {top} vs uniform {uniform_share}"
        );
    }

    #[test]
    fn determinism_per_seed() {
        let (db1, _) = tiny();
        let (db2, _) = tiny();
        let t = table_id(&db1, "title");
        let a = db1.table(t).expect("exists");
        let b = db2.table(t).expect("exists");
        for r in [0usize, 17, 399] {
            for c in 0..a.schema().arity() {
                assert_eq!(
                    a.value_at(r, ColumnId(c as u32)),
                    b.value_at(r, ColumnId(c as u32))
                );
            }
        }
    }

    #[test]
    fn aliases_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &t in TABLE_NAMES {
            assert!(seen.insert(alias_of(t)), "duplicate alias for {t}");
        }
    }
}
