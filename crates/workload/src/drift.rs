//! The drift harness: proving "hands-free" under a changing world.
//!
//! Every other workload in this crate serves a frozen database with
//! frozen statistics — exactly the setting where the paper's hands-free
//! optimizer is least needed. This module supplies the moving target:
//!
//! * **Mutation operators** ([`Mutation`] / [`apply_mutation`]) —
//!   deterministic, seed-driven changes to a live
//!   [`Database`]: append-heavy growth batches
//!   sampled from the live row distribution, skew shifts that collapse a
//!   value column toward one head value, and bulk deletes. Every
//!   operator preserves the typed-column invariants *and* each column's
//!   physical encoding ([`hfqo_storage::Encoding`]), so the row, batch,
//!   and parallel engines stay bit-identical on the mutated data, and
//!   rebuilds every index (index row ids are positional and go stale
//!   under any mutation).
//! * **Shock scripts** ([`Shock`] / [`ShockKind`]) — a shock bundles
//!   mutations with optional new query templates arriving mid-run, the
//!   two ways a serving workload's world actually moves.
//! * **The shock→recovery harness** ([`DriftHarness`]) — runs an
//!   expert (`TraditionalPlanner`-backed) session and a learned
//!   session (an [`OnlineTrainer`]-attached REINFORCE agent) over the
//!   *same* mutating database, interleaves serving traffic with
//!   mutation events and mid-traffic
//!   [`rebuild_stats`](QuerySession::rebuild_stats), and measures, per
//!   shock, how many policy swap generations and serves the learned
//!   planner needs to return to expert parity on p95 latency
//!   ([`RecoveryReport`]).
//!
//! **Determinism contract.** Mutations are pure functions of
//! `(database, seed)`: fixed seeds reproduce bit-identical
//! post-mutation tables. The harness measures latency from the
//! executor's deterministic work counter (`ExecStats.work ×
//! ms_per_unit`), never wall-clock, and the agent's only randomness is
//! its seeded init — so a whole scenario run, including every
//! [`RecoveryReport`], is bit-reproducible and golden-loggable across
//! dev and release profiles. Served rows are asserted identical to the
//! expert's freshly-planned reference on *every* serve, before any
//! latency is recorded.

use hfqo_catalog::{ColumnId, TableId};
use hfqo_exec::ExecConfig;
use hfqo_query::{AggExpr, QueryGraph};
use hfqo_rejoin::{Featurizer, PolicyKind, ReJoinAgent};
use hfqo_serve::{OnlineConfig, OnlineTrainer, QuerySession, ServedQuery};
use hfqo_sql::AggFunc;
use hfqo_stats::{stats_drift, DriftMagnitude, StatsCatalog};
use hfqo_storage::{Database, StorageError, Value};
use hfqo_sync::RwLock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// What can go wrong applying a mutation.
#[derive(Debug)]
pub enum DriftError {
    /// The storage layer rejected the change (missing table, schema
    /// violation, index rebuild failure).
    Storage(StorageError),
    /// The mutation itself is unusable: out-of-range fraction, append
    /// into an empty table, skewing a primary key, …
    InvalidMutation(String),
}

impl fmt::Display for DriftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::InvalidMutation(msg) => write!(f, "invalid mutation: {msg}"),
        }
    }
}

impl std::error::Error for DriftError {}

impl From<StorageError> for DriftError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

/// A seed-driven change to a live database.
#[derive(Debug, Clone, PartialEq)]
pub enum MutationOp {
    /// Appends `rows` rows to `table`. Non-key columns copy values from
    /// seeded source rows of the pre-mutation table (growth preserves
    /// the live distribution, nulls included); an integer primary key
    /// continues past the current maximum, so uniqueness and index
    /// invariants hold. Appending goes through the encoded columns'
    /// own push paths — dictionary and RLE layouts extend in place.
    Append {
        /// Target table.
        table: TableId,
        /// Rows to append.
        rows: usize,
    },
    /// Overwrites a seeded `fraction` of `column`'s rows with one
    /// seeded head value drawn from the live column — the distribution
    /// collapses toward that value (ndv falls, one MCV grows). The
    /// rebuilt column is re-encoded to the physical layout it had.
    /// Rejected for primary-key columns.
    SkewShift {
        /// Target table.
        table: TableId,
        /// Column whose distribution shifts.
        column: ColumnId,
        /// Fraction of rows re-pointed at the head value, in `[0, 1]`.
        fraction: f64,
    },
    /// Deletes a seeded `fraction` of `table`'s rows (at least one row
    /// always survives, so statistics and scans stay well-defined).
    /// Every column is rebuilt from the survivors and re-encoded to its
    /// previous physical layout.
    BulkDelete {
        /// Target table.
        table: TableId,
        /// Fraction of rows deleted, in `[0, 1]`.
        fraction: f64,
    },
}

/// A [`MutationOp`] plus the seed that makes it deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutation {
    /// The operator.
    pub op: MutationOp,
    /// Seed for every random draw the operator makes.
    pub seed: u64,
}

impl Mutation {
    /// An append-growth mutation.
    pub fn append(table: TableId, rows: usize, seed: u64) -> Self {
        Self {
            op: MutationOp::Append { table, rows },
            seed,
        }
    }

    /// A skew-shift mutation.
    pub fn skew_shift(table: TableId, column: ColumnId, fraction: f64, seed: u64) -> Self {
        Self {
            op: MutationOp::SkewShift {
                table,
                column,
                fraction,
            },
            seed,
        }
    }

    /// A bulk-delete mutation.
    pub fn bulk_delete(table: TableId, fraction: f64, seed: u64) -> Self {
        Self {
            op: MutationOp::BulkDelete { table, fraction },
            seed,
        }
    }
}

/// What one mutation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReport {
    /// The mutated table.
    pub table: TableId,
    /// Row count before.
    pub rows_before: usize,
    /// Row count after.
    pub rows_after: usize,
}

/// Applies one mutation to `db` and rebuilds every index (index row ids
/// are positional, so *any* mutation leaves them stale). Deterministic:
/// the same `(db, mutation)` pair always produces the bit-identical
/// post-mutation database. The caller still owns statistics freshness —
/// sessions should follow up with
/// [`QuerySession::refresh_after_mutation`].
pub fn apply_mutation(
    db: &mut Database,
    mutation: &Mutation,
) -> Result<MutationReport, DriftError> {
    let report = match &mutation.op {
        MutationOp::Append { table, rows } => append_rows(db, *table, *rows, mutation.seed)?,
        MutationOp::SkewShift {
            table,
            column,
            fraction,
        } => skew_shift(db, *table, *column, *fraction, mutation.seed)?,
        MutationOp::BulkDelete { table, fraction } => {
            bulk_delete(db, *table, *fraction, mutation.seed)?
        }
    };
    db.build_indexes()?;
    Ok(report)
}

fn append_rows(
    db: &mut Database,
    tid: TableId,
    rows: usize,
    seed: u64,
) -> Result<MutationReport, DriftError> {
    let table = db.table_mut(tid)?;
    let rows_before = table.row_count();
    if rows_before == 0 && rows > 0 {
        return Err(DriftError::InvalidMutation(format!(
            "append into empty table {tid:?}: growth samples from live rows"
        )));
    }
    let schema = table.schema().clone();
    let pk = schema.primary_key();
    let mut next_pk = 0i64;
    if let Some(c) = pk {
        for row in 0..rows_before {
            match table.value_at(row, c) {
                Value::Int(x) => next_pk = next_pk.max(x + 1),
                Value::Null => {}
                other => {
                    return Err(DriftError::InvalidMutation(format!(
                        "append requires an integer primary key, found {other}"
                    )))
                }
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11E_4D00);
    let mut row_buf: Vec<Value> = Vec::with_capacity(schema.arity());
    for _ in 0..rows {
        // Sampling strictly below `rows_before` keeps the source pool
        // fixed at the pre-mutation rows: growth echoes the live
        // distribution and never feeds on its own output.
        let src = rng.gen_range(0..rows_before);
        row_buf.clear();
        for i in 0..schema.arity() {
            let c = ColumnId(i as u32);
            if pk == Some(c) {
                row_buf.push(Value::Int(next_pk));
                next_pk += 1;
            } else {
                row_buf.push(table.value_at(src, c));
            }
        }
        table.append_row(&row_buf)?;
    }
    Ok(MutationReport {
        table: tid,
        rows_before,
        rows_after: rows_before + rows,
    })
}

fn skew_shift(
    db: &mut Database,
    tid: TableId,
    col: ColumnId,
    fraction: f64,
    seed: u64,
) -> Result<MutationReport, DriftError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DriftError::InvalidMutation(format!(
            "skew fraction {fraction} outside [0, 1]"
        )));
    }
    let table = db.table_mut(tid)?;
    if table.schema().primary_key() == Some(col) {
        return Err(DriftError::InvalidMutation(
            "skewing a primary-key column would break uniqueness".into(),
        ));
    }
    let rows = table.row_count();
    let report = MutationReport {
        table: tid,
        rows_before: rows,
        rows_after: rows,
    };
    if rows == 0 || fraction == 0.0 {
        return Ok(report);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EC7_0000);
    // The head value the distribution collapses toward: the first
    // non-null among a bounded number of seeded probes.
    let mut head = None;
    for _ in 0..16 {
        let v = table.value_at(rng.gen_range(0..rows), col);
        if !v.is_null() {
            head = Some(v);
            break;
        }
    }
    let Some(head) = head else {
        return Err(DriftError::InvalidMutation(format!(
            "no non-null head value found in table {tid:?} column #{}",
            col.index()
        )));
    };
    let mask: Vec<bool> = (0..rows).map(|_| rng.gen_bool(fraction)).collect();
    table.rebuild_column(col, |row, v| if mask[row] { head.clone() } else { v })?;
    Ok(report)
}

fn bulk_delete(
    db: &mut Database,
    tid: TableId,
    fraction: f64,
    seed: u64,
) -> Result<MutationReport, DriftError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(DriftError::InvalidMutation(format!(
            "delete fraction {fraction} outside [0, 1]"
        )));
    }
    let table = db.table_mut(tid)?;
    let rows_before = table.row_count();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDE1E_7E00);
    let mut keep: Vec<bool> = (0..rows_before).map(|_| !rng.gen_bool(fraction)).collect();
    if rows_before > 0 && !keep.iter().any(|&k| k) {
        // Never empty a table: scans, stats, and join results over a
        // zero-row relation would make the scenario degenerate.
        keep[0] = true;
    }
    let rows_after = table.retain_rows(&keep)?;
    Ok(MutationReport {
        table: tid,
        rows_before,
        rows_after,
    })
}

/// The shock taxonomy the recovery battery measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShockKind {
    /// Append-heavy growth batches across the joined tables.
    AppendGrowth,
    /// A value-distribution shift re-weighting selection columns.
    SkewShift,
    /// Bulk deletes shrinking the joined tables.
    BulkDelete,
    /// New query templates arriving mid-run (no data change).
    NewTemplates,
}

impl ShockKind {
    /// Stable label used in reports and golden logs.
    pub fn label(self) -> &'static str {
        match self {
            Self::AppendGrowth => "append_growth",
            Self::SkewShift => "skew_shift",
            Self::BulkDelete => "bulk_delete",
            Self::NewTemplates => "new_templates",
        }
    }
}

/// One scripted shock: a batch of mutations applied between serving
/// rounds, plus query templates that start arriving with it.
#[derive(Debug, Clone)]
pub struct Shock {
    /// Which kind of world change this is.
    pub kind: ShockKind,
    /// Mutations applied (in order) when the shock lands.
    pub mutations: Vec<Mutation>,
    /// Templates added to the served workload when the shock lands.
    pub new_queries: Vec<QueryGraph>,
}

impl Shock {
    /// An empty shock of the given kind.
    pub fn new(kind: ShockKind) -> Self {
        Self {
            kind,
            mutations: Vec::new(),
            new_queries: Vec::new(),
        }
    }

    /// Adds a mutation (builder style).
    pub fn with_mutation(mut self, m: Mutation) -> Self {
        self.mutations.push(m);
        self
    }

    /// Adds a new mid-run query template (builder style).
    pub fn with_query(mut self, q: QueryGraph) -> Self {
        self.new_queries.push(q);
        self
    }
}

/// Knobs of the shock→recovery harness.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Seed for the learned agent's initial weights.
    pub agent_seed: u64,
    /// Featurizer capacity: the largest `relation_count` any query —
    /// including mid-run arrivals — may have.
    pub max_rels: usize,
    /// Policy-swap cadence of the online trainer (episodes per
    /// generation).
    pub swap_every: usize,
    /// Experiences drained per trainer step.
    pub drain_batch: usize,
    /// Parity threshold: recovery is declared when the learned round
    /// p95 is at most `parity_factor ×` the expert's p95.
    pub parity_factor: f64,
    /// Maximum warm-up rounds before the first shock.
    pub warmup_rounds: usize,
    /// Maximum recovery rounds measured per shock.
    pub max_rounds_per_shock: usize,
    /// Serving rounds run on *stale* statistics after each shock before
    /// the mid-traffic stats rebuild — results must stay correct (plans
    /// are data-independent), only plan quality lags.
    pub stats_lag_rounds: usize,
    /// Execution configuration for both sessions.
    pub exec: ExecConfig,
    /// Work-units → milliseconds conversion, shared by the trainer's
    /// rewards and the report's latencies.
    pub ms_per_unit: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        let online = OnlineConfig::default();
        Self {
            agent_seed: 0xD21F7,
            max_rels: 8,
            swap_every: 4,
            drain_batch: 64,
            parity_factor: 1.1,
            warmup_rounds: 24,
            max_rounds_per_shock: 32,
            stats_lag_rounds: 1,
            // Headroom above the executor default: recovery scenarios
            // deliberately serve bad (untrained / post-shock) plans,
            // and the harness needs to *measure* them, not abort them.
            exec: ExecConfig::with_budget(60_000_000),
            ms_per_unit: online.ms_per_unit,
        }
    }
}

/// One measured serving round during recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRound {
    /// Round index since the shock (0 = first post-rebuild round).
    pub round: usize,
    /// Policy generation that served this round.
    pub generation: u64,
    /// Work-derived p95 latency of the round's serves, in ms.
    pub p95_ms: f64,
    /// Whether this round met the parity threshold.
    pub parity: bool,
}

/// The per-shock recovery measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Shock label (a [`ShockKind::label`], or `"warmup"`).
    pub label: String,
    /// The expert's p95 on the post-shock world (freshly planned,
    /// work-derived, constant across rounds).
    pub expert_p95_ms: f64,
    /// Every measured round, in order.
    pub rounds: Vec<RecoveryRound>,
    /// Learned-session serves measured during recovery.
    pub serves: usize,
    /// Policy generation when the shock landed.
    pub start_generation: u64,
    /// Swap generations from shock to the first parity round; `None`
    /// when parity was not reached within the round budget.
    pub generations_to_parity: Option<u64>,
    /// How far the shock moved the statistics (zero for pure
    /// new-template shocks).
    pub drift: DriftMagnitude,
}

impl RecoveryReport {
    /// Whether the learned planner returned to expert parity.
    pub fn parity_reached(&self) -> bool {
        self.generations_to_parity.is_some()
    }

    /// p95 of the last measured round (the expert p95 when no round
    /// was measured, which happens only with a zero round budget).
    pub fn final_p95_ms(&self) -> f64 {
        self.rounds.last().map_or(self.expert_p95_ms, |r| r.p95_ms)
    }

    /// The `(shock_kind, generations, p95, parity_reached)` line the
    /// golden drift-recovery log pins. `{:?}` float formatting is the
    /// shortest round-trip representation, identical across dev and
    /// release profiles because every input is deterministic.
    pub fn golden_line(&self) -> String {
        let generations = match self.generations_to_parity {
            Some(g) => g.to_string(),
            None => "-".to_string(),
        };
        format!(
            "shock={} generations={} p95={:?} parity={}",
            self.label,
            generations,
            self.final_p95_ms(),
            self.parity_reached()
        )
    }
}

/// The whole scenario's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftOutcome {
    /// The pre-shock warm-up (same recovery loop, label `"warmup"`).
    pub warmup: RecoveryReport,
    /// One report per shock, in scenario order.
    pub shocks: Vec<RecoveryReport>,
}

impl DriftOutcome {
    /// Whether warm-up and every shock reached parity.
    pub fn all_parity(&self) -> bool {
        self.warmup.parity_reached() && self.shocks.iter().all(RecoveryReport::parity_reached)
    }

    /// The golden log: one [`RecoveryReport::golden_line`] per phase.
    pub fn golden_log(&self) -> String {
        std::iter::once(&self.warmup)
            .chain(&self.shocks)
            .map(|r| format!("{}\n", r.golden_line()))
            .collect()
    }
}

/// `q` with a single `COUNT(*)` root (projections dropped, structure
/// unchanged) — aggregate roots make results directly comparable across
/// join orders, which the harness's identity assertion relies on.
pub fn with_count_root(q: &QueryGraph) -> QueryGraph {
    let label = q.label.clone();
    let g = QueryGraph::new(
        q.relations().to_vec(),
        q.joins().to_vec(),
        q.selections().to_vec(),
        vec![AggExpr {
            func: AggFunc::Count,
            column: None,
        }],
        q.group_by().to_vec(),
    );
    match label {
        Some(l) => g.with_label(l),
        None => g,
    }
}

/// A shock battery derived from the workload itself: append growth on
/// every table the queries touch, a skew shift on every non-key column
/// the queries select on, a new template arriving mid-run, and a bulk
/// delete. Works against any schema (IMDB-like, TPC-H-like, synthetic)
/// because the targets come from the query graphs, not from hardcoded
/// table ids. Fully determined by `seed`; target order is sorted, so
/// the battery is independent of query order too.
pub fn shock_battery_for(
    db: &Database,
    queries: &[QueryGraph],
    growth_rows: usize,
    new_query: QueryGraph,
    seed: u64,
) -> Vec<Shock> {
    let mut tables: Vec<TableId> = queries
        .iter()
        .flat_map(|q| q.relations().iter().map(|r| r.table))
        .collect();
    tables.sort_unstable_by_key(|t| t.0);
    tables.dedup();
    let mut sel_cols: Vec<(TableId, ColumnId)> = queries
        .iter()
        .flat_map(|q| {
            q.selections().iter().map(|s| {
                let table = q.relations()[s.column.rel.index()].table;
                (table, s.column.column)
            })
        })
        .filter(|&(t, c)| {
            db.table(t)
                .map(|tab| tab.schema().primary_key() != Some(c))
                .unwrap_or(false)
        })
        .collect();
    sel_cols.sort_unstable_by_key(|&(t, c)| (t.0, c.0));
    sel_cols.dedup();

    let mut growth = Shock::new(ShockKind::AppendGrowth);
    let mut delete = Shock::new(ShockKind::BulkDelete);
    for (i, &t) in tables.iter().enumerate() {
        let salt = seed.wrapping_add(i as u64);
        growth = growth.with_mutation(Mutation::append(t, growth_rows, salt));
        delete = delete.with_mutation(Mutation::bulk_delete(t, 0.25, salt));
    }
    let mut skew = Shock::new(ShockKind::SkewShift);
    for (i, &(t, c)) in sel_cols.iter().enumerate() {
        let salt = seed.wrapping_add(1000 + i as u64);
        skew = skew.with_mutation(Mutation::skew_shift(t, c, 0.5, salt));
    }
    vec![
        growth,
        skew,
        Shock::new(ShockKind::NewTemplates).with_query(new_query),
        delete,
    ]
}

/// The standard shock battery over the [`SynthDb`](crate::synth::SynthDb)
/// schema (`s{i}(id, fk, val)`): append growth across the first
/// `tables` tables, a skew shift of every `val` selection column toward
/// one head value, a bulk delete, and a new template arriving mid-run.
/// Fully determined by `seed`.
pub fn synth_shock_battery(
    tables: usize,
    growth_rows: usize,
    new_query: QueryGraph,
    seed: u64,
) -> Vec<Shock> {
    let val = ColumnId(2);
    let mut growth = Shock::new(ShockKind::AppendGrowth);
    let mut skew = Shock::new(ShockKind::SkewShift);
    let mut delete = Shock::new(ShockKind::BulkDelete);
    for t in 0..tables {
        let tid = TableId(t as u32);
        let salt = seed.wrapping_add(t as u64);
        growth = growth.with_mutation(Mutation::append(tid, growth_rows, salt));
        skew = skew.with_mutation(Mutation::skew_shift(tid, val, 0.6, salt));
        delete = delete.with_mutation(Mutation::bulk_delete(tid, 0.35, salt));
    }
    vec![
        growth,
        skew,
        Shock::new(ShockKind::NewTemplates).with_query(new_query),
        delete,
    ]
}

/// A complete scripted drift scenario: the world, the traffic, and the
/// shocks. [`DriftScenario::imdb_job`] is the standard fixed-seed
/// script shared by the integration tests, the golden drift-recovery
/// log, the drift bench, and the `drift_recovery` example — one
/// scenario, so every consumer pins the same numbers.
pub struct DriftScenario {
    /// The initial database.
    pub db: Database,
    /// Statistics over the initial database.
    pub stats: StatsCatalog,
    /// The serving traffic (templates served every round).
    pub queries: Vec<QueryGraph>,
    /// The shock script, in order.
    pub shocks: Vec<Shock>,
    /// Harness knobs.
    pub config: DriftConfig,
}

impl DriftScenario {
    /// The standard scenario: ten 4–7-relation JOB-like templates over
    /// the IMDB-like database, hit with the full shock battery (append
    /// growth, skew shift, a new template arriving mid-run, bulk
    /// delete). The agent seed is chosen so the battery exercises both
    /// recovery modes: the warm-up and the bulk delete require real
    /// relearning (multiple swap generations), while the policy absorbs
    /// the growth and skew shocks without retraining — parity at the
    /// serving generation.
    pub fn imdb_job() -> Self {
        let bundle = crate::suite::WorkloadBundle::imdb_job(
            crate::imdb::ImdbConfig {
                base_rows: 200,
                seed: 41,
            },
            41,
        );
        let mut queries: Vec<QueryGraph> = bundle
            .queries
            .iter()
            .filter(|q| (4..=7).contains(&q.relation_count()))
            .take(11)
            .map(with_count_root)
            .collect();
        let newcomer = queries
            .pop()
            .expect("the JOB-like suite has 4-7 rel queries");
        let shocks = shock_battery_for(&bundle.db, &queries, 150, newcomer, 41);
        Self {
            db: bundle.db,
            stats: bundle.stats,
            queries,
            shocks,
            config: DriftConfig {
                agent_seed: 16,
                max_rounds_per_shock: 40,
                ..DriftConfig::default()
            },
        }
    }

    /// Builds the harness and runs the whole script.
    pub fn run(self) -> DriftOutcome {
        let mut harness = DriftHarness::new(self.db, self.stats, self.queries, self.config);
        harness.run(&self.shocks)
    }
}

fn sorted_rows(served: &ServedQuery) -> Vec<Vec<Value>> {
    let mut rows = served.outcome.rows.clone();
    rows.sort();
    rows
}

fn percentile(mut latencies: Vec<f64>, p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(f64::total_cmp);
    let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
    latencies[idx]
}

/// The shock→recovery harness. See the [module docs](self).
pub struct DriftHarness {
    learned: QuerySession,
    expert: QuerySession,
    trainer: OnlineTrainer,
    queries: Vec<Arc<QueryGraph>>,
    config: DriftConfig,
}

impl DriftHarness {
    /// Builds the two sessions over clones of `(db, stats)` and wires
    /// the learned one for online training.
    ///
    /// Panics when `queries` is empty or any query (now or later via a
    /// [`ShockKind::NewTemplates`] shock) exceeds `config.max_rels` —
    /// the featurizer's capacity is fixed at attach time, exactly the
    /// constraint a production deployment would size for.
    pub fn new(
        db: Database,
        stats: StatsCatalog,
        queries: Vec<QueryGraph>,
        config: DriftConfig,
    ) -> Self {
        assert!(!queries.is_empty(), "the harness needs serving traffic");
        for q in &queries {
            assert!(
                q.relation_count() <= config.max_rels,
                "query exceeds the featurizer capacity max_rels={}",
                config.max_rels
            );
        }
        let expert =
            QuerySession::traditional(db.clone(), stats.clone()).with_exec_config(config.exec);
        let mut learned = QuerySession::traditional(db, stats).with_exec_config(config.exec);
        let featurizer = Featurizer::new(config.max_rels);
        let mut rng = StdRng::seed_from_u64(config.agent_seed);
        let agent = ReJoinAgent::new(
            featurizer.state_dim(),
            featurizer.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        let online = OnlineConfig {
            swap_every: config.swap_every,
            drain_batch: config.drain_batch,
            ms_per_unit: config.ms_per_unit,
            ..OnlineConfig::default()
        };
        let trainer = OnlineTrainer::attach(&mut learned, agent, featurizer, true, online);
        Self {
            learned,
            expert,
            trainer,
            queries: queries.into_iter().map(Arc::new).collect(),
            config,
        }
    }

    /// The learned (online-training) session.
    pub fn learned_session(&self) -> &QuerySession {
        &self.learned
    }

    /// The expert reference session.
    pub fn expert_session(&self) -> &QuerySession {
        &self.expert
    }

    /// Policy generations published so far.
    pub fn generation(&self) -> u64 {
        self.trainer.generation()
    }

    /// The currently served templates.
    pub fn queries(&self) -> &[Arc<QueryGraph>] {
        &self.queries
    }

    /// Runs warm-up to initial parity, then every shock in order,
    /// returning the full measurement. Deterministic for a fixed
    /// `(db, stats, queries, config, shocks)` input.
    pub fn run(&mut self, shocks: &[Shock]) -> DriftOutcome {
        let warmup = self.recover(
            "warmup",
            self.config.warmup_rounds,
            DriftMagnitude::default(),
        );
        let shocks = shocks.iter().map(|shock| self.apply_shock(shock)).collect();
        DriftOutcome { warmup, shocks }
    }

    /// Lands one shock and measures recovery: apply the mutations to
    /// both sessions' databases, serve `stats_lag_rounds` on stale
    /// statistics (results must stay correct — only plan quality lags),
    /// rebuild statistics mid-traffic, then serve-and-train until the
    /// learned p95 returns to expert parity or the round budget runs
    /// out.
    pub fn apply_shock(&mut self, shock: &Shock) -> RecoveryReport {
        let stats_before = self.learned.stats().clone();
        for m in &shock.mutations {
            apply_mutation(self.learned.db_mut(), m).expect("valid mutation script");
            apply_mutation(self.expert.db_mut(), m).expect("valid mutation script");
        }
        // The expert is the reference: it refreshes immediately.
        self.expert
            .refresh_after_mutation()
            .expect("expert refresh");
        for q in &shock.new_queries {
            assert!(
                q.relation_count() <= self.config.max_rels,
                "mid-run template exceeds the featurizer capacity max_rels={}",
                self.config.max_rels
            );
            self.queries.push(Arc::new(q.clone()));
        }
        if !shock.mutations.is_empty() && self.config.stats_lag_rounds > 0 {
            let (reference, _) = self.reference();
            for _ in 0..self.config.stats_lag_rounds {
                let _ = self.serve_round(&reference);
                self.trainer.step(&self.learned);
            }
        }
        self.learned
            .refresh_after_mutation()
            .expect("learned refresh");
        let drift = stats_drift(&stats_before, self.learned.stats());
        self.recover(shock.kind.label(), self.config.max_rounds_per_shock, drift)
    }

    /// Expert reference for the current world: per-query sorted rows
    /// (the identity oracle) and the expert's work-derived p95.
    fn reference(&self) -> (Vec<Vec<Vec<Value>>>, f64) {
        let mut rows = Vec::with_capacity(self.queries.len());
        let mut latencies = Vec::with_capacity(self.queries.len());
        for q in &self.queries {
            let served = self
                .expert
                .serve_shared(Arc::clone(q))
                .expect("expert serves");
            latencies.push(served.outcome.stats.work as f64 * self.config.ms_per_unit);
            rows.push(sorted_rows(&served));
        }
        (rows, percentile(latencies, 0.95))
    }

    /// Serves every template once through the learned session,
    /// asserting row identity against the expert reference *before*
    /// recording any latency. Returns the round's p95.
    fn serve_round(&self, reference: &[Vec<Vec<Value>>]) -> f64 {
        let latencies: Vec<f64> = self
            .queries
            .iter()
            .zip(reference)
            .map(|(q, expected)| {
                let served = self
                    .learned
                    .serve_shared(Arc::clone(q))
                    .expect("learned serves");
                assert_eq!(
                    &sorted_rows(&served),
                    expected,
                    "drifted serving changed results for {:?}",
                    q.label
                );
                served.outcome.stats.work as f64 * self.config.ms_per_unit
            })
            .collect();
        percentile(latencies, 0.95)
    }

    fn recover(&mut self, label: &str, max_rounds: usize, drift: DriftMagnitude) -> RecoveryReport {
        let (reference, expert_p95_ms) = self.reference();
        let start_generation = self.trainer.generation();
        let mut rounds = Vec::new();
        let mut serves = 0usize;
        let mut generations_to_parity = None;
        for round in 0..max_rounds {
            let p95_ms = self.serve_round(&reference);
            serves += self.queries.len();
            // The generation that served this round (swaps land in the
            // step *after* the serves they learn from).
            let generation = self.trainer.generation();
            let parity = p95_ms <= self.config.parity_factor * expert_p95_ms;
            rounds.push(RecoveryRound {
                round,
                generation,
                p95_ms,
                parity,
            });
            if parity {
                generations_to_parity = Some(generation - start_generation);
                break;
            }
            self.trainer.step(&self.learned);
        }
        RecoveryReport {
            label: label.to_string(),
            expert_p95_ms,
            rounds,
            serves,
            start_generation,
            generations_to_parity,
            drift,
        }
    }
}

/// Atomically versioned database snapshots for concurrent
/// mutation-while-serving tests: one appender clones, mutates, and
/// [`publish`](DbSnapshots::publish)es; server threads
/// [`load`](DbSnapshots::load) a coherent `(version, database)` pair
/// and can never observe a torn (mid-append) dictionary or RLE column,
/// because published snapshots are immutable by construction. The lock
/// is an [`hfqo_sync::RwLock`], so every acquisition enters the
/// lockdep order graph under `HFQO_LOCKCHECK`.
pub struct DbSnapshots {
    inner: RwLock<(u64, Arc<Database>)>,
}

impl DbSnapshots {
    /// Version 0 wraps the initial database.
    pub fn new(db: Database) -> Self {
        Self {
            inner: RwLock::new("workload.drift.snapshots", (0, Arc::new(db))),
        }
    }

    /// The current `(version, snapshot)` pair, loaded coherently.
    pub fn load(&self) -> (u64, Arc<Database>) {
        let guard = self.inner.read();
        (guard.0, Arc::clone(&guard.1))
    }

    /// The current version.
    pub fn version(&self) -> u64 {
        self.inner.read().0
    }

    /// Publishes the next version and returns its number.
    pub fn publish(&self, db: Database) -> u64 {
        let mut guard = self.inner.write();
        guard.0 += 1;
        guard.1 = Arc::new(db);
        guard.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{Shape, SynthConfig, SynthDb};

    fn synth() -> SynthDb {
        SynthDb::build(SynthConfig {
            tables: 4,
            rows: 120,
            seed: 3,
        })
    }

    #[test]
    fn mutations_are_deterministic_and_preserve_schema() {
        let s = synth();
        for mutation in [
            Mutation::append(TableId(0), 40, 7),
            Mutation::skew_shift(TableId(1), ColumnId(2), 0.5, 7),
            Mutation::bulk_delete(TableId(2), 0.3, 7),
        ] {
            let mut a = s.db.clone();
            let mut b = s.db.clone();
            let ra = apply_mutation(&mut a, &mutation).unwrap();
            let rb = apply_mutation(&mut b, &mutation).unwrap();
            assert_eq!(ra, rb);
            let t = ra.table;
            let (ta, tb) = (a.table(t).unwrap(), b.table(t).unwrap());
            assert_eq!(ta.row_count(), tb.row_count());
            for row in 0..ta.row_count() {
                for c in 0..ta.schema().arity() {
                    assert_eq!(
                        ta.value_at(row, ColumnId(c as u32)),
                        tb.value_at(row, ColumnId(c as u32)),
                        "{mutation:?} row {row} col {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn append_continues_primary_keys() {
        let s = synth();
        let mut db = s.db.clone();
        let report = apply_mutation(&mut db, &Mutation::append(TableId(0), 25, 9)).unwrap();
        assert_eq!(report.rows_before, 120);
        assert_eq!(report.rows_after, 145);
        let t = db.table(TableId(0)).unwrap();
        let mut ids: Vec<i64> = (0..t.row_count())
            .map(|r| match t.value_at(r, ColumnId(0)) {
                Value::Int(x) => x,
                v => panic!("non-int pk {v}"),
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 145, "primary keys stay unique");
    }

    #[test]
    fn skew_shift_collapses_the_distribution() {
        let s = synth();
        let mut db = s.db.clone();
        let distinct = |db: &Database| {
            let t = db.table(TableId(0)).unwrap();
            let mut vals: Vec<Value> = (0..t.row_count())
                .map(|r| t.value_at(r, ColumnId(2)))
                .collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            vals.len()
        };
        let before = distinct(&db);
        apply_mutation(
            &mut db,
            &Mutation::skew_shift(TableId(0), ColumnId(2), 0.9, 11),
        )
        .unwrap();
        assert!(distinct(&db) < before, "ndv must fall under heavy skew");
    }

    #[test]
    fn invalid_mutations_are_rejected() {
        let s = synth();
        let mut db = s.db.clone();
        // Primary-key skew.
        let err = apply_mutation(
            &mut db,
            &Mutation::skew_shift(TableId(0), ColumnId(0), 0.5, 1),
        )
        .unwrap_err();
        assert!(matches!(err, DriftError::InvalidMutation(_)), "{err}");
        // Out-of-range fractions.
        assert!(apply_mutation(&mut db, &Mutation::bulk_delete(TableId(0), 1.5, 1)).is_err());
        assert!(apply_mutation(
            &mut db,
            &Mutation::skew_shift(TableId(0), ColumnId(2), -0.1, 1)
        )
        .is_err());
        // Missing table.
        assert!(matches!(
            apply_mutation(&mut db, &Mutation::append(TableId(99), 1, 1)).unwrap_err(),
            DriftError::Storage(_)
        ));
    }

    #[test]
    fn bulk_delete_never_empties_a_table() {
        let s = synth();
        let mut db = s.db.clone();
        let report = apply_mutation(&mut db, &Mutation::bulk_delete(TableId(3), 1.0, 5)).unwrap();
        assert_eq!(report.rows_after, 1, "one survivor guaranteed");
    }

    #[test]
    fn snapshots_version_monotonically() {
        let s = synth();
        let snaps = DbSnapshots::new(s.db.clone());
        let (v0, db0) = snaps.load();
        assert_eq!(v0, 0);
        let mut next = s.db.clone();
        apply_mutation(&mut next, &Mutation::append(TableId(0), 10, 1)).unwrap();
        assert_eq!(snaps.publish(next), 1);
        assert_eq!(snaps.version(), 1);
        let (v1, db1) = snaps.load();
        assert_eq!(v1, 1);
        assert_eq!(
            db0.table(TableId(0)).unwrap().row_count() + 10,
            db1.table(TableId(0)).unwrap().row_count()
        );
    }

    #[test]
    fn with_count_root_keeps_structure() {
        let s = synth();
        let q = s.query(Shape::Chain, 3, 1, 2);
        let c = with_count_root(&q);
        assert_eq!(c.relations(), q.relations());
        assert_eq!(c.joins(), q.joins());
        assert_eq!(c.selections(), q.selections());
        assert_eq!(c.label, q.label);
    }

    #[test]
    fn shock_battery_covers_all_kinds() {
        let s = synth();
        let battery = synth_shock_battery(4, 50, s.query(Shape::Star, 4, 1, 8), 21);
        let kinds: Vec<ShockKind> = battery.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&ShockKind::AppendGrowth));
        assert!(kinds.contains(&ShockKind::SkewShift));
        assert!(kinds.contains(&ShockKind::BulkDelete));
        assert!(kinds.contains(&ShockKind::NewTemplates));
        assert!(battery
            .iter()
            .find(|s| s.kind == ShockKind::NewTemplates)
            .is_some_and(|s| !s.new_queries.is_empty()));
    }
}
