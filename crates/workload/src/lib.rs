//! # hfqo-workload
//!
//! The workloads the experiments run on:
//!
//! * [`imdb`] — a synthetic IMDB-like schema (17 tables around a `title`
//!   hub, zipf-skewed foreign keys, correlated attributes) standing in
//!   for the IMDB dataset of the Join Order Benchmark the paper
//!   evaluates on,
//! * [`job`] — a 113-query JOB-like suite named `1a..33d`, spanning 4–17
//!   relations, including the ten queries Figure 3b reports,
//! * [`tpch`] — a TPC-H-like schema and a handful of join templates
//!   (the paper cites TPC-H when discussing low-relation-count queries),
//! * [`synth`] — parameterised chain/star/cycle query generators used by
//!   the planning-time sweep (Figure 3c) and the incremental-learning
//!   curricula,
//! * [`suite`] — bundles (database + statistics + queries) ready for the
//!   environments,
//! * [`drift`] — deterministic data-mutation operators and the
//!   shock→recovery harness that proves the online loop stays
//!   hands-free while the data underneath it moves.

pub mod drift;
pub mod imdb;
pub mod job;
pub mod loader;
pub mod suite;
pub mod synth;
pub mod tpch;

pub use drift::{
    apply_mutation, shock_battery_for, synth_shock_battery, with_count_root, DbSnapshots,
    DriftConfig, DriftError, DriftHarness, DriftOutcome, DriftScenario, Mutation, MutationOp,
    MutationReport, RecoveryReport, RecoveryRound, Shock, ShockKind,
};
pub use loader::{load_imdb_csv_dir, CsvLoadReport, LoaderOptions};
pub use suite::WorkloadBundle;
