//! The query-serving session.
//!
//! [`QuerySession`] owns the whole serving world — database (with its
//! catalog), statistics, cost parameters, a [`Planner`], and the plan
//! cache — and runs the full pipeline as one call:
//!
//! ```text
//!   serve(sql)
//!     ├─ parse      hfqo_sql::parse_select
//!     ├─ bind       hfqo_query::bind_select            → QueryGraph
//!     ├─ plan       (template, exact) fingerprints
//!     │               → PlanCache::probe ──hit───────→ PhysicalPlan
//!     │                        └──miss/replan──→ Planner::plan → insert
//!     └─ execute    hfqo_exec::execute (vectorized)    → rows + stats
//! ```
//!
//! Planning is cached under the **two-part key** of
//! [`mod@hfqo_query::fingerprint`]: the structure-only
//! [`hfqo_query::TemplateFingerprint`] groups every parameterization of
//! a query template into one cache entry, and the exact
//! [`hfqo_query::QueryFingerprint`] stays as the fast path within it.
//! On a probe the session also passes the statistics' selectivity
//! signature of the query's current literals
//! ([`hfqo_stats::selection_selectivities`]); a template hit whose
//! signature falls outside the configured band of every cached plan
//! re-plans into a separate per-template plan bucket (see
//! [`crate::cache`]) — templated workloads share plans, but a
//! rare-constant probe is not served a common-constant plan.
//!
//! Serving is concurrent: `serve` takes `&self`, the owned world is
//! read-only (`Database`/`StatsCatalog` are `Sync`), and the cache is
//! internally sharded — N threads contend per shard, not on one global
//! mutex, and planning and execution run outside any lock. Cold misses
//! are single-flighted per exact fingerprint: threads racing on the
//! same cold query run the planner exactly once, the rest wait and hit.
//!
//! Mutation is explicit and exclusive: [`QuerySession::rebuild_stats`]
//! re-scans the owned database and invalidates the cache (plans chosen
//! under stale statistics may no longer be the ones the planner would
//! pick), and [`QuerySession::set_planner`] swaps the strategy, also
//! invalidating (cached plans would otherwise be attributed to the
//! wrong strategy). Because planning happens outside the cache locks,
//! an invalidation can race an in-flight plan; inserts are
//! epoch-guarded (see [`PlanCache::insert_if_current`]), so a plan
//! produced under a superseded planner or statistics epoch is served
//! once but never cached.
//!
//! [`PlanCache::insert_if_current`]: crate::cache::PlanCache::insert_if_current

use crate::cache::{
    CacheConfig, CacheMetrics, CacheOutcome, CachedPlan, PlanCache, PlanKey, Probe,
};
use crate::experience::{Experience, ExperienceLog};
use hfqo_catalog::Catalog;
use hfqo_cost::CostParams;
use hfqo_exec::{execute, ExecConfig, ExecError, ExecOutcome};
use hfqo_opt::{OptError, PlannedQuery, Planner, PlannerContext, PlannerMethod};
use hfqo_query::{
    bind_select, fingerprint, template_fingerprint, tree_to_actions, PhysicalPlan, QueryError,
    QueryGraph,
};
use hfqo_sql::{parse_select, ParseError};
use hfqo_stats::{build_database_stats, selection_selectivities, StatsCatalog};
use hfqo_storage::Database;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Everything that can go wrong between SQL text and result rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The SQL text did not parse.
    Parse(ParseError),
    /// The statement did not bind against the catalog.
    Bind(QueryError),
    /// The planner rejected the query.
    Plan(OptError),
    /// Execution failed (budget, bad plan, …).
    Exec(ExecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "parse error: {e}"),
            Self::Bind(e) => write!(f, "bind error: {e}"),
            Self::Plan(e) => write!(f, "planning error: {e}"),
            Self::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        Self::Parse(e)
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        Self::Bind(e)
    }
}

impl From<OptError> for ServeError {
    fn from(e: OptError) -> Self {
        Self::Plan(e)
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        Self::Exec(e)
    }
}

/// One served query: the bound graph, the plan that ran (and where it
/// came from), and the execution outcome.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// The bound query graph (shared with the experience log when one
    /// is attached; callers going through [`QuerySession::serve_shared`]
    /// share their own `Arc` — no deep clone on the serve path).
    pub graph: Arc<QueryGraph>,
    /// The physical plan that executed.
    pub plan: PhysicalPlan,
    /// Estimated cost of the plan (at planning time).
    pub cost: f64,
    /// Which strategy produced the plan.
    pub method: PlannerMethod,
    /// Whether the plan came from the cache
    /// (`cache.is_hit()`; kept alongside [`Self::cache`] for callers
    /// that only care hit-or-not).
    pub cache_hit: bool,
    /// How the cache answered: exact hit, intra-template (band) hit,
    /// out-of-band re-plan, or cold miss.
    pub cache: CacheOutcome,
    /// Planning wall-clock: the cache lookup on a hit, the planner run
    /// on a miss.
    pub planning_time: std::time::Duration,
    /// Rows, schema, and execution statistics.
    pub outcome: ExecOutcome,
}

/// The concurrent query-serving session. See the [module docs](self).
pub struct QuerySession {
    db: Database,
    stats: StatsCatalog,
    params: CostParams,
    planner: Box<dyn Planner>,
    /// Internally sharded and synchronized; see [`crate::cache`].
    cache: PlanCache,
    exec_config: ExecConfig,
    /// When attached, every executed query is recorded for online
    /// learning (see [`crate::online`]). Recording never influences
    /// planning or execution — with no consumer draining the log,
    /// serving output is identical to an unattached session.
    experience: Option<Arc<ExperienceLog>>,
}

// N serving threads share one `&QuerySession`: the owned world is plain
// read-only data, the planner is `Send + Sync` by trait bound, and the
// cache is internally synchronized. The assertion breaks the build if a
// non-thread-safe member ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QuerySession>();
};

impl QuerySession {
    /// A session owning `db` and `stats`, planning with `planner`.
    pub fn new(db: Database, stats: StatsCatalog, planner: Box<dyn Planner>) -> Self {
        Self {
            db,
            stats,
            params: CostParams::postgres_like(),
            planner,
            cache: PlanCache::with_config(CacheConfig::default()),
            exec_config: ExecConfig::default(),
            experience: None,
        }
    }

    /// A session with the traditional DP/greedy expert planner.
    pub fn traditional(db: Database, stats: StatsCatalog) -> Self {
        Self::new(db, stats, Box::new(hfqo_opt::TraditionalPlanner::new()))
    }

    /// Overrides the execution configuration (builder style).
    pub fn with_exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Overrides the cost parameters (builder style).
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the plan-cache capacity (builder style). Cached
    /// entries are dropped (counted as one invalidation), but the
    /// accumulated cache metrics and the invalidation epoch **carry
    /// across** — a capacity change never silently zeroes the counters
    /// or un-fences in-flight stale inserts.
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        Self {
            cache: self.cache.rebuilt_with_capacity(capacity),
            ..self
        }
    }

    /// Overrides the full cache geometry and re-plan policy (builder
    /// style). Same carry-across semantics as
    /// [`Self::with_cache_capacity`].
    pub fn with_cache_config(self, config: CacheConfig) -> Self {
        Self {
            cache: self.cache.rebuilt_with(config),
            ..self
        }
    }

    /// The owned database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the owned database — for loading data or
    /// rebuilding indexes between serving phases. Data changes leave
    /// cached plans *valid* (plans are data-independent) but the
    /// statistics stale; call [`Self::rebuild_stats`] afterwards to
    /// refresh them and invalidate the cache.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    /// The current statistics.
    pub fn stats(&self) -> &StatsCatalog {
        &self.stats
    }

    /// The active planner's strategy name.
    pub fn planner_name(&self) -> &'static str {
        self.planner.name()
    }

    /// Snapshot of the plan-cache counters (aggregated across shards).
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }

    /// Drops every cached plan.
    pub fn invalidate_cache(&self) {
        self.cache.invalidate();
    }

    /// Swaps the planning strategy and invalidates the cache (cached
    /// plans belong to the previous strategy).
    pub fn set_planner(&mut self, planner: Box<dyn Planner>) {
        self.planner = planner;
        self.invalidate_cache();
    }

    /// Attaches (or detaches, with `None`) an experience log: every
    /// subsequently executed query is recorded for online learning.
    pub fn set_experience_log(&mut self, log: Option<Arc<ExperienceLog>>) {
        self.experience = log;
    }

    /// Attaches an experience log (builder style).
    pub fn with_experience_log(mut self, log: Arc<ExperienceLog>) -> Self {
        self.experience = Some(log);
        self
    }

    /// The attached experience log, if any.
    pub fn experience_log(&self) -> Option<&Arc<ExperienceLog>> {
        self.experience.as_ref()
    }

    /// Re-scans the owned database into fresh statistics and
    /// invalidates the plan cache: plans chosen under the old estimates
    /// may no longer be the planner's choice.
    pub fn rebuild_stats(&mut self) {
        self.stats = build_database_stats(&self.db);
        self.invalidate_cache();
    }

    /// The one-call drift path after mutating the owned database
    /// through [`Self::db_mut`] (or the drift harness's mutation
    /// operators): rebuilds every index from the current table data
    /// (index row ids are positional, so any append/delete/skew leaves
    /// them stale), re-scans statistics, and invalidates the plan
    /// cache. Because planning happens outside the cache locks, the
    /// invalidation bumps the epoch and in-flight plans computed under
    /// the pre-mutation statistics are served once but never cached —
    /// the same fence policy swaps rely on.
    pub fn refresh_after_mutation(&mut self) -> Result<(), hfqo_storage::StorageError> {
        self.db.build_indexes()?;
        self.rebuild_stats();
        Ok(())
    }

    /// Plans `graph`, going through the cache. Returns the planned
    /// query and how the cache answered. On a hit the `planning_time`
    /// is the lookup's wall-clock.
    pub fn plan(&self, graph: &QueryGraph) -> Result<(PlannedQuery, CacheOutcome), ServeError> {
        let (template, _params) = template_fingerprint(graph);
        let key = PlanKey {
            template,
            exact: fingerprint(graph),
        };
        // The current parameters' selectivity signature: recorded at
        // planning time, compared by the band on template hits.
        let current = selection_selectivities(&self.stats, graph);
        let start = Instant::now();
        match self.cache.probe(&key, &current) {
            Probe::Hit { plan, outcome } => Ok((
                PlannedQuery {
                    plan: plan.plan.clone(),
                    cost: plan.cost,
                    planning_time: start.elapsed(),
                    method: plan.method,
                },
                outcome,
            )),
            Probe::Plan {
                guard,
                epoch,
                outcome,
            } => {
                // This thread is the single-flight leader for the key:
                // plan outside the cache locks (misses on distinct
                // queries proceed in parallel), then insert under the
                // probe-time epoch. An invalidation racing the planning
                // (stats rebuild, planner swap, online policy swap)
                // bumps the cache epoch, so the superseded plan is
                // served once but never cached — a stale generation's
                // plan must not resurrect as cache hits. On planner
                // error the guard's drop releases any waiters to retry.
                let ctx = PlannerContext::new(self.db.catalog(), &self.stats)
                    .with_params(self.params.clone());
                let planned = self.planner.plan(&ctx, graph)?;
                let entry = Arc::new(CachedPlan {
                    plan: planned.plan.clone(),
                    cost: planned.cost,
                    method: planned.method,
                    selectivities: current,
                });
                self.cache.insert_if_current(&key, entry, epoch);
                drop(guard);
                Ok((planned, outcome))
            }
        }
    }

    /// Serves an already-bound, already-shared query graph: plan
    /// (through the cache) and execute. This is the zero-copy serve
    /// path — the `Arc` is shared with the result (and the experience
    /// record when a log is attached); the graph is never deep-cloned.
    pub fn serve_shared(&self, graph: Arc<QueryGraph>) -> Result<ServedQuery, ServeError> {
        let (planned, cache) = self.plan(&graph)?;
        let outcome = execute(&self.db, &graph, &planned.plan, self.exec_config)?;
        if let Some(log) = &self.experience {
            // The join decisions are derived from the executed plan's
            // tree skeleton, so cache hits and misses — and any
            // planning strategy — leave the same kind of record.
            log.push(Experience {
                graph: Arc::clone(&graph),
                decisions: tree_to_actions(&planned.plan.root.join_tree(), graph.relation_count()),
                executed_work: outcome.stats.work,
                elapsed: outcome.stats.elapsed,
                cost: planned.cost,
                method: planned.method,
                cache_hit: cache.is_hit(),
            });
        }
        Ok(ServedQuery {
            graph,
            plan: planned.plan,
            cost: planned.cost,
            method: planned.method,
            cache_hit: cache.is_hit(),
            cache,
            planning_time: planned.planning_time,
            outcome,
        })
    }

    /// Serves an already-bound query graph: one clone up front to share
    /// it, then [`Self::serve_shared`]. Callers that already hold an
    /// `Arc<QueryGraph>` (repeated templated serves) should call
    /// `serve_shared` directly and skip the clone entirely.
    pub fn serve_graph(&self, graph: &QueryGraph) -> Result<ServedQuery, ServeError> {
        self.serve_shared(Arc::new(graph.clone()))
    }

    /// Serves SQL text: parse, bind, plan (through the cache), execute.
    /// The freshly bound graph is moved into its `Arc` — no deep clone.
    pub fn serve(&self, sql: &str) -> Result<ServedQuery, ServeError> {
        let stmt = parse_select(sql)?;
        let graph = bind_select(&stmt, self.db.catalog())?;
        self.serve_shared(Arc::new(graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_opt::test_support::{chain_query, with_count, TestDb};
    use hfqo_opt::{GreedyPlanner, RandomPlanner};

    fn session(n: usize, rows: usize) -> (QuerySession, QueryGraph) {
        let fixture = TestDb::chain(n, rows);
        let graph = with_count(chain_query(&fixture, n));
        let session = QuerySession::traditional(fixture.db, fixture.stats);
        (session, graph)
    }

    #[test]
    fn serves_a_graph_end_to_end() {
        let (session, graph) = session(3, 200);
        let served = session.serve_graph(&graph).unwrap();
        assert!(!served.cache_hit);
        assert_eq!(served.cache, CacheOutcome::Miss);
        assert_eq!(served.method, PlannerMethod::DynamicProgramming);
        assert_eq!(served.outcome.rows.len(), 1, "COUNT(*) row");
        served.plan.validate(&graph).unwrap();
        assert!(served.cost > 0.0);
        assert!(served.outcome.stats.work > 0);
    }

    #[test]
    fn second_serve_hits_the_cache_with_identical_results() {
        let (session, graph) = session(4, 200);
        let cold = session.serve_graph(&graph).unwrap();
        let warm = session.serve_graph(&graph).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(warm.cache, CacheOutcome::ExactHit);
        assert_eq!(warm.plan, cold.plan);
        assert_eq!(warm.cost, cold.cost);
        assert_eq!(warm.method, cold.method);
        assert_eq!(warm.outcome.rows, cold.outcome.rows);
        assert_eq!(warm.outcome.stats.work, cold.outcome.stats.work);
        let m = session.cache_metrics();
        assert_eq!((m.hits, m.misses, m.len), (1, 1, 1));
    }

    /// Satellite regression: the shared-`Arc` serve path must produce
    /// output identical to the clone-up-front path — the deep-clone
    /// removal is a pure performance fix.
    #[test]
    fn serve_shared_matches_serve_graph_exactly() {
        let (session, graph) = session(3, 200);
        let via_ref = session.serve_graph(&graph).unwrap();
        let shared = Arc::new(graph.clone());
        let via_arc = session.serve_shared(Arc::clone(&shared)).unwrap();
        assert_eq!(via_arc.plan, via_ref.plan);
        assert_eq!(via_arc.cost, via_ref.cost);
        assert_eq!(via_arc.method, via_ref.method);
        assert_eq!(via_arc.outcome.rows, via_ref.outcome.rows);
        assert_eq!(via_arc.outcome.stats.work, via_ref.outcome.stats.work);
        // The result's graph IS the caller's Arc — not a clone of it.
        assert!(Arc::ptr_eq(&via_arc.graph, &shared));
        // …and with an experience log attached the record shares it too.
        let (mut logged, graph2) = self::session(3, 200);
        let log = Arc::new(ExperienceLog::new(8));
        logged.set_experience_log(Some(Arc::clone(&log)));
        let shared2 = Arc::new(graph2);
        let served = logged.serve_shared(Arc::clone(&shared2)).unwrap();
        assert!(Arc::ptr_eq(&served.graph, &shared2));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn serves_sql_text_through_the_catalog() {
        let (session, _) = session(2, 150);
        // TestDb chains are t0(id, val), t1(id, fk, val).
        let sql = "SELECT COUNT(*) FROM t0 a, t1 b WHERE a.id = b.fk AND a.val < 20";
        let served = session.serve(sql).unwrap();
        assert_eq!(served.outcome.rows.len(), 1);
        // Alias changes normalise to the same fingerprint: serving the
        // renamed text is an exact cache hit.
        let renamed = "SELECT COUNT(*) FROM t0 x, t1 y WHERE x.id = y.fk AND x.val < 20";
        assert_eq!(
            session.serve(renamed).unwrap().cache,
            CacheOutcome::ExactHit
        );
        // A different literal is a different *exact* fingerprint but the
        // same template; its selectivity is within the band, so the plan
        // is shared — this is the templated-workload fix.
        let other = "SELECT COUNT(*) FROM t0 x, t1 y WHERE x.id = y.fk AND x.val < 21";
        let other = session.serve(other).unwrap();
        assert!(other.cache_hit);
        assert_eq!(other.cache, CacheOutcome::TemplateHit);
        // A different *structure* (operator) is a true miss.
        let op = "SELECT COUNT(*) FROM t0 x, t1 y WHERE x.id = y.fk AND x.val >= 21";
        assert_eq!(session.serve(op).unwrap().cache, CacheOutcome::Miss);
    }

    #[test]
    fn errors_surface_per_stage() {
        let (session, _) = session(2, 100);
        assert!(matches!(
            session.serve("SELEC nope"),
            Err(ServeError::Parse(_))
        ));
        assert!(matches!(
            session.serve("SELECT COUNT(*) FROM missing m"),
            Err(ServeError::Bind(_))
        ));
        let empty = QueryGraph::new(vec![], vec![], vec![], vec![], vec![]);
        assert!(matches!(
            session.serve_graph(&empty),
            Err(ServeError::Plan(OptError::EmptyQuery))
        ));
        // A planner error abandons the single-flight; the next probe of
        // the same graph must plan again rather than hang or hit.
        assert!(matches!(
            session.serve_graph(&empty),
            Err(ServeError::Plan(OptError::EmptyQuery))
        ));
        // Budget exhaustion surfaces as an execution error.
        let (tight, graph) = {
            let fixture = TestDb::chain(3, 300);
            let graph = with_count(chain_query(&fixture, 3));
            (
                QuerySession::traditional(fixture.db, fixture.stats)
                    .with_exec_config(ExecConfig::with_budget(10)),
                graph,
            )
        };
        assert!(matches!(
            tight.serve_graph(&graph),
            Err(ServeError::Exec(ExecError::BudgetExceeded { .. }))
        ));
    }

    #[test]
    fn set_planner_invalidates_and_reattributes() {
        let (mut session, graph) = session(3, 150);
        let dp = session.serve_graph(&graph).unwrap();
        assert_eq!(dp.method, PlannerMethod::DynamicProgramming);
        session.set_planner(Box::new(GreedyPlanner));
        assert_eq!(session.planner_name(), "greedy");
        let greedy = session.serve_graph(&graph).unwrap();
        assert!(!greedy.cache_hit, "planner swap invalidates the cache");
        assert_eq!(greedy.method, PlannerMethod::Greedy);
        assert_eq!(
            greedy.outcome.rows, dp.outcome.rows,
            "strategies agree on results"
        );
        session.set_planner(Box::new(RandomPlanner::new(1)));
        let random = session.serve_graph(&graph).unwrap();
        assert_eq!(random.method, PlannerMethod::Random);
        assert_eq!(random.outcome.rows, dp.outcome.rows);
    }

    #[test]
    fn rebuild_stats_invalidates_the_cache() {
        let (mut session, graph) = session(3, 150);
        let _ = session.serve_graph(&graph).unwrap();
        assert!(session.serve_graph(&graph).unwrap().cache_hit);
        session.rebuild_stats();
        let after = session.serve_graph(&graph).unwrap();
        assert!(!after.cache_hit, "stats rebuild must invalidate");
        assert_eq!(session.cache_metrics().invalidations, 1);
    }

    #[test]
    fn refresh_after_mutation_rebuilds_indexes_stats_and_cache() {
        use hfqo_catalog::TableId;
        use hfqo_storage::Value;
        let (mut session, graph) = session(2, 100);
        let _ = session.serve_graph(&graph).unwrap();
        assert!(session.serve_graph(&graph).unwrap().cache_hit);
        let t = TableId(0);
        let before = session.stats().table(t).row_count;
        // TestDb chains: t0(id, val).
        let next_id = session.db().table(t).unwrap().row_count() as i64;
        session
            .db_mut()
            .table_mut(t)
            .unwrap()
            .append_row(&[Value::Int(next_id), Value::Int(5)])
            .unwrap();
        session.refresh_after_mutation().unwrap();
        assert_eq!(session.stats().table(t).row_count, before + 1.0);
        let after = session.serve_graph(&graph).unwrap();
        assert!(!after.cache_hit, "mutation refresh must invalidate");
        assert_eq!(session.cache_metrics().invalidations, 1);
    }

    #[test]
    fn plan_returns_outcome_without_executing() {
        let (session, graph) = session(3, 150);
        let (first, outcome_a) = session.plan(&graph).unwrap();
        let (second, outcome_b) = session.plan(&graph).unwrap();
        assert_eq!(outcome_a, CacheOutcome::Miss);
        assert_eq!(outcome_b, CacheOutcome::ExactHit);
        assert!(!outcome_a.is_hit());
        assert!(outcome_b.is_hit());
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.method, second.method);
    }

    /// Satellite regression: `with_cache_capacity` used to rebuild the
    /// cache from scratch, silently zeroing the accumulated metrics and
    /// resetting the invalidation epoch (so a pre-rebuild in-flight
    /// plan could slip past the epoch fence). Both must carry across.
    #[test]
    fn with_cache_capacity_carries_metrics_and_epoch() {
        let (session, graph) = session(3, 150);
        let _ = session.serve_graph(&graph).unwrap();
        let _ = session.serve_graph(&graph).unwrap();
        session.invalidate_cache();
        let before = session.cache_metrics();
        assert_eq!(
            (before.hits, before.misses, before.invalidations),
            (1, 1, 1)
        );
        let session = session.with_cache_capacity(64);
        let after = session.cache_metrics();
        assert_eq!(after.hits, before.hits, "hits survive the rebuild");
        assert_eq!(after.misses, before.misses, "misses survive the rebuild");
        assert_eq!(
            after.invalidations,
            before.invalidations + 1,
            "the rebuild itself counts as an invalidation"
        );
        assert_eq!(after.capacity, 64);
        assert_eq!(after.len, 0, "entries do not survive");
        // The epoch advanced, so the session keeps serving correctly.
        assert_eq!(
            session.serve_graph(&graph).unwrap().cache,
            CacheOutcome::Miss
        );
        assert!(session.serve_graph(&graph).unwrap().cache_hit);
    }
}
