//! The query-serving session.
//!
//! [`QuerySession`] owns the whole serving world — database (with its
//! catalog), statistics, cost parameters, a [`Planner`], and the plan
//! cache — and runs the full pipeline as one call:
//!
//! ```text
//!   serve(sql)
//!     ├─ parse      hfqo_sql::parse_select
//!     ├─ bind       hfqo_query::bind_select          → QueryGraph
//!     ├─ plan       fingerprint → PlanCache ──hit──→ PhysicalPlan
//!     │                        └──miss──→ Planner::plan → insert
//!     └─ execute    hfqo_exec::execute (vectorized)  → rows + stats
//! ```
//!
//! Serving is concurrent: `serve` takes `&self`, the owned world is
//! read-only (`Database`/`StatsCatalog` are `Sync`), and the cache sits
//! behind a mutex whose critical sections cover only the probe and the
//! insert — planning and execution run outside the lock. N threads can
//! therefore serve against one session; two threads racing on the same
//! cold fingerprint may both plan it (no single-flight), and last
//! insert wins, which is harmless because planning is deterministic for
//! every strategy but [`hfqo_opt::RandomPlanner`].
//!
//! Mutation is explicit and exclusive: [`QuerySession::rebuild_stats`]
//! re-scans the owned database and invalidates the cache (plans chosen
//! under stale statistics may no longer be the ones the planner would
//! pick), and [`QuerySession::set_planner`] swaps the strategy, also
//! invalidating (cached plans would otherwise be attributed to the
//! wrong strategy). Because planning happens outside the cache lock, an
//! invalidation can race an in-flight plan; inserts are epoch-guarded
//! (see [`PlanCache::insert_if_current`]), so a plan produced under a
//! superseded planner or statistics epoch is served once but never
//! cached.
//!
//! [`PlanCache::insert_if_current`]: crate::cache::PlanCache::insert_if_current

use crate::cache::{CacheMetrics, CachedPlan, PlanCache, DEFAULT_CACHE_CAPACITY};
use crate::experience::{Experience, ExperienceLog};
use hfqo_catalog::Catalog;
use hfqo_cost::CostParams;
use hfqo_exec::{execute, ExecConfig, ExecError, ExecOutcome};
use hfqo_opt::{OptError, PlannedQuery, Planner, PlannerContext, PlannerMethod};
use hfqo_query::{bind_select, fingerprint, tree_to_actions, PhysicalPlan, QueryError, QueryGraph};
use hfqo_sql::{parse_select, ParseError};
use hfqo_stats::{build_database_stats, StatsCatalog};
use hfqo_storage::Database;
use std::fmt;
use std::sync::Mutex;
use std::time::Instant;

/// Everything that can go wrong between SQL text and result rows.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The SQL text did not parse.
    Parse(ParseError),
    /// The statement did not bind against the catalog.
    Bind(QueryError),
    /// The planner rejected the query.
    Plan(OptError),
    /// Execution failed (budget, bad plan, …).
    Exec(ExecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse(e) => write!(f, "parse error: {e}"),
            Self::Bind(e) => write!(f, "bind error: {e}"),
            Self::Plan(e) => write!(f, "planning error: {e}"),
            Self::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> Self {
        Self::Parse(e)
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        Self::Bind(e)
    }
}

impl From<OptError> for ServeError {
    fn from(e: OptError) -> Self {
        Self::Plan(e)
    }
}

impl From<ExecError> for ServeError {
    fn from(e: ExecError) -> Self {
        Self::Exec(e)
    }
}

/// One served query: the bound graph, the plan that ran (and where it
/// came from), and the execution outcome.
#[derive(Debug, Clone)]
pub struct ServedQuery {
    /// The bound query graph (shared with the experience log when one
    /// is attached, so recording adds no extra deep clone).
    pub graph: std::sync::Arc<QueryGraph>,
    /// The physical plan that executed.
    pub plan: PhysicalPlan,
    /// Estimated cost of the plan (at planning time).
    pub cost: f64,
    /// Which strategy produced the plan.
    pub method: PlannerMethod,
    /// Whether the plan came from the cache.
    pub cache_hit: bool,
    /// Planning wall-clock: the cache lookup on a hit, the planner run
    /// on a miss.
    pub planning_time: std::time::Duration,
    /// Rows, schema, and execution statistics.
    pub outcome: ExecOutcome,
}

/// The concurrent query-serving session. See the [module docs](self).
pub struct QuerySession {
    db: Database,
    stats: StatsCatalog,
    params: CostParams,
    planner: Box<dyn Planner>,
    cache: Mutex<PlanCache>,
    exec_config: ExecConfig,
    /// When attached, every executed query is recorded for online
    /// learning (see [`crate::online`]). Recording never influences
    /// planning or execution — with no consumer draining the log,
    /// serving output is identical to an unattached session.
    experience: Option<std::sync::Arc<ExperienceLog>>,
}

// N serving threads share one `&QuerySession`: the owned world is plain
// read-only data, the planner is `Send + Sync` by trait bound, and the
// cache is mutex-guarded. The assertion breaks the build if a
// non-thread-safe member ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QuerySession>();
};

impl QuerySession {
    /// A session owning `db` and `stats`, planning with `planner`.
    pub fn new(db: Database, stats: StatsCatalog, planner: Box<dyn Planner>) -> Self {
        Self {
            db,
            stats,
            params: CostParams::postgres_like(),
            planner,
            cache: Mutex::new(PlanCache::new(DEFAULT_CACHE_CAPACITY)),
            exec_config: ExecConfig::default(),
            experience: None,
        }
    }

    /// A session with the traditional DP/greedy expert planner.
    pub fn traditional(db: Database, stats: StatsCatalog) -> Self {
        Self::new(db, stats, Box::new(hfqo_opt::TraditionalPlanner::new()))
    }

    /// Overrides the execution configuration (builder style).
    pub fn with_exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Overrides the cost parameters (builder style).
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the plan-cache capacity (builder style; clears the
    /// cache).
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        Self {
            cache: Mutex::new(PlanCache::new(capacity)),
            ..self
        }
    }

    /// The owned database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the owned database — for loading data or
    /// rebuilding indexes between serving phases. Data changes leave
    /// cached plans *valid* (plans are data-independent) but the
    /// statistics stale; call [`Self::rebuild_stats`] afterwards to
    /// refresh them and invalidate the cache.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        self.db.catalog()
    }

    /// The current statistics.
    pub fn stats(&self) -> &StatsCatalog {
        &self.stats
    }

    /// The active planner's strategy name.
    pub fn planner_name(&self) -> &'static str {
        self.planner.name()
    }

    /// Snapshot of the plan-cache counters.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.lock().expect("plan cache poisoned").metrics()
    }

    /// Drops every cached plan.
    pub fn invalidate_cache(&self) {
        self.cache.lock().expect("plan cache poisoned").invalidate();
    }

    /// Swaps the planning strategy and invalidates the cache (cached
    /// plans belong to the previous strategy).
    pub fn set_planner(&mut self, planner: Box<dyn Planner>) {
        self.planner = planner;
        self.invalidate_cache();
    }

    /// Attaches (or detaches, with `None`) an experience log: every
    /// subsequently executed query is recorded for online learning.
    pub fn set_experience_log(&mut self, log: Option<std::sync::Arc<ExperienceLog>>) {
        self.experience = log;
    }

    /// Attaches an experience log (builder style).
    pub fn with_experience_log(mut self, log: std::sync::Arc<ExperienceLog>) -> Self {
        self.experience = Some(log);
        self
    }

    /// The attached experience log, if any.
    pub fn experience_log(&self) -> Option<&std::sync::Arc<ExperienceLog>> {
        self.experience.as_ref()
    }

    /// Re-scans the owned database into fresh statistics and
    /// invalidates the plan cache: plans chosen under the old estimates
    /// may no longer be the planner's choice.
    pub fn rebuild_stats(&mut self) {
        self.stats = build_database_stats(&self.db);
        self.invalidate_cache();
    }

    /// Plans `graph`, going through the cache. Returns the planned
    /// query and whether it was a cache hit. On a hit the
    /// `planning_time` is the lookup's wall-clock.
    pub fn plan(&self, graph: &QueryGraph) -> Result<(PlannedQuery, bool), ServeError> {
        let key = fingerprint(graph);
        let start = Instant::now();
        // The lock covers only the O(1) probe (the entry is behind an
        // `Arc`); the plan-tree clone for the caller happens after the
        // lock is released. The epoch is captured in the same critical
        // section so a miss can detect invalidations that race the
        // planning below.
        let (hit, epoch) = {
            let mut cache = self.cache.lock().expect("plan cache poisoned");
            (cache.get(key), cache.epoch())
        };
        if let Some(hit) = hit {
            return Ok((
                PlannedQuery {
                    plan: hit.plan.clone(),
                    cost: hit.cost,
                    planning_time: start.elapsed(),
                    method: hit.method,
                },
                true,
            ));
        }
        // Plan outside the lock: misses on distinct queries proceed in
        // parallel; a race on the same query plans twice, last insert
        // wins. An invalidation racing the planning (stats rebuild,
        // planner swap, online policy swap) bumps the cache epoch, so
        // the superseded plan is served once but never cached — a
        // stale generation's plan must not resurrect as cache hits.
        let ctx =
            PlannerContext::new(self.db.catalog(), &self.stats).with_params(self.params.clone());
        let planned = self.planner.plan(&ctx, graph)?;
        let entry = std::sync::Arc::new(CachedPlan {
            plan: planned.plan.clone(),
            cost: planned.cost,
            method: planned.method,
        });
        self.cache
            .lock()
            .expect("plan cache poisoned")
            .insert_if_current(key, entry, epoch);
        Ok((planned, false))
    }

    /// Serves an already-bound query graph: plan (through the cache)
    /// and execute.
    pub fn serve_graph(&self, graph: &QueryGraph) -> Result<ServedQuery, ServeError> {
        let (planned, cache_hit) = self.plan(graph)?;
        let outcome = execute(&self.db, graph, &planned.plan, self.exec_config)?;
        // One clone behind an `Arc`, shared by the result and the
        // experience record — recording must not add hot-path work.
        let graph = std::sync::Arc::new(graph.clone());
        if let Some(log) = &self.experience {
            // The join decisions are derived from the executed plan's
            // tree skeleton, so cache hits and misses — and any
            // planning strategy — leave the same kind of record.
            log.push(Experience {
                graph: std::sync::Arc::clone(&graph),
                decisions: tree_to_actions(&planned.plan.root.join_tree(), graph.relation_count()),
                executed_work: outcome.stats.work,
                elapsed: outcome.stats.elapsed,
                cost: planned.cost,
                method: planned.method,
                cache_hit,
            });
        }
        Ok(ServedQuery {
            graph,
            plan: planned.plan,
            cost: planned.cost,
            method: planned.method,
            cache_hit,
            planning_time: planned.planning_time,
            outcome,
        })
    }

    /// Serves SQL text: parse, bind, plan (through the cache), execute.
    pub fn serve(&self, sql: &str) -> Result<ServedQuery, ServeError> {
        let stmt = parse_select(sql)?;
        let graph = bind_select(&stmt, self.db.catalog())?;
        self.serve_graph(&graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_opt::test_support::{chain_query, with_count, TestDb};
    use hfqo_opt::{GreedyPlanner, RandomPlanner};

    fn session(n: usize, rows: usize) -> (QuerySession, QueryGraph) {
        let fixture = TestDb::chain(n, rows);
        let graph = with_count(chain_query(&fixture, n));
        let session = QuerySession::traditional(fixture.db, fixture.stats);
        (session, graph)
    }

    #[test]
    fn serves_a_graph_end_to_end() {
        let (session, graph) = session(3, 200);
        let served = session.serve_graph(&graph).unwrap();
        assert!(!served.cache_hit);
        assert_eq!(served.method, PlannerMethod::DynamicProgramming);
        assert_eq!(served.outcome.rows.len(), 1, "COUNT(*) row");
        served.plan.validate(&graph).unwrap();
        assert!(served.cost > 0.0);
        assert!(served.outcome.stats.work > 0);
    }

    #[test]
    fn second_serve_hits_the_cache_with_identical_results() {
        let (session, graph) = session(4, 200);
        let cold = session.serve_graph(&graph).unwrap();
        let warm = session.serve_graph(&graph).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(warm.plan, cold.plan);
        assert_eq!(warm.cost, cold.cost);
        assert_eq!(warm.method, cold.method);
        assert_eq!(warm.outcome.rows, cold.outcome.rows);
        assert_eq!(warm.outcome.stats.work, cold.outcome.stats.work);
        let m = session.cache_metrics();
        assert_eq!((m.hits, m.misses, m.len), (1, 1, 1));
    }

    #[test]
    fn serves_sql_text_through_the_catalog() {
        let (session, _) = session(2, 150);
        // TestDb chains are t0(id, val), t1(id, fk, val).
        let sql = "SELECT COUNT(*) FROM t0 a, t1 b WHERE a.id = b.fk AND a.val < 20";
        let served = session.serve(sql).unwrap();
        assert_eq!(served.outcome.rows.len(), 1);
        // Alias changes normalise to the same fingerprint: serving the
        // renamed text is a cache hit.
        let renamed = "SELECT COUNT(*) FROM t0 x, t1 y WHERE x.id = y.fk AND x.val < 20";
        assert!(session.serve(renamed).unwrap().cache_hit);
        // A different literal is a different fingerprint.
        let other = "SELECT COUNT(*) FROM t0 x, t1 y WHERE x.id = y.fk AND x.val < 21";
        assert!(!session.serve(other).unwrap().cache_hit);
    }

    #[test]
    fn errors_surface_per_stage() {
        let (session, _) = session(2, 100);
        assert!(matches!(
            session.serve("SELEC nope"),
            Err(ServeError::Parse(_))
        ));
        assert!(matches!(
            session.serve("SELECT COUNT(*) FROM missing m"),
            Err(ServeError::Bind(_))
        ));
        let empty = QueryGraph::new(vec![], vec![], vec![], vec![], vec![]);
        assert!(matches!(
            session.serve_graph(&empty),
            Err(ServeError::Plan(OptError::EmptyQuery))
        ));
        // Budget exhaustion surfaces as an execution error.
        let (tight, graph) = {
            let fixture = TestDb::chain(3, 300);
            let graph = with_count(chain_query(&fixture, 3));
            (
                QuerySession::traditional(fixture.db, fixture.stats)
                    .with_exec_config(ExecConfig::with_budget(10)),
                graph,
            )
        };
        assert!(matches!(
            tight.serve_graph(&graph),
            Err(ServeError::Exec(ExecError::BudgetExceeded { .. }))
        ));
    }

    #[test]
    fn set_planner_invalidates_and_reattributes() {
        let (mut session, graph) = session(3, 150);
        let dp = session.serve_graph(&graph).unwrap();
        assert_eq!(dp.method, PlannerMethod::DynamicProgramming);
        session.set_planner(Box::new(GreedyPlanner));
        assert_eq!(session.planner_name(), "greedy");
        let greedy = session.serve_graph(&graph).unwrap();
        assert!(!greedy.cache_hit, "planner swap invalidates the cache");
        assert_eq!(greedy.method, PlannerMethod::Greedy);
        assert_eq!(
            greedy.outcome.rows, dp.outcome.rows,
            "strategies agree on results"
        );
        session.set_planner(Box::new(RandomPlanner::new(1)));
        let random = session.serve_graph(&graph).unwrap();
        assert_eq!(random.method, PlannerMethod::Random);
        assert_eq!(random.outcome.rows, dp.outcome.rows);
    }

    #[test]
    fn rebuild_stats_invalidates_the_cache() {
        let (mut session, graph) = session(3, 150);
        let _ = session.serve_graph(&graph).unwrap();
        assert!(session.serve_graph(&graph).unwrap().cache_hit);
        session.rebuild_stats();
        let after = session.serve_graph(&graph).unwrap();
        assert!(!after.cache_hit, "stats rebuild must invalidate");
        assert_eq!(session.cache_metrics().invalidations, 1);
    }

    #[test]
    fn plan_returns_hit_flag_without_executing() {
        let (session, graph) = session(3, 150);
        let (first, hit_a) = session.plan(&graph).unwrap();
        let (second, hit_b) = session.plan(&graph).unwrap();
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(first.plan, second.plan);
        assert_eq!(first.method, second.method);
    }
}
