//! The sharded, template-keyed plan cache.
//!
//! Keys are two-part (see `hfqo_query::fingerprint`): a
//! [`TemplateFingerprint`] groups every parameterization of one query
//! template into a single entry, and the exact [`QueryFingerprint`] is
//! kept as a fast path *within* that entry. A template entry holds a
//! small set of plan *buckets*; each bucket records the
//! stats-estimated selectivity signature of the parameter vector it
//! was planned for, and a probe whose current parameters' estimated
//! selectivities deviate outside a configurable band from every bucket
//! re-plans into a new bucket instead of serving a mismatched plan
//! (the plan that is good for `id = rare_value` may be terrible for
//! `id = common_value`).
//!
//! ## Concurrency
//!
//! The cache is internally synchronized (`probe`/`insert` take
//! `&self`): entries live in `shards` power-of-two shards selected by
//! template-fingerprint bits, each behind its own mutex, so N serving
//! threads only contend when they touch the same shard — not on one
//! global lock. Metrics are kept per shard and aggregated by
//! [`PlanCache::metrics`].
//!
//! Cold misses are **single-flighted per shard**: the first thread to
//! miss a key registers an in-flight marker and plans; concurrent
//! threads probing the same exact key wait on the flight and then
//! re-probe, so a racing burst on one cold fingerprint burns exactly
//! one planner run. If the leader fails (planner error, stale epoch),
//! waiters wake, miss again, and one of them becomes the next leader.
//! Should two planner runs for one key ever still race (e.g. a caller
//! bypassing the flight guard), the insert is last-write-wins and the
//! race is *observable*: it increments the `duplicate_plans` counter.
//!
//! ## Invalidation epochs
//!
//! Invalidation must stay atomic across shards: a single global
//! [`PlanCache::epoch`] counter is bumped *before* the shards are
//! swept, and [`PlanCache::insert_if_current`] rejects any plan whose
//! probe-time epoch is stale. A plan produced under a superseded
//! planner/statistics generation is therefore served once but can
//! never resurrect as cache hits, no matter which shard it lands in.

use hfqo_opt::PlannerMethod;
use hfqo_query::{PhysicalPlan, QueryFingerprint, TemplateFingerprint};
use hfqo_sync::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached plan: everything the session needs to answer a hit without
/// re-planning.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The finished physical plan.
    pub plan: PhysicalPlan,
    /// Estimated cost at planning time.
    pub cost: f64,
    /// Which strategy produced it.
    pub method: PlannerMethod,
    /// Stats-estimated selectivity of each selection slot's literal at
    /// planning time, in slot order — what probes compare against the
    /// current parameters to decide hit vs re-plan.
    pub selectivities: Vec<f64>,
}

/// The cache's two-part key: the template the entry is grouped under
/// and the exact fingerprint used as the intra-template fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Structure-only fingerprint: selects the template entry (and the
    /// shard).
    pub template: TemplateFingerprint,
    /// Value-inclusive fingerprint: the exact fast path within the
    /// entry.
    pub exact: QueryFingerprint,
}

impl PlanKey {
    /// Computes both fingerprints of `graph`.
    pub fn of(graph: &hfqo_query::QueryGraph) -> Self {
        let (template, _) = hfqo_query::template_fingerprint(graph);
        Self {
            template,
            exact: hfqo_query::fingerprint(graph),
        }
    }
}

/// How a probe was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The exact fingerprint was already mapped: served without even
    /// scoring selectivities.
    ExactHit,
    /// First sight of these constants, but an existing bucket's
    /// selectivity signature is within the band: the template's plan is
    /// shared.
    TemplateHit,
    /// The template is cached but every bucket's signature is outside
    /// the band: the caller must plan (into a new bucket).
    Replan,
    /// The template itself is not cached: the caller must plan.
    Miss,
}

impl CacheOutcome {
    /// Whether a cached plan was served (no planner run).
    pub fn is_hit(self) -> bool {
        matches!(self, Self::ExactHit | Self::TemplateHit)
    }

    /// Whether the probe found the template at all — hits plus
    /// intra-template re-plans. This is the "cache sharing" rate's
    /// numerator: only a [`CacheOutcome::Miss`] means the workload's
    /// template structure was new to the cache.
    pub fn shares_template(self) -> bool {
        !matches!(self, Self::Miss)
    }
}

/// Cache observability counters, aggregated across shards (monotonic
/// over the cache's lifetime and carried across capacity rebuilds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetrics {
    /// Probe hits (`exact_hits + template_hits`).
    pub hits: u64,
    /// Hits through the exact-fingerprint fast path.
    pub exact_hits: u64,
    /// Hits through selectivity-band matching (new constants served by
    /// an existing bucket).
    pub template_hits: u64,
    /// Probes that found the template but re-planned because the
    /// current parameters' selectivities fell outside every bucket's
    /// band.
    pub replans: u64,
    /// Probes that found no template entry.
    pub misses: u64,
    /// Template entries evicted by the capacity bound.
    pub evictions: u64,
    /// Whole-cache invalidations (stats rebuilds, planner swaps,
    /// capacity rebuilds, explicit clears). Equal to the epoch.
    pub invalidations: u64,
    /// Inserts rejected because an invalidation happened between the
    /// probe and the insert (the plan was produced under a superseded
    /// planner/statistics epoch).
    pub stale_inserts: u64,
    /// Inserts that found their exact fingerprint already cached: two
    /// threads both planned the same query (last write wins). With
    /// single-flight this stays 0; a nonzero value makes a
    /// double-planning race observable instead of silent.
    pub duplicate_plans: u64,
    /// Probes that waited on another thread's in-flight planner run
    /// instead of planning the same key themselves.
    pub flight_waits: u64,
    /// Template entries currently cached.
    pub len: usize,
    /// Plan buckets currently cached (≥ `len`; a template entry holds
    /// one bucket per distinct selectivity regime).
    pub plans: usize,
    /// Configured capacity (template entries, across all shards).
    pub capacity: usize,
    /// Number of shards.
    pub shards: usize,
}

impl CacheMetrics {
    /// Fraction of probes that found their template (hits plus
    /// intra-template re-plans) — the parameterized-sharing rate.
    /// `1.0` when nothing has been probed.
    pub fn sharing_rate(&self) -> f64 {
        let probes = self.hits + self.replans + self.misses;
        if probes == 0 {
            return 1.0;
        }
        (self.hits + self.replans) as f64 / probes as f64
    }
}

/// Cache geometry and re-plan policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum template entries across all shards (minimum 1).
    pub capacity: usize,
    /// Shard count; rounded up to the next power of two (minimum 1).
    pub shards: usize,
    /// Re-plan band: a bucket matches when, for every selection slot,
    /// the ratio between the current and recorded selectivity estimate
    /// is at most this factor (clamped to ≥ 1). Larger bands share
    /// more aggressively; `1.0` shares only identical signatures.
    pub selectivity_band: f64,
    /// Maximum plan buckets per template entry (minimum 1). When full,
    /// the oldest bucket is overwritten round-robin.
    pub plans_per_template: usize,
}

/// Default capacity: comfortably above the JOB suite's 113 distinct
/// templates.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

/// Default shard count: enough to keep 64 serving threads from
/// serializing on one mutex, small enough that per-shard capacity stays
/// meaningful at the default 128-entry bound.
pub const DEFAULT_CACHE_SHARDS: usize = 16;

/// Default selectivity band factor (4×): parameters whose estimated
/// selectivity is within 4× of a bucket's recorded signature share its
/// plan; beyond that the optimal join order is likely different and the
/// probe re-plans.
pub const DEFAULT_SELECTIVITY_BAND: f64 = 4.0;

/// Default bucket bound per template entry.
pub const DEFAULT_PLANS_PER_TEMPLATE: usize = 8;

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: DEFAULT_CACHE_CAPACITY,
            shards: DEFAULT_CACHE_SHARDS,
            selectivity_band: DEFAULT_SELECTIVITY_BAND,
            plans_per_template: DEFAULT_PLANS_PER_TEMPLATE,
        }
    }
}

impl CacheConfig {
    fn normalized(mut self) -> Self {
        self.capacity = self.capacity.max(1);
        self.shards = self.shards.max(1).next_power_of_two();
        self.selectivity_band = if self.selectivity_band.is_finite() {
            self.selectivity_band.max(1.0)
        } else {
            f64::INFINITY
        };
        self.plans_per_template = self.plans_per_template.max(1);
        self
    }
}

/// One plan bucket: a plan plus the selectivity signature it was
/// planned for.
#[derive(Debug)]
struct Bucket {
    cached: Arc<CachedPlan>,
}

/// One template's worth of cached plans.
#[derive(Debug, Default)]
struct TemplateEntry {
    /// Exact fingerprint → bucket index: the fast path that skips
    /// selectivity scoring for repeated exact queries.
    exact: HashMap<QueryFingerprint, usize>,
    /// Plan buckets, one per distinct selectivity regime seen.
    buckets: Vec<Bucket>,
    /// Round-robin victim cursor once `buckets` is full.
    next_victim: usize,
    /// Last-use stamp from the shard's monotonic clock.
    used: u64,
}

/// A cold-miss flight: the leader plans, waiters block here until the
/// leader's insert (or failure) completes the flight.
#[derive(Debug)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            done: Mutex::new("serve.cache.flight", false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            done = self.cv.wait(done);
        }
    }

    fn complete(&self) {
        *self.done.lock() = true;
        self.cv.notify_all();
    }
}

/// Per-shard counters; folded into [`CacheMetrics`] on demand.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    exact_hits: u64,
    template_hits: u64,
    replans: u64,
    misses: u64,
    evictions: u64,
    stale_inserts: u64,
    duplicate_plans: u64,
    flight_waits: u64,
}

impl Counters {
    fn add(&mut self, other: &Counters) {
        self.exact_hits += other.exact_hits;
        self.template_hits += other.template_hits;
        self.replans += other.replans;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.stale_inserts += other.stale_inserts;
        self.duplicate_plans += other.duplicate_plans;
        self.flight_waits += other.flight_waits;
    }
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<TemplateFingerprint, TemplateEntry>,
    inflight: HashMap<QueryFingerprint, Arc<Flight>>,
    clock: u64,
    counters: Counters,
}

/// Completes (and unregisters) a cold-miss flight when dropped, whether
/// the leader inserted a plan, hit a planner error, or panicked —
/// waiters must never hang on a dead leader.
#[derive(Debug)]
pub struct FlightGuard<'a> {
    cache: &'a PlanCache,
    shard: usize,
    key: QueryFingerprint,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let flight = {
            let mut shard = self.cache.lock_shard(self.shard);
            shard.inflight.remove(&self.key)
        };
        if let Some(flight) = flight {
            flight.complete();
        }
    }
}

/// A probe's answer: either a plan to serve, or the obligation to plan
/// (as the single-flight leader for this key).
#[derive(Debug)]
pub enum Probe<'a> {
    /// A cached plan was served.
    Hit {
        /// The bucket's plan (O(1) `Arc` clone; the plan tree is cloned
        /// outside the shard lock by the caller).
        plan: Arc<CachedPlan>,
        /// [`CacheOutcome::ExactHit`] or [`CacheOutcome::TemplateHit`].
        outcome: CacheOutcome,
    },
    /// The caller is the planning leader for this key: plan, then
    /// [`PlanCache::insert_if_current`] with `epoch`, then drop the
    /// guard (dropping without inserting — e.g. on planner error —
    /// releases the waiters to retry).
    Plan {
        /// Completes the flight on drop.
        guard: FlightGuard<'a>,
        /// Epoch captured at probe time; pass to `insert_if_current`.
        epoch: u64,
        /// [`CacheOutcome::Miss`] or [`CacheOutcome::Replan`].
        outcome: CacheOutcome,
    },
}

/// What the entry lookup found, separated from counter updates to keep
/// the borrow of the entry map short.
enum Lookup {
    Exact(Arc<CachedPlan>),
    Band(Arc<CachedPlan>),
    OutOfBand,
    NoTemplate,
}

/// The sharded, template-keyed plan cache. See the [module docs](self).
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard template-entry bound.
    shard_capacity: usize,
    /// Global invalidation epoch; bumped before the shard sweep so a
    /// stale insert can never land in an already-swept shard.
    ///
    /// All accesses are `Relaxed`: every epoch read that feeds a
    /// decision (`probe` capture, `insert_if_current` compare) happens
    /// under the shard mutex, and `invalidate` locks every shard after
    /// the bump. The mutex's release→acquire edges order the bump
    /// against any insert that locks a shard after its sweep; an insert
    /// that locks a shard *before* its sweep may read the pre-bump
    /// epoch, land, and then be swept — the same outcome `SeqCst` gave.
    /// (Was `SeqCst`; downgraded in the PR 8 ordering audit. Regression
    /// test: `invalidate_racing_inserts_never_resurrects_plans`.)
    epoch: AtomicU64,
    /// Counters carried over from before a capacity rebuild.
    base: Counters,
    config: CacheConfig,
}

impl PlanCache {
    /// An empty cache bounded at `capacity` template entries (minimum
    /// 1), with default sharding and re-plan policy.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(CacheConfig {
            capacity,
            ..CacheConfig::default()
        })
    }

    /// An empty cache with explicit geometry and re-plan policy.
    pub fn with_config(config: CacheConfig) -> Self {
        let config = config.normalized();
        let shards = (0..config.shards)
            .map(|_| Mutex::new("serve.cache.shard", Shard::default()))
            .collect();
        Self {
            shards,
            shard_capacity: config.capacity.div_ceil(config.shards).max(1),
            epoch: AtomicU64::new(0),
            base: Counters::default(),
            config,
        }
    }

    /// The active configuration (normalized).
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Rebuilds the cache with `config`, **carrying the accumulated
    /// metrics and the invalidation epoch across**: entries are
    /// dropped (counted as one invalidation, so the epoch also fences
    /// any in-flight plans from before the rebuild), but counters never
    /// silently reset.
    pub fn rebuilt_with(self, config: CacheConfig) -> Self {
        let mut base = self.base;
        for shard in &self.shards {
            base.add(&self.lock_shard_of(shard).counters);
        }
        // `self` is owned here, so no other thread can touch the epoch.
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        let mut next = Self::with_config(config);
        next.base = base;
        next.epoch = AtomicU64::new(epoch);
        next
    }

    /// [`Self::rebuilt_with`] changing only the capacity.
    pub fn rebuilt_with_capacity(self, capacity: usize) -> Self {
        let config = CacheConfig {
            capacity,
            ..self.config
        };
        self.rebuilt_with(config)
    }

    fn shard_index(&self, template: TemplateFingerprint) -> usize {
        // Power-of-two shard count: select by fingerprint bits, folding
        // both 64-bit lanes so either lane's entropy suffices.
        let folded = (template.0 as u64) ^ ((template.0 >> 64) as u64);
        (folded as usize) & (self.shards.len() - 1)
    }

    fn lock_shard(&self, index: usize) -> MutexGuard<'_, Shard> {
        self.lock_shard_of(&self.shards[index])
    }

    fn lock_shard_of<'a>(&self, shard: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
        // Poison panics with the site label via hfqo_sync's unified path.
        shard.lock()
    }

    /// The current invalidation epoch. Callers that plan outside the
    /// shard locks capture the epoch at probe time (it is part of
    /// [`Probe::Plan`]) and pass it to [`Self::insert_if_current`]; an
    /// invalidation in between bumps the epoch, so the superseded plan
    /// is discarded instead of resurrecting into the fresh cache.
    pub fn epoch(&self) -> u64 {
        // Relaxed: see the `epoch` field docs — the shard mutexes carry
        // the synchronization; this value is only compared under them.
        self.epoch.load(Ordering::Relaxed)
    }

    /// Probes for `key`, with `current` the stats-estimated selectivity
    /// signature of the query's parameter vector (slot order, see
    /// `hfqo_stats::selection_selectivities`).
    ///
    /// Returns either a plan to serve or a [`Probe::Plan`] obligation.
    /// When another thread is already planning the same exact key, the
    /// call blocks until that flight completes and then re-probes
    /// (single-flight; see the [module docs](self)).
    pub fn probe(&self, key: &PlanKey, current: &[f64]) -> Probe<'_> {
        let si = self.shard_index(key.template);
        loop {
            let mut shard = self.lock_shard(si);
            shard.clock += 1;
            let clock = shard.clock;
            let band = self.config.selectivity_band;
            let lookup = match shard.entries.get_mut(&key.template) {
                None => Lookup::NoTemplate,
                Some(entry) => {
                    entry.used = clock;
                    if let Some(&i) = entry.exact.get(&key.exact) {
                        Lookup::Exact(Arc::clone(&entry.buckets[i].cached))
                    } else if let Some(i) = entry
                        .buckets
                        .iter()
                        .position(|b| within_band(current, &b.cached.selectivities, band))
                    {
                        // Pin the fast path so these constants skip
                        // selectivity scoring from now on.
                        entry.exact.insert(key.exact, i);
                        Lookup::Band(Arc::clone(&entry.buckets[i].cached))
                    } else {
                        Lookup::OutOfBand
                    }
                }
            };
            let outcome = match lookup {
                Lookup::Exact(plan) => {
                    shard.counters.exact_hits += 1;
                    return Probe::Hit {
                        plan,
                        outcome: CacheOutcome::ExactHit,
                    };
                }
                Lookup::Band(plan) => {
                    shard.counters.template_hits += 1;
                    return Probe::Hit {
                        plan,
                        outcome: CacheOutcome::TemplateHit,
                    };
                }
                Lookup::OutOfBand => CacheOutcome::Replan,
                Lookup::NoTemplate => CacheOutcome::Miss,
            };
            // No servable plan. Single-flight: wait for an in-flight
            // planner run on the same key, or become the leader.
            if let Some(flight) = shard.inflight.get(&key.exact) {
                let flight = Arc::clone(flight);
                shard.counters.flight_waits += 1;
                drop(shard);
                flight.wait();
                // The leader finished (insert, stale reject, or
                // failure): re-probe. A successful insert turns this
                // into an exact hit; otherwise this thread may become
                // the next leader.
                continue;
            }
            shard.inflight.insert(key.exact, Arc::new(Flight::new()));
            match outcome {
                CacheOutcome::Replan => shard.counters.replans += 1,
                _ => shard.counters.misses += 1,
            }
            // Relaxed: captured under the shard lock; see the field docs.
            let epoch = self.epoch.load(Ordering::Relaxed);
            return Probe::Plan {
                guard: FlightGuard {
                    cache: self,
                    shard: si,
                    key: key.exact,
                },
                epoch,
                outcome,
            };
        }
    }

    /// Inserts (or, for a racing duplicate, replaces) the plan for
    /// `key`, but only when no invalidation has happened since `epoch`
    /// was captured (see [`Self::epoch`]). Evicts the shard's
    /// least-recently-used template entry when a new template arrives
    /// at capacity. Returns whether the plan was inserted.
    pub fn insert_if_current(&self, key: &PlanKey, cached: Arc<CachedPlan>, epoch: u64) -> bool {
        let si = self.shard_index(key.template);
        let mut shard = self.lock_shard(si);
        // Relaxed: compared under the shard lock; see the field docs.
        if epoch != self.epoch.load(Ordering::Relaxed) {
            shard.counters.stale_inserts += 1;
            return false;
        }
        shard.clock += 1;
        let clock = shard.clock;
        // Evict at template granularity: a new template at capacity
        // displaces the least-recently-used template (all its buckets).
        if !shard.entries.contains_key(&key.template) && shard.entries.len() >= self.shard_capacity
        {
            if let Some(&lru) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(t, _)| t)
            {
                shard.entries.remove(&lru);
                shard.counters.evictions += 1;
            }
        }
        let plans_per_template = self.config.plans_per_template;
        let entry = shard.entries.entry(key.template).or_default();
        entry.used = clock;
        let duplicate = if let Some(&i) = entry.exact.get(&key.exact) {
            // Two threads planned the same exact query (single-flight
            // bypassed or raced): last write wins, observably.
            entry.buckets[i].cached = cached;
            true
        } else {
            let idx = if entry.buckets.len() < plans_per_template {
                entry.buckets.push(Bucket { cached });
                entry.buckets.len() - 1
            } else {
                // Bucket bound reached: overwrite round-robin and drop
                // fast-path pointers into the overwritten bucket.
                let v = entry.next_victim % plans_per_template;
                entry.next_victim = (v + 1) % plans_per_template;
                entry.exact.retain(|_, i| *i != v);
                entry.buckets[v] = Bucket { cached };
                v
            };
            entry.exact.insert(key.exact, idx);
            false
        };
        if duplicate {
            shard.counters.duplicate_plans += 1;
        }
        true
    }

    /// Inserts unconditionally under the current epoch (test aid and
    /// single-threaded use).
    pub fn insert(&self, key: &PlanKey, cached: Arc<CachedPlan>) {
        let epoch = self.epoch();
        self.insert_if_current(key, cached, epoch);
    }

    /// Drops every entry (stats rebuild, planner swap, explicit
    /// clear). The epoch is bumped *before* the shard sweep, so an
    /// insert racing this call either lands in a shard that is still
    /// about to be swept or is rejected as stale — a superseded plan
    /// can never survive the invalidation.
    pub fn invalidate(&self) {
        // Relaxed: the shard lock/unlock in the sweep below publishes
        // the bump to every insert that locks a shard after its sweep;
        // see the `epoch` field docs.
        self.epoch.fetch_add(1, Ordering::Relaxed);
        for shard in &self.shards {
            self.lock_shard_of(shard).entries.clear();
        }
    }

    /// Current observability counters, aggregated across shards (plus
    /// counters carried over from before any capacity rebuild).
    pub fn metrics(&self) -> CacheMetrics {
        let mut sum = self.base;
        let mut len = 0;
        let mut plans = 0;
        for shard in &self.shards {
            let shard = self.lock_shard_of(shard);
            sum.add(&shard.counters);
            len += shard.entries.len();
            plans += shard
                .entries
                .values()
                .map(|e| e.buckets.len())
                .sum::<usize>();
        }
        CacheMetrics {
            hits: sum.exact_hits + sum.template_hits,
            exact_hits: sum.exact_hits,
            template_hits: sum.template_hits,
            replans: sum.replans,
            misses: sum.misses,
            evictions: sum.evictions,
            invalidations: self.epoch(),
            stale_inserts: sum.stale_inserts,
            duplicate_plans: sum.duplicate_plans,
            flight_waits: sum.flight_waits,
            len,
            plans,
            capacity: self.config.capacity,
            shards: self.shards.len(),
        }
    }

    /// Whether `key`'s exact fingerprint is currently cached (no
    /// recency effect; test aid).
    pub fn contains_exact(&self, key: &PlanKey) -> bool {
        let shard = self.lock_shard(self.shard_index(key.template));
        shard
            .entries
            .get(&key.template)
            .is_some_and(|e| e.exact.contains_key(&key.exact))
    }

    /// Whether `template` has a cached entry (test aid).
    pub fn contains_template(&self, template: TemplateFingerprint) -> bool {
        let shard = self.lock_shard(self.shard_index(template));
        shard.entries.contains_key(&template)
    }
}

/// Whether `current` is within `band` of `recorded` on every slot.
/// Signatures of different lengths never match (they belong to
/// different templates and would mean a fingerprint collision).
fn within_band(current: &[f64], recorded: &[f64], band: f64) -> bool {
    if current.len() != recorded.len() {
        return false;
    }
    // Floor far below any real selectivity (estimates clamp at 1e-9):
    // keeps the ratio finite without masking genuine differences.
    const FLOOR: f64 = 1e-12;
    current.iter().zip(recorded).all(|(&c, &r)| {
        let (c, r) = (c.max(FLOOR), r.max(FLOOR));
        let ratio = if c > r { c / r } else { r / c };
        ratio <= band
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_query::{AccessPath, PlanNode, RelId};

    fn plan(tag: u32) -> Arc<CachedPlan> {
        plan_with_sel(tag, vec![])
    }

    fn plan_with_sel(tag: u32, selectivities: Vec<f64>) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            plan: PhysicalPlan::new(PlanNode::Scan {
                rel: RelId(tag),
                path: AccessPath::SeqScan,
            }),
            cost: f64::from(tag),
            method: PlannerMethod::DynamicProgramming,
            selectivities,
        })
    }

    fn key(template: u128, exact: u128) -> PlanKey {
        PlanKey {
            template: TemplateFingerprint(template),
            exact: QueryFingerprint(exact),
        }
    }

    /// Single shard makes capacity/eviction deterministic in tests.
    fn single_shard(capacity: usize) -> PlanCache {
        PlanCache::with_config(CacheConfig {
            capacity,
            shards: 1,
            ..CacheConfig::default()
        })
    }

    /// Serves the probe's plan or panics — for tests that expect hits.
    fn expect_hit(
        cache: &PlanCache,
        key: &PlanKey,
        current: &[f64],
    ) -> (Arc<CachedPlan>, CacheOutcome) {
        match cache.probe(key, current) {
            Probe::Hit { plan, outcome } => (plan, outcome),
            Probe::Plan { outcome, .. } => panic!("expected hit, got {outcome:?}"),
        }
    }

    /// Runs the miss path: asserts the probe demands planning and
    /// inserts `plan` under the probe's epoch.
    fn miss_and_insert(
        cache: &PlanCache,
        key: &PlanKey,
        current: &[f64],
        plan: Arc<CachedPlan>,
    ) -> CacheOutcome {
        match cache.probe(key, current) {
            Probe::Hit { outcome, .. } => panic!("expected miss, got {outcome:?}"),
            Probe::Plan {
                guard,
                epoch,
                outcome,
            } => {
                cache.insert_if_current(key, plan, epoch);
                drop(guard);
                outcome
            }
        }
    }

    #[test]
    fn exact_hit_returns_the_inserted_plan() {
        let cache = PlanCache::new(4);
        let k = key(1, 10);
        assert_eq!(
            miss_and_insert(&cache, &k, &[], plan(7)),
            CacheOutcome::Miss
        );
        let (p, outcome) = expect_hit(&cache, &k, &[]);
        assert_eq!(p, plan(7));
        assert_eq!(outcome, CacheOutcome::ExactHit);
        let m = cache.metrics();
        assert_eq!(
            (m.hits, m.exact_hits, m.misses, m.len, m.plans),
            (1, 1, 1, 1, 1)
        );
    }

    #[test]
    fn different_params_share_a_template_within_the_band() {
        let cache = PlanCache::new(4);
        let a = key(1, 10);
        let b = key(1, 11); // same template, different constants
        miss_and_insert(&cache, &a, &[0.010], plan_with_sel(1, vec![0.010]));
        // 0.02 vs 0.01 is within the default 4× band: shared.
        let (p, outcome) = expect_hit(&cache, &b, &[0.020]);
        assert_eq!(p, plan_with_sel(1, vec![0.010]));
        assert_eq!(outcome, CacheOutcome::TemplateHit);
        // …and the fast path was pinned: the same constants now hit
        // without selectivity scoring.
        let (_, outcome) = expect_hit(&cache, &b, &[0.020]);
        assert_eq!(outcome, CacheOutcome::ExactHit);
        let m = cache.metrics();
        assert_eq!((m.template_hits, m.exact_hits, m.misses), (1, 1, 1));
        assert_eq!((m.len, m.plans), (1, 1), "one template, one bucket");
    }

    #[test]
    fn out_of_band_params_replan_into_a_new_bucket() {
        let cache = PlanCache::new(4);
        let common = key(1, 10);
        let rare = key(1, 12);
        miss_and_insert(&cache, &common, &[0.2], plan_with_sel(1, vec![0.2]));
        // 0.001 vs 0.2 is 200× outside the band: must re-plan.
        let outcome = miss_and_insert(&cache, &rare, &[0.001], plan_with_sel(2, vec![0.001]));
        assert_eq!(outcome, CacheOutcome::Replan);
        let m = cache.metrics();
        assert_eq!((m.replans, m.misses), (1, 1));
        assert_eq!((m.len, m.plans), (1, 2), "one template, two buckets");
        // Each regime now hits its own bucket.
        let (p, _) = expect_hit(&cache, &common, &[0.2]);
        assert_eq!(p.cost, 1.0);
        let (p, _) = expect_hit(&cache, &rare, &[0.001]);
        assert_eq!(p.cost, 2.0);
        // A third set of constants lands in whichever bucket matches:
        // 0.003 is within 4x of 0.001 (rare) but 66x off 0.2 (common).
        let (p, outcome) = expect_hit(&cache, &key(1, 13), &[0.003]);
        assert_eq!(outcome, CacheOutcome::TemplateHit);
        assert_eq!(p.cost, 2.0, "matched the rare-constant bucket");
    }

    #[test]
    fn band_matching_is_per_slot() {
        assert!(within_band(&[0.1, 0.01], &[0.2, 0.02], 4.0));
        assert!(!within_band(&[0.1, 0.0001], &[0.2, 0.02], 4.0));
        assert!(!within_band(&[0.1], &[0.1, 0.1], 4.0), "length mismatch");
        assert!(within_band(&[], &[], 4.0), "no slots always match");
        assert!(within_band(&[0.0], &[0.0], 1.0), "floor keeps zeros finite");
    }

    #[test]
    fn lru_eviction_drops_the_coldest_template() {
        let cache = single_shard(2);
        miss_and_insert(&cache, &key(1, 10), &[], plan(1));
        miss_and_insert(&cache, &key(2, 20), &[], plan(2));
        // Touch template 1 so template 2 becomes LRU.
        expect_hit(&cache, &key(1, 10), &[]);
        miss_and_insert(&cache, &key(3, 30), &[], plan(3));
        assert!(cache.contains_template(TemplateFingerprint(1)));
        assert!(!cache.contains_template(TemplateFingerprint(2)));
        assert!(cache.contains_template(TemplateFingerprint(3)));
        assert_eq!(cache.metrics().evictions, 1);
        assert_eq!(cache.metrics().len, 2);
    }

    #[test]
    fn duplicate_insert_is_last_write_wins_and_counted() {
        // Documents the double-planning contract: if two planner runs
        // for one exact key ever race past the single-flight (or a
        // caller inserts directly), the second insert replaces the
        // first *and* increments `duplicate_plans` — the race is
        // observable, never silent.
        let cache = PlanCache::new(4);
        let k = key(1, 10);
        cache.insert(&k, plan(1));
        cache.insert(&k, plan(9));
        let m = cache.metrics();
        assert_eq!(m.duplicate_plans, 1);
        assert_eq!((m.len, m.plans), (1, 1), "no second bucket");
        let (p, _) = expect_hit(&cache, &k, &[]);
        assert_eq!(p, plan(9), "last insert wins");
    }

    #[test]
    fn invalidate_clears_and_counts() {
        let cache = PlanCache::new(4);
        cache.insert(&key(1, 10), plan(1));
        cache.insert(&key(2, 20), plan(2));
        cache.invalidate();
        let m = cache.metrics();
        assert_eq!((m.len, m.plans), (0, 0));
        assert_eq!(m.invalidations, 1);
        assert!(matches!(
            cache.probe(&key(1, 10), &[]),
            Probe::Plan {
                outcome: CacheOutcome::Miss,
                ..
            }
        ));
    }

    /// Regression (online hot-swap stale-insert race): a plan produced
    /// under epoch E must not enter the cache after an invalidation
    /// bumped the epoch — it would resurrect a superseded generation's
    /// plan as cache hits until the next invalidation.
    #[test]
    fn insert_if_current_rejects_superseded_epochs() {
        let cache = PlanCache::new(4);
        let epoch = cache.epoch();
        assert!(cache.insert_if_current(&key(1, 10), plan(1), epoch));
        cache.invalidate();
        assert!(!cache.insert_if_current(&key(2, 20), plan(2), epoch));
        assert!(
            !cache.contains_exact(&key(2, 20)),
            "stale insert must be discarded"
        );
        assert_eq!(cache.metrics().stale_inserts, 1);
        // The fresh epoch inserts normally.
        assert!(cache.insert_if_current(&key(2, 20), plan(2), cache.epoch()));
        assert!(cache.contains_exact(&key(2, 20)));
    }

    #[test]
    fn bucket_bound_overwrites_round_robin() {
        let cache = PlanCache::with_config(CacheConfig {
            plans_per_template: 2,
            selectivity_band: 1.0, // only identical signatures share
            ..CacheConfig::default()
        });
        cache.insert(&key(1, 10), plan_with_sel(1, vec![0.5]));
        cache.insert(&key(1, 11), plan_with_sel(2, vec![0.05]));
        assert_eq!(cache.metrics().plans, 2);
        // Third regime overwrites bucket 0; its fast-path pointer dies.
        cache.insert(&key(1, 12), plan_with_sel(3, vec![0.005]));
        assert_eq!(cache.metrics().plans, 2, "bucket bound holds");
        assert!(!cache.contains_exact(&key(1, 10)));
        assert!(cache.contains_exact(&key(1, 11)));
        assert!(cache.contains_exact(&key(1, 12)));
    }

    #[test]
    fn rebuild_carries_metrics_and_epoch() {
        let cache = PlanCache::new(4);
        let k = key(1, 10);
        miss_and_insert(&cache, &k, &[], plan(1));
        expect_hit(&cache, &k, &[]);
        cache.invalidate();
        let before = cache.metrics();
        assert_eq!(
            (before.hits, before.misses, before.invalidations),
            (1, 1, 1)
        );
        let stale_epoch = 0; // captured before the invalidation above
        let cache = cache.rebuilt_with_capacity(64);
        let after = cache.metrics();
        assert_eq!(after.hits, before.hits, "hits carried");
        assert_eq!(after.misses, before.misses, "misses carried");
        assert_eq!(
            after.invalidations,
            before.invalidations + 1,
            "the rebuild itself counts as an invalidation"
        );
        assert_eq!(after.capacity, 64);
        assert_eq!((after.len, after.plans), (0, 0), "entries drop");
        // The epoch fence survives the rebuild: a plan from before it
        // is still rejected.
        assert!(!cache.insert_if_current(&k, plan(1), stale_epoch));
        assert_eq!(cache.metrics().stale_inserts, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two_and_capacity_clamps() {
        let cache = PlanCache::with_config(CacheConfig {
            capacity: 0,
            shards: 5,
            selectivity_band: 0.1,
            plans_per_template: 0,
        });
        let config = cache.config();
        assert_eq!(config.shards, 8);
        assert_eq!(config.capacity, 1);
        assert_eq!(config.selectivity_band, 1.0);
        assert_eq!(config.plans_per_template, 1);
        assert_eq!(cache.metrics().shards, 8);
        // Still stores and serves.
        cache.insert(&key(1, 10), plan(1));
        expect_hit(&cache, &key(1, 10), &[]);
    }

    #[test]
    fn sharing_rate_counts_hits_and_replans() {
        let m = CacheMetrics {
            hits: 80,
            replans: 15,
            misses: 5,
            ..CacheMetrics::default()
        };
        assert!((m.sharing_rate() - 0.95).abs() < 1e-12);
        assert_eq!(CacheMetrics::default().sharing_rate(), 1.0);
    }

    #[test]
    fn concurrent_cold_misses_single_flight() {
        use std::sync::atomic::AtomicUsize;
        let cache = PlanCache::new(16);
        let k = key(7, 70);
        let planned = AtomicUsize::new(0);
        let barrier = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    match cache.probe(&k, &[]) {
                        Probe::Hit { plan: p, .. } => assert_eq!(p, plan(1)),
                        Probe::Plan { guard, epoch, .. } => {
                            // Relaxed: the scope join below orders this
                            // against the final load.
                            planned.fetch_add(1, Ordering::Relaxed);
                            cache.insert_if_current(&k, plan(1), epoch);
                            drop(guard);
                        }
                    }
                });
            }
        });
        assert_eq!(
            planned.load(Ordering::Relaxed),
            1,
            "exactly one leader plans a racing cold miss"
        );
        let m = cache.metrics();
        assert_eq!(m.duplicate_plans, 0);
        assert_eq!(m.misses, 1);
        assert_eq!(m.hits + m.flight_waits, 7 + m.flight_waits);
        assert_eq!(m.hits + m.misses + m.replans, 8, "every probe counted once");
    }

    /// Regression test for the PR 8 ordering audit, which downgraded
    /// the invalidation epoch from `SeqCst` to `Relaxed`: once
    /// `invalidate` returns, inserts carrying a pre-invalidation epoch
    /// must be rejected as stale, and no plan inserted before the sweep
    /// may survive — even while inserters are still hammering the
    /// cache with the stale epoch.
    #[test]
    fn invalidate_racing_inserts_never_resurrects_plans() {
        let cache = PlanCache::new(64);
        let barrier = std::sync::Barrier::new(5);
        std::thread::scope(|scope| {
            for t in 0..4u128 {
                let (cache, barrier) = (&cache, &barrier);
                scope.spawn(move || {
                    // Epoch captured strictly before the invalidation.
                    let epoch = cache.epoch();
                    barrier.wait();
                    // Bounded (not flag-driven): the loop must finish on
                    // its own even on a single-CPU box where spinners
                    // starve the main thread.
                    for i in 0..500u128 {
                        cache.insert_if_current(&key(t * 1000 + i, i), plan(1), epoch);
                    }
                });
            }
            barrier.wait();
            cache.invalidate();
            // The sweep has visited every shard: entries inserted before
            // it are gone, and the still-running inserters carry a
            // pre-invalidation epoch, so nothing can land from here on.
            assert_eq!(cache.metrics().len, 0, "swept entries must stay gone");
        });
        assert_eq!(cache.metrics().len, 0);
        assert!(
            !cache.insert_if_current(&key(9999, 9999), plan(1), cache.epoch() - 1),
            "a pre-invalidation epoch must be rejected as stale"
        );
    }

    #[test]
    fn abandoned_flight_releases_waiters() {
        let cache = PlanCache::new(4);
        let k = key(3, 30);
        // Leader probes, then drops the guard without inserting
        // (planner failure): a subsequent probe must become the new
        // leader instead of hanging.
        match cache.probe(&k, &[]) {
            Probe::Plan { guard, .. } => drop(guard),
            Probe::Hit { .. } => panic!("cold cache cannot hit"),
        }
        assert!(matches!(cache.probe(&k, &[]), Probe::Plan { .. }));
    }
}
