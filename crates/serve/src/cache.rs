//! The fingerprint-keyed plan cache.
//!
//! A capacity-bounded LRU mapping [`QueryFingerprint`]s (see
//! `hfqo_query::fingerprint` for the normalization rules) to finished
//! physical plans. The cache itself is single-threaded; the session
//! wraps it in a mutex and keeps the critical sections to probe/insert
//! only — planning happens outside the lock.

use hfqo_opt::PlannerMethod;
use hfqo_query::{PhysicalPlan, QueryFingerprint};
use std::collections::HashMap;
use std::sync::Arc;

/// A cached plan: everything the session needs to answer a hit without
/// re-planning.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedPlan {
    /// The finished physical plan.
    pub plan: PhysicalPlan,
    /// Estimated cost at planning time.
    pub cost: f64,
    /// Which strategy produced it.
    pub method: PlannerMethod,
}

/// Cache observability counters (monotonic over the cache's lifetime;
/// `invalidations` counts whole-cache clears).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetrics {
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Whole-cache invalidations (stats rebuilds, planner swaps,
    /// explicit clears).
    pub invalidations: u64,
    /// Inserts rejected because an invalidation happened between the
    /// probe and the insert (the plan was produced under a superseded
    /// planner/statistics epoch).
    pub stale_inserts: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

#[derive(Debug)]
struct Entry {
    /// Shared so a hit hands the plan out without cloning the plan
    /// tree inside the cache lock.
    cached: Arc<CachedPlan>,
    /// Last-use stamp from the monotonic counter below.
    used: u64,
}

/// A capacity-bounded LRU plan cache.
///
/// Recency is tracked with a monotonic stamp per entry; eviction scans
/// for the minimum stamp. That is O(capacity) per eviction, which is
/// deliberate: capacities are small (a workload's worth of distinct
/// query shapes, default 128) and the scan keeps the structure a single
/// `HashMap` with no linked-list bookkeeping to corrupt.
#[derive(Debug)]
pub struct PlanCache {
    entries: HashMap<QueryFingerprint, Entry>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
    stale_inserts: u64,
}

/// Default capacity: comfortably above the JOB suite's 113 distinct
/// queries.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

impl PlanCache {
    /// An empty cache bounded at `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
            stale_inserts: 0,
        }
    }

    /// The current invalidation epoch. Callers that plan outside the
    /// cache lock capture the epoch at probe time and pass it to
    /// [`Self::insert_if_current`]; an invalidation in between bumps
    /// the epoch, so the superseded plan is discarded instead of
    /// resurrecting into the fresh cache.
    pub fn epoch(&self) -> u64 {
        self.invalidations
    }

    /// Probes for `key`, refreshing its recency on a hit. The returned
    /// `Arc` clone is O(1), so callers can hold the cache lock for no
    /// longer than the probe itself.
    pub fn get(&mut self, key: QueryFingerprint) -> Option<Arc<CachedPlan>> {
        self.clock += 1;
        match self.entries.get_mut(&key) {
            Some(entry) => {
                entry.used = self.clock;
                self.hits += 1;
                Some(Arc::clone(&entry.cached))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the plan for `key`, evicting the
    /// least-recently-used entry when at capacity.
    pub fn insert(&mut self, key: QueryFingerprint, cached: Arc<CachedPlan>) {
        self.clock += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, e)| e.used) {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                cached,
                used: self.clock,
            },
        );
    }

    /// Inserts like [`Self::insert`], but only when no invalidation has
    /// happened since `epoch` was captured (see [`Self::epoch`]).
    /// Returns whether the entry was inserted.
    pub fn insert_if_current(
        &mut self,
        key: QueryFingerprint,
        cached: Arc<CachedPlan>,
        epoch: u64,
    ) -> bool {
        if epoch != self.epoch() {
            self.stale_inserts += 1;
            return false;
        }
        self.insert(key, cached);
        true
    }

    /// Drops every entry (stats rebuild, planner swap, explicit clear).
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.invalidations += 1;
    }

    /// Current observability counters.
    pub fn metrics(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            invalidations: self.invalidations,
            stale_inserts: self.stale_inserts,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }

    /// Whether `key` is currently cached (no recency effect; test aid).
    pub fn contains(&self, key: QueryFingerprint) -> bool {
        self.entries.contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_query::{AccessPath, PlanNode, RelId};

    fn plan(tag: u32) -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            plan: PhysicalPlan::new(PlanNode::Scan {
                rel: RelId(tag),
                path: AccessPath::SeqScan,
            }),
            cost: f64::from(tag),
            method: PlannerMethod::DynamicProgramming,
        })
    }

    fn key(v: u128) -> QueryFingerprint {
        QueryFingerprint(v)
    }

    #[test]
    fn hit_returns_the_inserted_plan() {
        let mut cache = PlanCache::new(4);
        assert!(cache.get(key(1)).is_none());
        cache.insert(key(1), plan(7));
        assert_eq!(cache.get(key(1)), Some(plan(7)));
        let m = cache.metrics();
        assert_eq!((m.hits, m.misses, m.len), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), plan(1));
        cache.insert(key(2), plan(2));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(key(1)).is_some());
        cache.insert(key(3), plan(3));
        assert!(cache.contains(key(1)), "recently used survives");
        assert!(!cache.contains(key(2)), "LRU entry evicted");
        assert!(cache.contains(key(3)));
        assert_eq!(cache.metrics().evictions, 1);
        assert_eq!(cache.metrics().len, 2);
    }

    #[test]
    fn replacing_an_existing_key_does_not_evict() {
        let mut cache = PlanCache::new(2);
        cache.insert(key(1), plan(1));
        cache.insert(key(2), plan(2));
        cache.insert(key(1), plan(9));
        assert_eq!(cache.metrics().evictions, 0);
        assert_eq!(cache.get(key(1)), Some(plan(9)));
        assert!(cache.contains(key(2)));
    }

    #[test]
    fn invalidate_clears_and_counts() {
        let mut cache = PlanCache::new(4);
        cache.insert(key(1), plan(1));
        cache.insert(key(2), plan(2));
        cache.invalidate();
        assert_eq!(cache.metrics().len, 0);
        assert_eq!(cache.metrics().invalidations, 1);
        assert!(cache.get(key(1)).is_none());
    }

    /// Regression (online hot-swap stale-insert race): a plan produced
    /// under epoch E must not enter the cache after an invalidation
    /// bumped the epoch — it would resurrect a superseded generation's
    /// plan as cache hits until the next invalidation.
    #[test]
    fn insert_if_current_rejects_superseded_epochs() {
        let mut cache = PlanCache::new(4);
        let epoch = cache.epoch();
        assert!(cache.insert_if_current(key(1), plan(1), epoch));
        cache.invalidate();
        assert!(!cache.insert_if_current(key(2), plan(2), epoch));
        assert!(!cache.contains(key(2)), "stale insert must be discarded");
        assert_eq!(cache.metrics().stale_inserts, 1);
        // The fresh epoch inserts normally.
        assert!(cache.insert_if_current(key(2), plan(2), cache.epoch()));
        assert!(cache.contains(key(2)));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut cache = PlanCache::new(0);
        cache.insert(key(1), plan(1));
        assert!(cache.contains(key(1)));
        cache.insert(key(2), plan(2));
        assert!(!cache.contains(key(1)));
        assert_eq!(cache.metrics().capacity, 1);
    }
}
