//! The experience log: what the serving layer remembers about executed
//! queries so a trainer can learn from live traffic.
//!
//! Every serve that executes records one [`Experience`]: the bound
//! query graph, the forest-merge join decisions of the plan that ran
//! (derived from the plan's join-tree skeleton, so the record is
//! planner-agnostic — expert, learned, and even cache-hit serves all
//! leave the same kind of trace), and the executor's observed work,
//! which is the deterministic latency signal online training rewards
//! on.
//!
//! The log is a bounded, thread-safe ring: serving threads `push` from
//! the hot path (one short mutex hold, O(1)), the trainer `drain`s
//! mini-batches from the other side, and when producers outrun the
//! consumer the *oldest* experience is dropped — under policy
//! improvement, old trajectories are the least valuable thing in the
//! buffer. Drops are counted, never silent.

use hfqo_opt::PlannerMethod;
use hfqo_query::QueryGraph;
use hfqo_sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// One executed query, as remembered for online learning.
#[derive(Debug, Clone)]
pub struct Experience {
    /// The bound query graph the plan was produced for (shared with the
    /// `ServedQuery` the serve returned).
    pub graph: Arc<QueryGraph>,
    /// Forest-merge decisions `(x, y)` reconstructing the executed
    /// plan's join tree (empty for single-relation queries).
    pub decisions: Vec<(usize, usize)>,
    /// Work units the executor actually performed — the deterministic
    /// latency observation.
    pub executed_work: u64,
    /// Wall-clock of the execution (informational; training rewards on
    /// `executed_work`, which is reproducible).
    pub elapsed: Duration,
    /// The planner's estimated cost at planning time.
    pub cost: f64,
    /// Which strategy produced the plan.
    pub method: PlannerMethod,
    /// Whether the plan came from the plan cache.
    pub cache_hit: bool,
}

/// Counters describing the log's lifetime activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExperienceMetrics {
    /// Experiences ever pushed.
    pub recorded: u64,
    /// Experiences evicted unconsumed by the capacity bound.
    pub dropped: u64,
    /// Experiences handed to a consumer via `drain`.
    pub drained: u64,
    /// Experiences currently buffered.
    pub len: usize,
    /// Configured capacity.
    pub capacity: usize,
}

#[derive(Debug, Default)]
struct Inner {
    buf: VecDeque<Experience>,
    recorded: u64,
    dropped: u64,
    drained: u64,
}

/// A bounded, thread-safe experience ring. See the [module docs](self).
#[derive(Debug)]
pub struct ExperienceLog {
    inner: Mutex<Inner>,
    capacity: usize,
}

/// Default capacity: a few serving bursts' worth of queries.
pub const DEFAULT_EXPERIENCE_CAPACITY: usize = 1024;

impl ExperienceLog {
    /// An empty log bounded at `capacity` experiences (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new("serve.experience.log", Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Appends an experience, evicting the oldest buffered one when at
    /// capacity.
    pub fn push(&self, experience: Experience) {
        let mut inner = self.inner.lock();
        if inner.buf.len() >= self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(experience);
        inner.recorded += 1;
    }

    /// Removes and returns up to `max` experiences, oldest first.
    pub fn drain(&self, max: usize) -> Vec<Experience> {
        let mut inner = self.inner.lock();
        let take = max.min(inner.buf.len());
        let out: Vec<Experience> = inner.buf.drain(..take).collect();
        inner.drained += out.len() as u64;
        out
    }

    /// Experiences currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().buf.len()
    }

    /// Whether the log is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the lifetime counters.
    pub fn metrics(&self) -> ExperienceMetrics {
        let inner = self.inner.lock();
        ExperienceMetrics {
            recorded: inner.recorded,
            dropped: inner.dropped,
            drained: inner.drained,
            len: inner.buf.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_query::QueryGraph;

    fn exp(tag: u64) -> Experience {
        Experience {
            graph: Arc::new(QueryGraph::new(vec![], vec![], vec![], vec![], vec![])),
            decisions: vec![],
            executed_work: tag,
            elapsed: Duration::ZERO,
            cost: 1.0,
            method: PlannerMethod::Greedy,
            cache_hit: false,
        }
    }

    #[test]
    fn push_drain_fifo() {
        let log = ExperienceLog::new(8);
        for i in 0..5 {
            log.push(exp(i));
        }
        assert_eq!(log.len(), 5);
        let batch = log.drain(3);
        assert_eq!(
            batch.iter().map(|e| e.executed_work).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(log.len(), 2);
        let rest = log.drain(100);
        assert_eq!(rest.len(), 2);
        assert!(log.is_empty());
        let m = log.metrics();
        assert_eq!((m.recorded, m.dropped, m.drained), (5, 0, 5));
    }

    #[test]
    fn capacity_bound_drops_oldest() {
        let log = ExperienceLog::new(3);
        for i in 0..5 {
            log.push(exp(i));
        }
        let m = log.metrics();
        assert_eq!((m.len, m.dropped, m.capacity), (3, 2, 3));
        let kept: Vec<u64> = log.drain(10).iter().map(|e| e.executed_work).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest experiences evicted first");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let log = ExperienceLog::new(0);
        log.push(exp(1));
        log.push(exp(2));
        assert_eq!(log.metrics().capacity, 1);
        assert_eq!(log.drain(10)[0].executed_work, 2);
    }
}
