//! Atomic policy hot-swapping: publish a retrained planner generation
//! to live serving threads without pausing them.
//!
//! [`PlannerHandle`] is the shared cell: the current
//! [`LearnedPlanner`] lives behind an `Arc` whose pointer is replaced
//! wholesale on [`store`](PlannerHandle::store) (arc-swap style — a
//! reader that loaded the old `Arc` keeps a complete, immutable policy
//! for as long as it needs it, so a plan is always produced by exactly
//! one generation and can never observe half-updated weights). Readers
//! take a read lock only long enough to clone the `Arc` — O(1), never
//! while planning — and training happens entirely outside the cell, so
//! serving threads never block on a policy update; the only writer
//! critical section is the pointer replacement itself.
//!
//! [`HotSwapPlanner`] adapts a handle to the [`Planner`] trait so a
//! [`crate::QuerySession`] can own it like any other strategy. Each
//! `plan` call loads the handle exactly once and runs the whole
//! greedy-argmax episode against that generation.
//!
//! Swapping does **not** touch the plan cache — the cache belongs to
//! the session. [`crate::OnlineTrainer`] invalidates the session's
//! cache immediately after every store, mirroring what
//! `QuerySession::set_planner` does on a strategy swap; plans from the
//! previous generation remain *correct* (every generation's plans
//! execute to identical results), they are just no longer the plans the
//! current policy would pick.

use hfqo_opt::{OptError, PlannedQuery, Planner, PlannerContext};
use hfqo_query::QueryGraph;
use hfqo_rejoin::LearnedPlanner;
use hfqo_sync::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared cell holding the current learned-planner generation.
#[derive(Debug)]
pub struct PlannerHandle {
    current: RwLock<Arc<LearnedPlanner>>,
    generation: AtomicU64,
}

impl PlannerHandle {
    /// A handle whose generation 0 is `planner`.
    pub fn new(planner: LearnedPlanner) -> Arc<Self> {
        Arc::new(Self {
            current: RwLock::new("serve.swap.handle", Arc::new(planner)),
            generation: AtomicU64::new(0),
        })
    }

    /// The current generation's planner (O(1): read-lock + `Arc`
    /// clone).
    pub fn load(&self) -> Arc<LearnedPlanner> {
        Arc::clone(&self.current.read())
    }

    /// Publishes `planner` as the next generation and returns the new
    /// generation number. The write lock is held only for the pointer
    /// replacement; in-flight readers finish their episodes on the
    /// generation they already loaded.
    pub fn store(&self, planner: LearnedPlanner) -> u64 {
        let next = Arc::new(planner);
        *self.current.write() = next;
        // ordering: AcqRel — the release half publishes the pointer
        // store above to any thread whose Acquire `generation()` read
        // observes the bump (a thread that sees generation N can load a
        // planner at least that new); the acquire half orders
        // back-to-back stores from different trainer threads.
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Generations published so far (0 = still the initial policy).
    pub fn generation(&self) -> u64 {
        // ordering: Acquire — pairs with the AcqRel bump in `store` so
        // an observed generation implies the matching planner swap is
        // visible too.
        self.generation.load(Ordering::Acquire)
    }
}

/// The current handle generation behind the [`Planner`] trait.
#[derive(Debug, Clone)]
pub struct HotSwapPlanner {
    handle: Arc<PlannerHandle>,
}

// Serving threads share the planner; the handle is lock-guarded shared
// state by construction. The assertion breaks the build if a
// non-thread-safe member ever sneaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HotSwapPlanner>();
};

impl HotSwapPlanner {
    /// A planner view over `handle`.
    pub fn new(handle: Arc<PlannerHandle>) -> Self {
        Self { handle }
    }

    /// The underlying handle.
    pub fn handle(&self) -> &Arc<PlannerHandle> {
        &self.handle
    }
}

impl Planner for HotSwapPlanner {
    fn name(&self) -> &'static str {
        "learned-online"
    }

    fn plan(&self, ctx: &PlannerContext<'_>, graph: &QueryGraph) -> Result<PlannedQuery, OptError> {
        // One load per plan: the whole episode walks a single
        // generation, so a concurrent store can never tear a plan.
        self.handle.load().plan(ctx, graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use hfqo_rejoin::{Featurizer, PolicyKind, ReJoinAgent};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn planner_with_seed(seed: u64) -> LearnedPlanner {
        let f = Featurizer::new(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let agent = ReJoinAgent::new(
            f.state_dim(),
            f.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        LearnedPlanner::freeze(&agent, f)
    }

    #[test]
    fn store_bumps_generation_and_swaps_the_policy() {
        let db = TestDb::chain(4, 200);
        let graph = chain_query(&db, 4);
        let ctx = hfqo_opt::PlannerContext::new(db.db.catalog(), &db.stats);
        let handle = PlannerHandle::new(planner_with_seed(1));
        let planner = HotSwapPlanner::new(Arc::clone(&handle));
        assert_eq!(handle.generation(), 0);
        let before = planner.plan(&ctx, &graph).unwrap();
        assert_eq!(handle.store(planner_with_seed(2)), 1);
        let after = planner.plan(&ctx, &graph).unwrap();
        // Different random inits may or may not pick different join
        // orders; what must hold is that each serve used exactly one
        // generation's deterministic choice.
        assert_eq!(planner.plan(&ctx, &graph).unwrap().plan, after.plan);
        before.plan.validate(&graph).unwrap();
        after.plan.validate(&graph).unwrap();
    }

    #[test]
    fn loaded_generation_outlives_a_store() {
        let handle = PlannerHandle::new(planner_with_seed(3));
        let old = handle.load();
        handle.store(planner_with_seed(4));
        // The old Arc is still a complete, usable policy.
        let db = TestDb::chain(3, 100);
        let graph = chain_query(&db, 3);
        let ctx = hfqo_opt::PlannerContext::new(db.db.catalog(), &db.stats);
        old.plan(&ctx, &graph)
            .unwrap()
            .plan
            .validate(&graph)
            .unwrap();
        assert_eq!(handle.generation(), 1);
    }
}
