//! The online trainer: closing the paper's hands-free loop inside the
//! serving layer.
//!
//! The loop the paper is named for — execute, observe the latency,
//! learn, plan better — runs here as four moving parts:
//!
//! ```text
//!   serving threads                         trainer (one thread)
//!   ──────────────────                      ─────────────────────
//!   serve → execute ──record──▶ ExperienceLog ──drain──▶ replay to
//!     ▲                         (bounded ring)           Episodes
//!     │                                                    │ observe
//!     │ plan via                                           ▼
//!   HotSwapPlanner ◀──────store generation────── freeze PolicySnapshot
//!     (PlannerHandle)      + invalidate plan cache   every `swap_every`
//! ```
//!
//! Rewards come from the executor's **work counter** (converted to
//! milliseconds by `ms_per_unit`, exactly as the training environments'
//! executed-latency path does), not wall-clock — so a fixed-seed,
//! single-threaded run of serve → [`OnlineTrainer::step`] → serve is
//! reproducible bit for bit. With no trainer attached (or an attached
//! trainer never stepped), serving is byte-identical to the frozen
//! `PolicySnapshot` path: recording is the only side effect and it
//! never influences planning or execution.
//!
//! The trainer can run synchronously (call [`step`](OnlineTrainer::step)
//! between serving bursts — the deterministic driver) or in the
//! background ([`run`](OnlineTrainer::run) on a scoped thread, stopping
//! on an [`AtomicBool`]). Either way, a policy swap publishes a
//! complete frozen generation through the [`PlannerHandle`] and
//! invalidates the session's plan cache, exactly as
//! [`QuerySession::set_planner`] does for explicit strategy swaps.

use crate::experience::{ExperienceLog, DEFAULT_EXPERIENCE_CAPACITY};
use crate::session::QuerySession;
use crate::swap::{HotSwapPlanner, PlannerHandle};
use hfqo_cost::LatencyModel;
use hfqo_rejoin::{episode_from_decisions, Featurizer, LearnedPlanner, ReJoinAgent, RewardMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Online-learning knobs.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Experience-ring capacity (oldest dropped beyond it).
    pub log_capacity: usize,
    /// Maximum experiences consumed per [`OnlineTrainer::step`].
    pub drain_batch: usize,
    /// Replayed episodes between policy-snapshot swaps.
    pub swap_every: usize,
    /// Terminal-reward signal. Must be latency-based
    /// ([`RewardMode::needs_latency`]) — online learning's whole point
    /// is rewarding on observed execution.
    pub reward: RewardMode,
    /// Work-units → milliseconds conversion for the reward (the same
    /// constant the training environments' executed-latency path uses).
    pub ms_per_unit: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            log_capacity: DEFAULT_EXPERIENCE_CAPACITY,
            drain_batch: 32,
            swap_every: 16,
            reward: RewardMode::NegLogLatency,
            ms_per_unit: LatencyModel::default().ms_per_unit,
        }
    }
}

impl OnlineConfig {
    /// Sets the swap cadence (builder style).
    pub fn with_swap_every(mut self, swap_every: usize) -> Self {
        self.swap_every = swap_every.max(1);
        self
    }

    /// Sets the per-step drain bound (builder style).
    pub fn with_drain_batch(mut self, drain_batch: usize) -> Self {
        self.drain_batch = drain_batch.max(1);
        self
    }
}

/// What one [`OnlineTrainer::step`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStep {
    /// Experiences drained from the log.
    pub drained: usize,
    /// Experiences replayed into episodes and observed by the agent.
    pub trained: usize,
    /// Experiences that could not be replayed (single-relation queries,
    /// oversized queries, mask-rejected decisions).
    pub skipped: usize,
    /// Policy generations this step published (a step draining more
    /// than `swap_every` episodes can publish several).
    pub swaps: usize,
}

impl OnlineStep {
    /// Whether this step published at least one policy generation.
    pub fn swapped(&self) -> bool {
        self.swaps > 0
    }
}

/// Lifetime counters for an [`OnlineTrainer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineMetrics {
    /// Experiences drained across all steps.
    pub drained: u64,
    /// Episodes trained on.
    pub trained: u64,
    /// Experiences skipped as un-replayable.
    pub skipped: u64,
    /// Policy generations published.
    pub swaps: u64,
}

/// The background learner of the online serving loop. See the
/// [module docs](self).
pub struct OnlineTrainer {
    agent: ReJoinAgent,
    handle: Arc<PlannerHandle>,
    log: Arc<ExperienceLog>,
    config: OnlineConfig,
    since_swap: usize,
    metrics: OnlineMetrics,
}

impl OnlineTrainer {
    /// Wires a session for online learning and returns its trainer:
    /// generation 0 is the agent's current policy frozen with
    /// `featurizer` (connected-only masking per `require_connected` —
    /// must match how the agent trains), the session plans through a
    /// [`HotSwapPlanner`] over a fresh [`PlannerHandle`], and every
    /// executed query is recorded into a fresh [`ExperienceLog`].
    pub fn attach(
        session: &mut QuerySession,
        agent: ReJoinAgent,
        featurizer: Featurizer,
        require_connected: bool,
        mut config: OnlineConfig,
    ) -> Self {
        // Struct-literal construction can bypass the builder clamps:
        // swap_every = 0 would publish a generation (and invalidate the
        // cache) per experience, drain_batch = 0 would make every step
        // a silent no-op.
        config.swap_every = config.swap_every.max(1);
        config.drain_batch = config.drain_batch.max(1);
        assert!(
            config.reward.needs_latency(),
            "online training rewards on observed execution; \
             use a latency-based RewardMode"
        );
        assert!(
            agent.is_reinforce(),
            "online training replays served decisions with fabricated \
             action probabilities, which only the REINFORCE backend is \
             sound for (PPO's importance ratios would read them); \
             construct the agent with PolicyKind::Reinforce"
        );
        let planner =
            LearnedPlanner::freeze(&agent, featurizer).with_require_connected(require_connected);
        let handle = PlannerHandle::new(planner);
        let log = Arc::new(ExperienceLog::new(config.log_capacity));
        session.set_planner(Box::new(HotSwapPlanner::new(Arc::clone(&handle))));
        session.set_experience_log(Some(Arc::clone(&log)));
        Self {
            agent,
            handle,
            log,
            config,
            since_swap: 0,
            metrics: OnlineMetrics::default(),
        }
    }

    /// The handle serving threads plan through.
    pub fn handle(&self) -> &Arc<PlannerHandle> {
        &self.handle
    }

    /// The experience log the session records into.
    pub fn log(&self) -> &Arc<ExperienceLog> {
        &self.log
    }

    /// Policy generations published so far.
    pub fn generation(&self) -> u64 {
        self.handle.generation()
    }

    /// Lifetime counters.
    pub fn metrics(&self) -> OnlineMetrics {
        self.metrics
    }

    /// The learning agent (e.g. for `episodes_seen`).
    pub fn agent(&self) -> &ReJoinAgent {
        &self.agent
    }

    /// Tears the trainer down into its agent (for freezing a final
    /// policy or continuing offline training).
    pub fn into_agent(self) -> ReJoinAgent {
        self.agent
    }

    /// One training step: drain up to `drain_batch` experiences, replay
    /// each into an episode against the session's *current* statistics,
    /// hand them to the agent, and after every `swap_every` replayed
    /// episodes flush the agent, freeze a snapshot, publish it as the
    /// next generation, and invalidate `session`'s plan cache (the
    /// cadence check runs per episode, so a step that drains more than
    /// `swap_every` episodes publishes proportionally more
    /// generations).
    ///
    /// Call this from one thread at a time (the trainer is `&mut self`);
    /// serving threads keep running concurrently throughout.
    pub fn step(&mut self, session: &QuerySession) -> OnlineStep {
        let batch = self.log.drain(self.config.drain_batch);
        let mut step = OnlineStep {
            drained: batch.len(),
            ..OnlineStep::default()
        };
        let generation = self.handle.load();
        let featurizer = generation.featurizer();
        let require_connected = generation.require_connected();
        for exp in &batch {
            let latency_ms = (exp.executed_work as f64 * self.config.ms_per_unit).max(0.001);
            let reward = self
                .config
                .reward
                .terminal_reward(exp.cost, exp.cost, Some(latency_ms));
            match episode_from_decisions(
                &exp.graph,
                &exp.decisions,
                reward,
                &featurizer,
                session.stats(),
                require_connected,
            ) {
                Ok(episode) => {
                    self.agent.observe(episode);
                    self.since_swap += 1;
                    step.trained += 1;
                }
                Err(_) => step.skipped += 1,
            }
            if self.since_swap >= self.config.swap_every {
                self.swap(session);
                step.swaps += 1;
            }
        }
        self.metrics.drained += step.drained as u64;
        self.metrics.trained += step.trained as u64;
        self.metrics.skipped += step.skipped as u64;
        step
    }

    /// Flushes the agent, freezes its policy, publishes it as the next
    /// generation, and invalidates `session`'s plan cache (cached plans
    /// belong to the previous generation). A serving thread racing the
    /// swap either finishes on the generation it already loaded —
    /// whose plans execute to identical results — or plans with the new
    /// one; it can never observe a torn policy.
    pub fn swap(&mut self, session: &QuerySession) -> u64 {
        self.agent.flush();
        let next = self.handle.load().with_snapshot(self.agent.snapshot());
        let generation = self.handle.store(next);
        session.invalidate_cache();
        self.since_swap = 0;
        self.metrics.swaps += 1;
        generation
    }

    /// Runs the training loop until `stop` is set: step, and sleep for
    /// `idle` whenever the experience log had nothing to drain. Designed
    /// for a scoped background thread next to serving threads; pausing
    /// (never calling this, or stopping it) leaves serving bit-identical
    /// to the frozen-policy path.
    pub fn run(&mut self, session: &QuerySession, stop: &AtomicBool, idle: Duration) {
        // ordering: Acquire — pairs with the Release store by the
        // stopping thread, so everything it wrote before requesting the
        // stop is visible to the trainer's final loop exit.
        while !stop.load(Ordering::Acquire) {
            let step = self.step(session);
            if step.drained == 0 {
                std::thread::sleep(idle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_opt::test_support::{chain_query, with_count, TestDb};
    use hfqo_query::QueryGraph;
    use hfqo_rejoin::PolicyKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn online_session(n: usize, rows: usize) -> (QuerySession, OnlineTrainer, QueryGraph) {
        let fixture = TestDb::chain(n, rows);
        let graph = with_count(chain_query(&fixture, n));
        let mut session = QuerySession::traditional(fixture.db, fixture.stats);
        let featurizer = Featurizer::new(n);
        let mut rng = StdRng::seed_from_u64(9);
        let agent = ReJoinAgent::new(
            featurizer.state_dim(),
            featurizer.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        let trainer = OnlineTrainer::attach(
            &mut session,
            agent,
            featurizer,
            true,
            OnlineConfig::default().with_swap_every(4),
        );
        (session, trainer, graph)
    }

    #[test]
    fn serves_record_experience_and_steps_train() {
        let (session, mut trainer, graph) = online_session(4, 200);
        for _ in 0..4 {
            session.invalidate_cache();
            session.serve_graph(&graph).unwrap();
        }
        assert_eq!(trainer.log().len(), 4);
        let step = trainer.step(&session);
        assert_eq!(step.drained, 4);
        assert_eq!(step.trained, 4);
        assert_eq!(step.skipped, 0);
        assert!(step.swapped(), "swap_every=4 reached");
        assert_eq!(trainer.generation(), 1);
        assert_eq!(trainer.agent().episodes_seen(), 4);
        // The swap invalidated the cache: next serve re-plans.
        assert!(!session.serve_graph(&graph).unwrap().cache_hit);
    }

    #[test]
    fn cache_hits_also_record() {
        let (session, trainer, graph) = online_session(3, 150);
        let cold = session.serve_graph(&graph).unwrap();
        let warm = session.serve_graph(&graph).unwrap();
        assert!(!cold.cache_hit && warm.cache_hit);
        let batch = trainer.log().drain(10);
        assert_eq!(batch.len(), 2);
        assert!(!batch[0].cache_hit);
        assert!(batch[1].cache_hit);
        assert_eq!(batch[0].decisions, batch[1].decisions);
        assert_eq!(batch[0].executed_work, batch[1].executed_work);
    }

    #[test]
    fn empty_log_steps_are_no_ops() {
        let (session, mut trainer, _) = online_session(3, 100);
        let step = trainer.step(&session);
        assert_eq!(step, OnlineStep::default());
        assert_eq!(trainer.generation(), 0);
    }

    #[test]
    #[should_panic(expected = "latency-based RewardMode")]
    fn cost_rewards_rejected() {
        let fixture = TestDb::chain(3, 100);
        let mut session = QuerySession::traditional(fixture.db, fixture.stats);
        let featurizer = Featurizer::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let agent = ReJoinAgent::new(
            featurizer.state_dim(),
            featurizer.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        let config = OnlineConfig {
            reward: RewardMode::InverseCost,
            ..OnlineConfig::default()
        };
        let _ = OnlineTrainer::attach(&mut session, agent, featurizer, true, config);
    }
}
