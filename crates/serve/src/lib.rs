//! # hfqo-serve
//!
//! The query-serving layer: one [`QuerySession`] owns the database,
//! statistics, a [`hfqo_opt::Planner`] strategy, and a
//! fingerprint-keyed plan cache, and answers SQL end to end —
//! parse → bind → plan → execute — from any number of threads.
//!
//! This is the ROADMAP's "serve heavy traffic" layer and the paper's
//! end state: with a learned planner plugged in, the trained policy
//! produces the plans at query time; with
//! [`hfqo_opt::TraditionalPlanner`], the same session is the classical
//! expert. The cache (see [`cache`]) amortises planning across repeated
//! query shapes under a two-part key: a structure-only
//! [`hfqo_query::TemplateFingerprint`] groups every parameterization of
//! a template into one sharded entry (so `val < 20` and `val < 90`
//! share plans), the exact [`hfqo_query::QueryFingerprint`] is the
//! intra-template fast path, and a selectivity band re-plans when the
//! current constants' estimated selectivity diverges from every cached
//! bucket. The bound is a template-granular LRU, cold misses are
//! single-flighted, and invalidation is explicit (and epoch-fenced) on
//! statistics rebuilds and planner swaps.
//!
//! Since PR 5 the layer also **closes the hands-free loop** the paper
//! is named for: a session can record every executed query into an
//! [`ExperienceLog`] ([`experience`]), a background [`OnlineTrainer`]
//! ([`online`]) replays those records into policy-gradient episodes
//! rewarded on the *observed* execution work, and each retrained
//! policy generation is hot-swapped into live serving through an
//! atomic [`PlannerHandle`] ([`swap`]) — readers never block on
//! training, a plan is always produced by exactly one frozen
//! generation, and every swap invalidates the plan cache.
//!
//! ## Serving in five lines
//!
//! ```
//! use hfqo_serve::QuerySession;
//! # let fixture = hfqo_opt::test_support::TestDb::chain(3, 200);
//! // `TestDb::chain(3, …)` builds tables t0(id, val), t1(id, fk, val), t2(…).
//! let session = QuerySession::traditional(fixture.db, fixture.stats);
//! let served = session.serve("SELECT COUNT(*) FROM t0 a, t1 b WHERE a.id = b.fk")?;
//! assert_eq!(served.outcome.rows.len(), 1);
//! assert!(session.serve("SELECT COUNT(*) FROM t0 x, t1 y WHERE x.id = y.fk")?.cache_hit);
//! # Ok::<(), hfqo_serve::ServeError>(())
//! ```

pub mod cache;
pub mod experience;
pub mod online;
pub mod session;
pub mod swap;

pub use cache::{
    CacheConfig, CacheMetrics, CacheOutcome, CachedPlan, PlanCache, PlanKey, Probe,
    DEFAULT_CACHE_CAPACITY, DEFAULT_CACHE_SHARDS, DEFAULT_PLANS_PER_TEMPLATE,
    DEFAULT_SELECTIVITY_BAND,
};
pub use experience::{Experience, ExperienceLog, ExperienceMetrics, DEFAULT_EXPERIENCE_CAPACITY};
pub use online::{OnlineConfig, OnlineMetrics, OnlineStep, OnlineTrainer};
pub use session::{QuerySession, ServeError, ServedQuery};
pub use swap::{HotSwapPlanner, PlannerHandle};
