//! # hfqo-serve
//!
//! The query-serving layer: one [`QuerySession`] owns the database,
//! statistics, a [`hfqo_opt::Planner`] strategy, and a
//! fingerprint-keyed plan cache, and answers SQL end to end —
//! parse → bind → plan → execute — from any number of threads.
//!
//! This is the ROADMAP's "serve heavy traffic" layer and the paper's
//! end state: with a `hfqo_rejoin::LearnedPlanner` plugged in, the
//! trained policy produces the plans at query time; with
//! [`hfqo_opt::TraditionalPlanner`], the same session is the classical
//! expert. The cache (see [`cache`]) amortises planning across repeated
//! query shapes: keys are stable [`hfqo_query::QueryFingerprint`]s, the
//! bound is a small LRU, and invalidation is explicit on statistics
//! rebuilds and planner swaps.

pub mod cache;
pub mod session;

pub use cache::{CacheMetrics, CachedPlan, PlanCache, DEFAULT_CACHE_CAPACITY};
pub use session::{QuerySession, ServeError, ServedQuery};
