//! Completing an agent-chosen join order into a physical plan.
//!
//! ReJOIN (§3) only chooses the join *order*: "the final join ordering is
//! sent to a traditional query optimizer, and the optimizer's cost model
//! is used to determine the quality of the join ordering". This module is
//! that hand-off: given a fixed [`JoinTree`], the traditional machinery
//! picks access paths, join algorithms (sides stay as the agent chose
//! them), and the aggregate operator.

use hfqo_catalog::Catalog;
use hfqo_cost::CostModel;
use hfqo_opt::physical::{add_aggregate_if_needed, best_access_path};
use hfqo_query::{JoinAlgo, JoinTree, PhysicalPlan, PlanNode, QueryGraph};
use hfqo_sql::CompareOp;
use hfqo_stats::CardinalitySource;

/// Builds the cheapest physical plan whose join-tree skeleton is exactly
/// `tree` (leaf sides preserved).
pub fn plan_from_tree<C: CardinalitySource>(
    graph: &QueryGraph,
    tree: &JoinTree,
    catalog: &Catalog,
    model: &CostModel<'_>,
    cards: &C,
) -> PhysicalPlan {
    let root = node_from_tree(graph, tree, catalog, model, cards);
    PhysicalPlan::new(add_aggregate_if_needed(graph, root, model, cards))
}

fn node_from_tree<C: CardinalitySource>(
    graph: &QueryGraph,
    tree: &JoinTree,
    catalog: &Catalog,
    model: &CostModel<'_>,
    cards: &C,
) -> PlanNode {
    match tree {
        JoinTree::Leaf(rel) => best_access_path(graph, *rel, catalog, model, cards).0,
        JoinTree::Join(l, r) => {
            let left = node_from_tree(graph, l, catalog, model, cards);
            let right = node_from_tree(graph, r, catalog, model, cards);
            best_algo_fixed_sides(graph, left, right, model, cards)
        }
    }
}

/// Picks the cheapest join algorithm for fixed left/right inputs (no side
/// swapping — the sides are part of the agent's action).
pub fn best_algo_fixed_sides<C: CardinalitySource>(
    graph: &QueryGraph,
    left: PlanNode,
    right: PlanNode,
    model: &CostModel<'_>,
    cards: &C,
) -> PlanNode {
    let conds = graph.joins_between(left.rel_set(), right.rel_set());
    let has_eq = conds.iter().any(|&c| graph.joins()[c].op == CompareOp::Eq);
    let mut best: Option<(PlanNode, f64)> = None;
    for algo in JoinAlgo::ALL {
        if matches!(algo, JoinAlgo::Hash | JoinAlgo::Merge) && !has_eq {
            continue;
        }
        let cand = PlanNode::Join {
            algo,
            conds: conds.clone(),
            left: Box::new(left.clone()),
            right: Box::new(right.clone()),
        };
        let cost = model.node_cost(graph, &cand, cards).total;
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((cand, cost));
        }
    }
    best.expect("nested loop is always legal").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_cost::CostParams;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use hfqo_query::RelId;
    use hfqo_stats::EstimatedCardinality;

    #[test]
    fn plan_preserves_tree_shape() {
        let db = TestDb::chain(4, 500);
        let graph = chain_query(&db, 4);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        // A deliberately bushy (and suboptimal) shape.
        let tree = JoinTree::join(
            JoinTree::join(JoinTree::leaf(RelId(3)), JoinTree::leaf(RelId(2))),
            JoinTree::join(JoinTree::leaf(RelId(1)), JoinTree::leaf(RelId(0))),
        );
        let plan = plan_from_tree(&graph, &tree, db.db.catalog(), &model, &cards);
        plan.validate(&graph).unwrap();
        assert_eq!(plan.root.join_tree(), tree);
    }

    #[test]
    fn cross_join_orders_get_nested_loops() {
        let db = TestDb::chain(3, 200);
        let graph = chain_query(&db, 3);
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        // (0 ⋈ 2) has no join edge in a 0-1-2 chain → cross join.
        let tree = JoinTree::join(
            JoinTree::join(JoinTree::leaf(RelId(0)), JoinTree::leaf(RelId(2))),
            JoinTree::leaf(RelId(1)),
        );
        let plan = plan_from_tree(&graph, &tree, db.db.catalog(), &model, &cards);
        plan.validate(&graph).unwrap();
        // The inner join must be a nested loop with no conditions.
        match &plan.root {
            PlanNode::Join { left, .. } => match left.as_ref() {
                PlanNode::Join { algo, conds, .. } => {
                    assert_eq!(*algo, JoinAlgo::NestedLoop);
                    assert!(conds.is_empty());
                }
                other => panic!("expected join, got {other:?}"),
            },
            other => panic!("expected join root, got {other:?}"),
        }
    }

    #[test]
    fn bad_orders_cost_more_than_expert() {
        let db = TestDb::chain(4, 1000);
        let graph = chain_query(&db, 4);
        let opt = hfqo_opt::TraditionalOptimizer::new(db.db.catalog(), &db.stats);
        let expert = opt.plan(&graph).unwrap();
        let params = CostParams::default();
        let model = CostModel::new(&params, &db.stats);
        let cards = EstimatedCardinality::new(&db.stats);
        let bad_tree = JoinTree::join(
            JoinTree::join(JoinTree::leaf(RelId(0)), JoinTree::leaf(RelId(3))),
            JoinTree::join(JoinTree::leaf(RelId(1)), JoinTree::leaf(RelId(2))),
        );
        let bad = plan_from_tree(&graph, &bad_tree, db.db.catalog(), &model, &cards);
        let bad_cost = model.plan_cost(&graph, &bad, &cards).total;
        assert!(
            bad_cost > expert.cost,
            "cross-join order {bad_cost} should exceed expert {}",
            expert.cost
        );
    }
}
