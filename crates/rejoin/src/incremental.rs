//! Incremental learning curricula (§5.3).
//!
//! The paper decomposes query optimization difficulty along two axes
//! (Figure 6): the number of *pipeline stages* the model must handle and
//! the number of *relations* per query. Figure 7's three decompositions
//! become three curriculum generators here; each produces a sequence of
//! training phases the same agent walks through.
//!
//! Each phase is executed by the standard trainer
//! ([`crate::trainer::train`] via the incremental experiment driver),
//! so curriculum training inherits the trainer's batched network-update
//! contract: per-phase [`crate::TrainerConfig`] chooses the
//! [`hfqo_rl::UpdatePath`], batched by default and bit-identical to the
//! per-row reference.

use hfqo_query::QueryGraph;

/// Which optimization stages the agent itself decides (join ordering is
/// always the agent's; disabled stages fall back to the traditional
/// optimizer, mirroring §5.3.1's "traditional techniques construct the
/// complete execution plan").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSet {
    /// The agent picks access paths.
    pub index_selection: bool,
    /// The agent picks join algorithms.
    pub join_operators: bool,
    /// The agent picks the aggregate operator.
    pub agg_operators: bool,
}

impl StageSet {
    /// Join ordering only — the ReJOIN prototype's scope.
    pub fn join_order_only() -> Self {
        Self {
            index_selection: false,
            join_operators: false,
            agg_operators: false,
        }
    }

    /// Join ordering + index selection (the first pipeline extension the
    /// paper sketches).
    pub fn through_index() -> Self {
        Self {
            index_selection: true,
            join_operators: false,
            agg_operators: false,
        }
    }

    /// Join ordering + index selection + join operators.
    pub fn through_join_ops() -> Self {
        Self {
            index_selection: true,
            join_operators: true,
            agg_operators: false,
        }
    }

    /// The entire simplified pipeline of Figure 8.
    pub fn full() -> Self {
        Self {
            index_selection: true,
            join_operators: true,
            agg_operators: true,
        }
    }

    /// The pipeline prefixes in order.
    pub fn pipeline_prefixes() -> [StageSet; 4] {
        [
            Self::join_order_only(),
            Self::through_index(),
            Self::through_join_ops(),
            Self::full(),
        ]
    }

    /// Number of enabled stages (join ordering counts as one).
    pub fn enabled_count(&self) -> usize {
        1 + usize::from(self.index_selection)
            + usize::from(self.join_operators)
            + usize::from(self.agg_operators)
    }
}

/// One phase of a curriculum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CurriculumPhase {
    /// Stage configuration for the full-plan environment.
    pub stages: StageSet,
    /// Maximum query relation count admitted this phase (`None` = all).
    pub max_rels: Option<usize>,
    /// Episodes to train in this phase.
    pub episodes: usize,
}

/// The three decompositions of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curriculum {
    /// Grow the pipeline, full relation range each phase (§5.3.1).
    Pipeline,
    /// Grow the relation count, full pipeline each phase (§5.3.2).
    Relations,
    /// Grow both together (§5.3.3).
    Hybrid,
    /// No curriculum: the full task from episode one (the §4 baseline
    /// that fails to beat random choice).
    Flat,
}

impl Curriculum {
    /// Generates the phase sequence for a workload whose largest query
    /// has `workload_max_rels` relations, spending `total_episodes`
    /// across phases (split evenly, remainder to the last phase).
    pub fn phases(&self, workload_max_rels: usize, total_episodes: usize) -> Vec<CurriculumPhase> {
        let plan: Vec<(StageSet, Option<usize>)> = match self {
            Curriculum::Flat => vec![(StageSet::full(), None)],
            Curriculum::Pipeline => StageSet::pipeline_prefixes()
                .into_iter()
                .map(|s| (s, None))
                .collect(),
            Curriculum::Relations => {
                // 2, 3, …, max relations; full pipeline throughout.
                (2..=workload_max_rels.max(2))
                    .map(|n| (StageSet::full(), Some(n)))
                    .collect()
            }
            Curriculum::Hybrid => {
                // Phase k enables pipeline prefix k and admits k+2
                // relations; once the pipeline is complete, keep growing
                // relations.
                let prefixes = StageSet::pipeline_prefixes();
                let mut out = Vec::new();
                let mut rels = 2usize;
                for stage in prefixes {
                    out.push((stage, Some(rels.min(workload_max_rels.max(2)))));
                    rels += 1;
                }
                while rels <= workload_max_rels {
                    out.push((StageSet::full(), Some(rels)));
                    rels += 1;
                }
                out
            }
        };
        let n = plan.len().max(1);
        let per = total_episodes / n;
        let remainder = total_episodes - per * n;
        plan.into_iter()
            .enumerate()
            .map(|(i, (stages, max_rels))| CurriculumPhase {
                stages,
                max_rels,
                episodes: per + if i == n - 1 { remainder } else { 0 },
            })
            .collect()
    }
}

/// Filters a workload to queries with at most `max_rels` relations;
/// `None` admits everything. Returns indices into the original slice.
pub fn admitted_queries(queries: &[QueryGraph], max_rels: Option<usize>) -> Vec<usize> {
    queries
        .iter()
        .enumerate()
        .filter(|(_, q)| max_rels.is_none_or(|m| q.relation_count() <= m))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfqo_catalog::TableId;
    use hfqo_query::Relation;

    fn query_with_rels(n: usize) -> QueryGraph {
        QueryGraph::new(
            (0..n)
                .map(|i| Relation {
                    table: TableId(i as u32),
                    alias: format!("t{i}"),
                })
                .collect(),
            vec![],
            vec![],
            vec![],
            vec![],
        )
    }

    #[test]
    fn stage_sets_grow_monotonically() {
        let prefixes = StageSet::pipeline_prefixes();
        for w in prefixes.windows(2) {
            assert!(w[0].enabled_count() < w[1].enabled_count());
        }
        assert_eq!(StageSet::join_order_only().enabled_count(), 1);
        assert_eq!(StageSet::full().enabled_count(), 4);
    }

    #[test]
    fn pipeline_curriculum_has_four_phases() {
        let phases = Curriculum::Pipeline.phases(8, 1000);
        assert_eq!(phases.len(), 4);
        assert_eq!(phases[0].stages, StageSet::join_order_only());
        assert_eq!(phases[3].stages, StageSet::full());
        assert!(phases.iter().all(|p| p.max_rels.is_none()));
        let total: usize = phases.iter().map(|p| p.episodes).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn relations_curriculum_grows_query_size() {
        let phases = Curriculum::Relations.phases(5, 400);
        assert_eq!(phases.len(), 4); // 2, 3, 4, 5
        assert_eq!(phases[0].max_rels, Some(2));
        assert_eq!(phases[3].max_rels, Some(5));
        assert!(phases.iter().all(|p| p.stages == StageSet::full()));
    }

    #[test]
    fn hybrid_grows_both_axes() {
        let phases = Curriculum::Hybrid.phases(7, 700);
        assert_eq!(phases[0].stages, StageSet::join_order_only());
        assert_eq!(phases[0].max_rels, Some(2));
        // Pipeline completes by phase 4; relations keep growing after.
        assert_eq!(phases[3].stages, StageSet::full());
        let last = phases.last().expect("non-empty");
        assert_eq!(last.max_rels, Some(7));
        let total: usize = phases.iter().map(|p| p.episodes).sum();
        assert_eq!(total, 700);
    }

    #[test]
    fn flat_is_single_phase() {
        let phases = Curriculum::Flat.phases(10, 123);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].episodes, 123);
        assert_eq!(phases[0].stages, StageSet::full());
    }

    #[test]
    fn admitted_queries_filters_by_size() {
        let queries = vec![query_with_rels(2), query_with_rels(5), query_with_rels(3)];
        assert_eq!(admitted_queries(&queries, Some(3)), vec![0, 2]);
        assert_eq!(admitted_queries(&queries, None), vec![0, 1, 2]);
        assert!(admitted_queries(&queries, Some(1)).is_empty());
    }
}
