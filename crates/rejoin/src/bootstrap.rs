//! Cost-model bootstrapping (§5.2).
//!
//! Phase 1 trains with the optimizer's cost model as the reward — the
//! "training wheels" that let the agent explore catastrophic strategies
//! without executing them. Once converged, the reward switches to
//! (simulated) execution latency. The paper's warning: the raw reward
//! ranges differ, so the switch must scale latency into the observed cost
//! range via [`RewardScaler`] — exposed here as a switch so the ablation
//! experiment can demonstrate the unscaled failure mode.

use crate::agent::ReJoinAgent;
use crate::env_join::JoinOrderEnv;
use crate::metrics::{EpisodeRecord, TrainingLog};
use crate::reward::RewardMode;
use crate::trainer::{train, TrainerConfig};
use hfqo_cost::RewardScaler;
use hfqo_rl::UpdatePath;
use rand::rngs::StdRng;

/// Bootstrapping configuration.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Phase-1 (cost-reward) episodes.
    pub phase1_episodes: usize,
    /// Trailing Phase-1 episodes during which `(cost, latency)` pairs are
    /// observed to fit the scaler ("noting the optimizer cost estimates
    /// and query execution latencies during the end of Phase 1").
    pub observe_episodes: usize,
    /// Phase-2 (latency-reward) episodes.
    pub phase2_episodes: usize,
    /// Whether Phase 2 scales latency into the cost range (the paper's
    /// proposal) or uses raw latency (the ablation).
    pub scale_rewards: bool,
    /// Network-update implementation for both phases (batched by
    /// default; the per-row reference path is bit-identical).
    pub update_path: UpdatePath,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            phase1_episodes: 600,
            observe_episodes: 100,
            phase2_episodes: 400,
            scale_rewards: true,
            update_path: UpdatePath::Batched,
        }
    }
}

/// Results of a bootstrapped training run.
#[derive(Debug)]
pub struct BootstrapOutcome {
    /// Combined episode log (Phase 1 followed by Phase 2).
    pub log: TrainingLog,
    /// Index of the first Phase-2 episode within [`Self::log`].
    pub phase_boundary: usize,
    /// The fitted scaler (also fitted, but unused, in the unscaled
    /// ablation so the observed ranges can be reported).
    pub scaler: RewardScaler,
}

/// Runs two-phase cost-model bootstrapping. The environment's reward mode
/// is overwritten by each phase.
pub fn cost_bootstrap(
    env: &mut JoinOrderEnv<'_>,
    agent: &mut ReJoinAgent,
    config: &BootstrapConfig,
    rng: &mut StdRng,
) -> BootstrapOutcome {
    // ── Phase 1: cost-model reward (log domain; see `RewardMode`) ──────
    env.set_reward_mode(RewardMode::NegLogCost);
    let warmup = config
        .phase1_episodes
        .saturating_sub(config.observe_episodes);
    let trainer_config =
        |episodes: usize| TrainerConfig::new(episodes).with_update_path(config.update_path);
    let mut log = train(env, agent, trainer_config(warmup), rng);

    // Trailing Phase-1 episodes: keep training, and record cost/latency
    // extrema from the (now mostly good) plans the policy produces.
    let mut scaler = RewardScaler::new();
    for i in 0..config.observe_episodes.min(config.phase1_episodes) {
        let ep = agent.run_episode(env, rng, false);
        if let Some(outcome) = env.last_outcome() {
            let plan = outcome.plan.clone();
            let (query_idx, agent_cost) = (outcome.query_idx, outcome.agent_cost);
            let label = outcome.label.clone();
            let reward = outcome.reward;
            let expert_cost = outcome.expert_cost;
            let (latency, _) = env.observe_latency(query_idx, &plan, rng);
            scaler.observe(agent_cost, latency);
            log.push(EpisodeRecord {
                episode: warmup + i,
                query_idx,
                label,
                agent_cost,
                expert_cost,
                reward,
                latency_ms: Some(latency),
            });
        }
        agent.observe(ep);
    }
    agent.flush();
    let phase_boundary = log.len();

    // ── Phase 2: latency reward (scaled or raw) ─────────────────────────
    let phase2_mode = if config.scale_rewards && scaler.is_ready() {
        RewardMode::NegLogScaledLatency(scaler.clone())
    } else {
        RewardMode::NegLogLatency
    };
    env.set_reward_mode(phase2_mode);
    let phase2_log = train(env, agent, trainer_config(config.phase2_episodes), rng);
    log.extend_renumbered(phase2_log);

    BootstrapOutcome {
        log,
        phase_boundary,
        scaler,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::PolicyKind;
    use crate::env_join::{EnvContext, QueryOrder};
    use hfqo_opt::test_support::{chain_query, TestDb};
    use hfqo_rl::ReinforceConfig;
    use rand::SeedableRng;

    fn setup() -> (TestDb, Vec<hfqo_query::QueryGraph>) {
        let db = TestDb::chain(4, 300);
        let queries = vec![chain_query(&db, 4), chain_query(&db, 3)];
        (db, queries)
    }

    fn quick_config() -> BootstrapConfig {
        BootstrapConfig {
            phase1_episodes: 60,
            observe_episodes: 20,
            phase2_episodes: 40,
            ..Default::default()
        }
    }

    #[test]
    fn bootstrap_runs_both_phases() {
        let (db, queries) = setup();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env =
            JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::InverseCost);
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = ReJoinAgent::new(
            env_state_dim(&env),
            env_action_dim(&env),
            PolicyKind::Reinforce(ReinforceConfig {
                hidden: vec![32],
                batch_episodes: 4,
                ..Default::default()
            }),
            &mut rng,
        );
        let outcome = cost_bootstrap(&mut env, &mut agent, &quick_config(), &mut rng);
        assert_eq!(outcome.log.len(), 100);
        assert_eq!(outcome.phase_boundary, 60);
        assert!(outcome.scaler.is_ready());
        // Observation episodes carry latencies; earlier ones do not.
        assert!(outcome.log.records[10].latency_ms.is_none());
        assert!(outcome.log.records[50].latency_ms.is_some());
        // Phase 2 episodes all carry latencies.
        assert!(outcome.log.records[60..]
            .iter()
            .all(|r| r.latency_ms.is_some()));
        // Environment ends in a latency mode.
        assert!(env.reward_mode().needs_latency());
    }

    #[test]
    fn unscaled_ablation_uses_raw_latency() {
        let (db, queries) = setup();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env =
            JoinOrderEnv::new(ctx, &queries, 5, QueryOrder::Cycle, RewardMode::InverseCost);
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = ReJoinAgent::new(
            env_state_dim(&env),
            env_action_dim(&env),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        let config = BootstrapConfig {
            scale_rewards: false,
            ..quick_config()
        };
        let outcome = cost_bootstrap(&mut env, &mut agent, &config, &mut rng);
        assert!(matches!(env.reward_mode(), RewardMode::NegLogLatency));
        // The scaler is still fitted for reporting.
        assert!(outcome.scaler.is_ready());
    }

    fn env_state_dim(env: &JoinOrderEnv<'_>) -> usize {
        use hfqo_rl::Environment as _;
        env.state_dim()
    }

    fn env_action_dim(env: &JoinOrderEnv<'_>) -> usize {
        use hfqo_rl::Environment as _;
        env.action_dim()
    }
}
