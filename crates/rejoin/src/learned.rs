//! The learned planner: a frozen ReJOIN policy behind the
//! [`Planner`] trait.
//!
//! This is the paper's end state made concrete — the trained policy
//! *replaces* the traditional enumerator in the serving path. A
//! [`LearnedPlanner`] wraps a frozen [`PolicySnapshot`] (plain owned
//! weights, no optimizer state, `Send + Sync`) plus the featurizer it
//! was trained with, and plans by replaying one greedy-argmax episode:
//! featurize the forest, take the policy's mode action, merge, repeat
//! until one tree remains, then hand the ordering to the traditional
//! machinery ([`crate::planfix::plan_from_tree`]) for access-path,
//! join-operator, and aggregate selection — exactly what a greedy
//! evaluation episode in [`crate::env_join::JoinOrderEnv`] does, which
//! a parity test pins down.

use crate::featurize::Featurizer;
use crate::planfix::plan_from_tree;
use hfqo_opt::{OptError, PlannedQuery, Planner, PlannerContext, PlannerMethod};
use hfqo_query::{Forest, QueryGraph};
use hfqo_rl::PolicySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// A frozen learned policy serving as a query planner.
#[derive(Debug, Clone)]
pub struct LearnedPlanner {
    snapshot: PolicySnapshot,
    featurizer: Featurizer,
    /// Restrict actions to join-connected pairs, as the training
    /// environments do by default in the experiment harness. Must match
    /// the setting the policy was trained under, or inference walks a
    /// differently-masked action space than the one it learned.
    require_connected: bool,
}

// The serving layer shares one learned planner across worker threads;
// the snapshot is plain owned weights and the featurizer is `Copy`, so
// this holds structurally — the assertion breaks the build if training
// state ever leaks in.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<LearnedPlanner>();
};

impl LearnedPlanner {
    /// Wraps a frozen policy. `featurizer` must be the one the policy
    /// was trained with (same `max_rels`, hence same state/action
    /// dimensions) — asserted here, at the root cause, rather than as
    /// a shape panic deep in the matmul kernel at inference time.
    /// Connected-pair masking defaults to `true`, matching the
    /// experiment harness's training environments.
    pub fn new(snapshot: PolicySnapshot, featurizer: Featurizer) -> Self {
        assert_eq!(
            featurizer.state_dim(),
            snapshot.policy().input_size(),
            "featurizer state width must match the policy's input size \
             (was the policy trained at a different max_rels?)"
        );
        assert_eq!(
            featurizer.action_dim(),
            snapshot.policy().output_size(),
            "featurizer action width must match the policy's output size \
             (was the policy trained at a different max_rels?)"
        );
        Self {
            snapshot,
            featurizer,
            require_connected: true,
        }
    }

    /// Freezes the current policy of a live agent into a planner.
    pub fn freeze(agent: &crate::agent::ReJoinAgent, featurizer: Featurizer) -> Self {
        Self::new(agent.snapshot(), featurizer)
    }

    /// Overrides connected-pair masking (builder style).
    pub fn with_require_connected(mut self, require_connected: bool) -> Self {
        self.require_connected = require_connected;
        self
    }

    /// The featurizer the planner infers with.
    pub fn featurizer(&self) -> Featurizer {
        self.featurizer
    }

    /// The frozen policy weights the planner infers with.
    pub fn snapshot(&self) -> &PolicySnapshot {
        &self.snapshot
    }

    /// Whether actions are restricted to join-connected pairs.
    pub fn require_connected(&self) -> bool {
        self.require_connected
    }

    /// A planner with the same featurizer and masking but `snapshot`'s
    /// weights — how the online trainer publishes a retrained policy
    /// generation without re-deriving planner configuration.
    pub fn with_snapshot(&self, snapshot: PolicySnapshot) -> Self {
        Self::new(snapshot, self.featurizer).with_require_connected(self.require_connected)
    }
}

impl Planner for LearnedPlanner {
    fn name(&self) -> &'static str {
        "learned"
    }

    fn plan(&self, ctx: &PlannerContext<'_>, graph: &QueryGraph) -> Result<PlannedQuery, OptError> {
        let n = graph.relation_count();
        if n == 0 {
            return Err(OptError::EmptyQuery);
        }
        if n > self.featurizer.max_rels() {
            return Err(OptError::Unsupported(format!(
                "policy trained for up to {} relations, query has {n}",
                self.featurizer.max_rels()
            )));
        }
        let start = Instant::now();
        let est = ctx.estimator();
        let mut forest = Forest::initial(n);
        let mut features = Vec::with_capacity(self.featurizer.state_dim());
        let mut mask = Vec::with_capacity(self.featurizer.action_dim());
        // Greedy selection never consults the RNG; the seed only
        // satisfies the shared `select_action` signature.
        let mut rng = StdRng::seed_from_u64(0);
        while !forest.is_terminal() {
            self.featurizer
                .featurize(graph, &forest, &est, &mut features);
            self.featurizer
                .action_mask(graph, &forest, self.require_connected, &mut mask);
            let (action, _prob) = self
                .snapshot
                .select_action(&features, &mask, &mut rng, true);
            let (x, y) = self.featurizer.decode_pair(action);
            let merged = forest.merge(x, y);
            debug_assert!(merged, "masked actions must be valid merges");
        }
        let tree = forest.into_tree().expect("terminal forest has one tree");
        let model = ctx.cost_model();
        let plan = plan_from_tree(graph, &tree, ctx.catalog, &model, &est);
        let cost = model.plan_cost(graph, &plan, &est).total;
        Ok(PlannedQuery {
            plan,
            cost,
            planning_time: start.elapsed(),
            method: PlannerMethod::Learned,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{PolicyKind, ReJoinAgent};
    use crate::env_join::{EnvContext, JoinOrderEnv};
    use crate::reward::RewardMode;
    use crate::QueryOrder;
    use hfqo_opt::test_support::{chain_query, TestDb};
    use hfqo_rl::Environment as _;

    fn fixture() -> (TestDb, Vec<QueryGraph>) {
        let db = TestDb::chain(5, 300);
        let queries = vec![chain_query(&db, 5), chain_query(&db, 3)];
        (db, queries)
    }

    fn agent_for(env: &JoinOrderEnv<'_>, rng: &mut StdRng) -> ReJoinAgent {
        ReJoinAgent::new(
            env.state_dim(),
            env.action_dim(),
            PolicyKind::default_reinforce(),
            rng,
        )
    }

    /// The planner must reproduce a greedy evaluation episode exactly:
    /// same featurizer, same mask, same argmax, same `planfix`
    /// completion — so serving a frozen agent gives precisely the plans
    /// the training-side evaluation reported.
    #[test]
    fn matches_env_greedy_episode_plan() {
        let (db, queries) = fixture();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let mut env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Fixed(0),
            RewardMode::InverseCost,
        );
        env.require_connected = true;
        let mut rng = StdRng::seed_from_u64(3);
        let agent = agent_for(&env, &mut rng);
        let planner = LearnedPlanner::freeze(&agent, env.featurizer());
        let plan_ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        for (idx, graph) in queries.iter().enumerate() {
            env.set_order(QueryOrder::Fixed(idx));
            let _ = agent.run_episode(&mut env, &mut rng, true);
            let outcome = env.last_outcome().expect("episode finished").clone();
            let planned = planner.plan(&plan_ctx, graph).unwrap();
            assert_eq!(planned.plan, outcome.plan, "query {idx}");
            assert!((planned.cost - outcome.agent_cost).abs() < 1e-9);
        }
    }

    /// `PlannerMethod` attribution: learned plans are tagged `Learned`.
    #[test]
    fn attributes_learned_method() {
        let (db, queries) = fixture();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Fixed(0),
            RewardMode::InverseCost,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let agent = agent_for(&env, &mut rng);
        let planner = LearnedPlanner::freeze(&agent, env.featurizer());
        let plan_ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let planned = planner.plan(&plan_ctx, &queries[0]).unwrap();
        assert_eq!(planned.method, PlannerMethod::Learned);
        planned.plan.validate(&queries[0]).unwrap();
        assert!(planned.cost > 0.0);
        assert!(planned.planning_time.as_nanos() > 0);
    }

    #[test]
    fn inference_is_deterministic() {
        let (db, queries) = fixture();
        let ctx = EnvContext::new(&db.db, &db.stats);
        let env = JoinOrderEnv::new(
            ctx,
            &queries,
            6,
            QueryOrder::Fixed(0),
            RewardMode::InverseCost,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let agent = agent_for(&env, &mut rng);
        let planner = LearnedPlanner::freeze(&agent, env.featurizer());
        let plan_ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let a = planner.plan(&plan_ctx, &queries[0]).unwrap();
        let b = planner.plan(&plan_ctx, &queries[0]).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn oversized_queries_are_unsupported() {
        let (db, queries) = fixture();
        let mut rng = StdRng::seed_from_u64(2);
        // A policy genuinely trained at 3-relation width: planning the
        // 5-relation query must fail cleanly, not mis-featurize.
        let narrow_f = Featurizer::new(3);
        let narrow_agent = ReJoinAgent::new(
            narrow_f.state_dim(),
            narrow_f.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        let narrow = LearnedPlanner::freeze(&narrow_agent, narrow_f);
        let plan_ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        assert!(matches!(
            narrow.plan(&plan_ctx, &queries[0]),
            Err(OptError::Unsupported(_))
        ));
        // But it still plans queries within its width.
        let planned = narrow.plan(&plan_ctx, &queries[1]).unwrap();
        planned.plan.validate(&queries[1]).unwrap();
        let empty = QueryGraph::new(vec![], vec![], vec![], vec![], vec![]);
        assert_eq!(narrow.plan(&plan_ctx, &empty), Err(OptError::EmptyQuery));
    }

    /// A featurizer whose dimensions do not match the frozen policy is
    /// a construction bug; it must fail at the root cause, not as a
    /// shape panic inside the matmul kernel at inference time.
    #[test]
    #[should_panic(expected = "featurizer state width")]
    fn mismatched_featurizer_width_panics_at_construction() {
        let mut rng = StdRng::seed_from_u64(5);
        let trained_at = Featurizer::new(6);
        let agent = ReJoinAgent::new(
            trained_at.state_dim(),
            trained_at.action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        let _ = LearnedPlanner::freeze(&agent, Featurizer::new(3));
    }

    /// Single-relation queries need no merges: the planner must still
    /// produce a valid (scan + optional aggregate) plan.
    #[test]
    fn single_relation_queries_plan_without_actions() {
        let db = TestDb::chain(1, 100);
        let graph = chain_query(&db, 1);
        let mut rng = StdRng::seed_from_u64(4);
        let agent = ReJoinAgent::new(
            Featurizer::new(2).state_dim(),
            Featurizer::new(2).action_dim(),
            PolicyKind::default_reinforce(),
            &mut rng,
        );
        let planner = LearnedPlanner::new(agent.snapshot(), Featurizer::new(2));
        let plan_ctx = PlannerContext::new(db.db.catalog(), &db.stats);
        let planned = planner.plan(&plan_ctx, &graph).unwrap();
        planned.plan.validate(&graph).unwrap();
    }
}
