//! The ReJOIN agent: a policy-gradient learner over the environments.

use hfqo_rl::{
    Environment, Episode, PolicySnapshot, PpoAgent, PpoConfig, ReinforceAgent, ReinforceConfig,
    UpdatePath,
};
use rand::rngs::StdRng;

/// Which policy-gradient algorithm backs the agent.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// REINFORCE with an EMA baseline.
    Reinforce(ReinforceConfig),
    /// PPO-style clipped surrogate (what ReJOIN's implementation used).
    Ppo(PpoConfig),
}

impl PolicyKind {
    /// REINFORCE with default hyperparameters.
    pub fn default_reinforce() -> Self {
        PolicyKind::Reinforce(ReinforceConfig::default())
    }

    /// PPO with default hyperparameters.
    pub fn default_ppo() -> Self {
        PolicyKind::Ppo(PpoConfig::default())
    }
}

enum Inner {
    Reinforce(ReinforceAgent),
    Ppo(PpoAgent),
}

/// The ReJOIN agent.
pub struct ReJoinAgent {
    inner: Inner,
}

impl ReJoinAgent {
    /// Creates an agent for the given state/action dimensions.
    pub fn new(state_dim: usize, action_dim: usize, kind: PolicyKind, rng: &mut StdRng) -> Self {
        let inner = match kind {
            PolicyKind::Reinforce(config) => {
                Inner::Reinforce(ReinforceAgent::new(state_dim, action_dim, config, rng))
            }
            PolicyKind::Ppo(config) => {
                Inner::Ppo(PpoAgent::new(state_dim, action_dim, config, rng))
            }
        };
        Self { inner }
    }

    /// Samples (or greedily selects) an action.
    pub fn select_action(
        &self,
        features: &[f32],
        mask: &[bool],
        rng: &mut StdRng,
        greedy: bool,
    ) -> (usize, f32) {
        match &self.inner {
            Inner::Reinforce(a) => a.select_action(features, mask, rng, greedy),
            Inner::Ppo(a) => a.select_action(features, mask, rng, greedy),
        }
    }

    /// A frozen, `Send + Sync` copy of the current policy. Rollout
    /// workers act with snapshots while the learner keeps the mutable
    /// optimizer state; a snapshot consumes the RNG stream exactly as
    /// the live agent does.
    pub fn snapshot(&self) -> PolicySnapshot {
        match &self.inner {
            Inner::Reinforce(a) => a.snapshot(),
            Inner::Ppo(a) => a.snapshot(),
        }
    }

    /// Rolls out one episode.
    pub fn run_episode<E: Environment>(
        &self,
        env: &mut E,
        rng: &mut StdRng,
        greedy: bool,
    ) -> Episode {
        match &self.inner {
            Inner::Reinforce(a) => a.run_episode(env, rng, greedy),
            Inner::Ppo(a) => a.run_episode(env, rng, greedy),
        }
    }

    /// Buffers a finished episode; returns `true` when a policy update
    /// ran.
    pub fn observe(&mut self, episode: Episode) -> bool {
        match &mut self.inner {
            Inner::Reinforce(a) => a.observe(episode),
            Inner::Ppo(a) => a.observe(episode),
        }
    }

    /// Forces an update on whatever episodes are buffered.
    pub fn flush(&mut self) {
        match &mut self.inner {
            Inner::Reinforce(a) => a.update(),
            Inner::Ppo(a) => a.update(),
        }
    }

    /// The active network-update implementation.
    pub fn update_path(&self) -> UpdatePath {
        match &self.inner {
            Inner::Reinforce(a) => a.update_path(),
            Inner::Ppo(a) => a.update_path(),
        }
    }

    /// Selects the network-update implementation. `Batched` (the
    /// default) fuses each update into one forward/backward; `PerRow`
    /// is the bit-identical per-transition reference path, retained for
    /// parity verification and benchmarking.
    pub fn set_update_path(&mut self, path: UpdatePath) {
        match &mut self.inner {
            Inner::Reinforce(a) => a.set_update_path(path),
            Inner::Ppo(a) => a.set_update_path(path),
        }
    }

    /// Episodes observed so far.
    pub fn episodes_seen(&self) -> usize {
        match &self.inner {
            Inner::Reinforce(a) => a.episodes_seen(),
            Inner::Ppo(a) => a.episodes_seen(),
        }
    }

    /// Whether the REINFORCE backend is active. Replay-based training
    /// (online learning, which fabricates `action_prob = 1.0` because a
    /// cache-hit serve never computes behavior probabilities) is only
    /// sound for REINFORCE — its gradient re-derives `log π(a|s)` from
    /// the live policy and never reads the recorded probability, while
    /// PPO's importance ratios would silently divide by the fabricated
    /// value.
    pub fn is_reinforce(&self) -> bool {
        matches!(self.inner, Inner::Reinforce(_))
    }

    /// One supervised imitation step (cross-entropy toward expert
    /// actions). Supported by the REINFORCE backend; returns `None` for
    /// PPO (whose surrogate objective has no imitation analogue here).
    pub fn imitate_step(&mut self, batch: &[(Vec<f32>, Vec<bool>, usize)]) -> Option<f32> {
        match &mut self.inner {
            Inner::Reinforce(a) => Some(a.imitate_step(batch)),
            Inner::Ppo(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn both_backends_construct_and_act() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [PolicyKind::default_reinforce(), PolicyKind::default_ppo()] {
            let agent = ReJoinAgent::new(4, 9, kind, &mut rng);
            let (a, p) = agent.select_action(
                &[0.0, 1.0, 0.0, 1.0],
                &[true, false, true, false, false, false, false, false, false],
                &mut rng,
                false,
            );
            assert!(a == 0 || a == 2);
            assert!(p > 0.0);
            assert_eq!(agent.episodes_seen(), 0);
        }
    }

    #[test]
    fn imitation_only_on_reinforce() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = ReJoinAgent::new(2, 4, PolicyKind::default_reinforce(), &mut rng);
        let batch = vec![(vec![1.0, 0.0], vec![true; 4], 2usize)];
        assert!(r.imitate_step(&batch).is_some());
        let mut p = ReJoinAgent::new(2, 4, PolicyKind::default_ppo(), &mut rng);
        assert!(p.imitate_step(&batch).is_none());
    }
}
